//! # frote-repro
//!
//! Umbrella crate for the FROTE (MLSys 2022) reproduction. It re-exports the
//! public surface of every workspace crate so examples and integration tests
//! can address the whole system through one import:
//!
//! ```
//! use frote_repro::prelude::*;
//! ```
//!
//! The individual crates are:
//!
//! - [`data`] — columnar mixed-type tabular datasets and synthetic generators
//! - [`rules`] — feedback rules, coverage, conflicts, relaxation
//! - [`ml`] — hand-rolled classifiers (LR, decision tree, RF, GBDT, kNN)
//! - [`smote`] — SMOTE / SMOTE-NC / Borderline-SMOTE substrates
//! - [`induct`] — greedy boolean rule-set induction (BRCG stand-in)
//! - [`opt`] — simplex LP solver and the base-instance-selection IP
//! - [`overlay`] — the Overlay post-processing baseline (Daly et al. 2021)
//! - [`par`] — deterministic parallel-execution runtime (thread pool + seed
//!   splitting + the `FROTE_THREADS` resolver)
//! - [`obs`] — zero-perturbation metrics registry + structured event trace
//! - [`faults`] — deterministic failpoint injection (`FROTE_FAULTS`)
//! - [`core`] — the FROTE algorithm itself
//! - [`eval`] — the experiment harness reproducing every table and figure
//! - [`serve`] — the serving plane: micro-batched scoring over std-only
//!   TCP/HTTP with lock-free model snapshot swaps

pub use frote as core;
pub use frote_data as data;
pub use frote_eval as eval;
pub use frote_faults as faults;
pub use frote_induct as induct;
pub use frote_ml as ml;
pub use frote_obs as obs;
pub use frote_opt as opt;
pub use frote_overlay as overlay;
pub use frote_par as par;
pub use frote_rules as rules;
pub use frote_serve as serve;
pub use frote_smote as smote;

/// Commonly used items across the workspace, re-exported for convenience.
pub mod prelude {
    pub use frote::{
        Frote, FroteBuilder, FroteConfig, FroteReport, ModStrategy, SelectionStrategy,
    };
    pub use frote_data::{Column, Dataset, Encoder, FeatureKind, FeatureMatrix, Schema, Value};
    pub use frote_ml::{Classifier, TrainAlgorithm};
    pub use frote_rules::{Clause, FeedbackRule, FeedbackRuleSet, LabelDist, Op, Predicate};
}
