//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal benchmark harness with criterion's macro surface:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`], `criterion_group!` and
//! `criterion_main!`. Timing is a simple warmup + sampled median of batch
//! means — adequate for relative comparisons, with none of criterion's
//! statistics, plotting, or CLI.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle passed to each benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Drives the closure under measurement.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measures `f`, storing one timing sample per configured batch.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warmup and batch-size calibration: aim for ~5ms per sample.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let n_samples = self.samples.capacity();
        for _ in 0..n_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples: Vec::with_capacity(sample_size), iters_per_sample: 1 };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    println!(
        "{name:<50} time: [{} {} {}]",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Binds benchmark functions into a named group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring criterion's macro of the
/// same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
