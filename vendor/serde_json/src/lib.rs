//! Offline stand-in for `serde_json`.
//!
//! Prints and parses JSON against the vendored `serde` data model
//! ([`serde::json::JsonValue`]). The pretty printer mirrors real
//! `serde_json::to_string_pretty` formatting (2-space indent, `": "` between
//! key and value) so downstream string assertions keep working.

use serde::json::JsonValue;
use serde::{Deserialize, Serialize};

/// A serialization or parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.message())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable JSON (2-space indent).
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

/// Parses `text` into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or when the document does not match
/// `T`'s shape.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::from_json_value(&value)?)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &JsonValue, indent: Option<usize>, depth: usize) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Number(n) => write_number(out, *n),
        JsonValue::String(s) => write_string(out, s),
        JsonValue::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        JsonValue::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        // Integral values print without a fractional part, like serde_json
        // does for integer types.
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{}` on f64 is the shortest representation that round-trips.
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<JsonValue, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", JsonValue::Null),
            Some(b't') => self.eat_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain UTF-8.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                core::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                core::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our printer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_format_matches_serde_json_style() {
        let v = JsonValue::Object(vec![
            ("dataset".to_string(), JsonValue::String("Car".to_string())),
            ("n".to_string(), JsonValue::Number(30.0)),
            (
                "xs".to_string(),
                JsonValue::Array(vec![JsonValue::Number(0.5), JsonValue::Number(1.0)]),
            ),
        ]);
        let mut out = String::new();
        write_value(&mut out, &v, Some(2), 0);
        assert_eq!(
            out,
            "{\n  \"dataset\": \"Car\",\n  \"n\": 30,\n  \"xs\": [\n    0.5,\n    1\n  ]\n}"
        );
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x\ny"}"#;
        let v = parse(text).unwrap();
        let mut compact = String::new();
        write_value(&mut compact, &v, None, 0);
        let v2 = parse(&compact).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn malformed_errors() {
        assert!(parse("{not json").is_err());
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-12, 123456.789, -0.007] {
            let mut out = String::new();
            write_value(&mut out, &JsonValue::Number(x), None, 0);
            match parse(&out).unwrap() {
                JsonValue::Number(y) => assert_eq!(x, y, "{out}"),
                other => panic!("{other:?}"),
            }
        }
    }
}
