//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (the offline build has
//! no `syn`/`quote`). Supports exactly the item shapes this workspace
//! derives: non-generic structs (named, tuple, unit) and enums whose
//! variants are unit, tuple, or struct-like — always in serde's
//! externally-tagged representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips `#[...]` attributes (including doc comments).
    fn skip_attrs(&mut self) {
        loop {
            match (self.peek(), self.tokens.get(self.pos + 1)) {
                (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    self.pos += 2;
                }
                _ => return,
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("serde derive: expected identifier, found {other:?}")),
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let kind = c.expect_ident()?;
    match kind.as_str() {
        "struct" => {
            let name = c.expect_ident()?;
            check_no_generics(&c)?;
            match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Ok(Item::Struct {
                        name,
                        fields: Fields::Named(parse_named_fields(g.stream())?),
                    })
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Ok(Item::Struct { name, fields: Fields::Tuple(count_tuple_fields(g.stream())) })
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                    Ok(Item::Struct { name, fields: Fields::Unit })
                }
                other => Err(format!("serde derive: unexpected struct body {other:?}")),
            }
        }
        "enum" => {
            let name = c.expect_ident()?;
            check_no_generics(&c)?;
            match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Ok(Item::Enum { name, variants: parse_variants(g.stream())? })
                }
                other => Err(format!("serde derive: unexpected enum body {other:?}")),
            }
        }
        other => Err(format!("serde derive: cannot derive for `{other}` items")),
    }
}

fn check_no_generics(c: &Cursor) -> Result<(), String> {
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(
                "serde derive: generic types are not supported by the vendored serde".to_string()
            );
        }
    }
    Ok(())
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs();
        c.skip_vis();
        if c.peek().is_none() {
            return Ok(fields);
        }
        fields.push(c.expect_ident()?);
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde derive: expected `:`, found {other:?}")),
        }
        skip_type_until_comma(&mut c);
    }
}

/// Advances past a type, stopping after the next top-level `,` (commas inside
/// `<...>` or grouped tokens don't count) or at end of stream.
fn skip_type_until_comma(c: &mut Cursor) {
    let mut angle_depth = 0i32;
    while let Some(t) = c.next() {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    if c.peek().is_none() {
        return 0;
    }
    let mut n = 1;
    let mut angle_depth = 0i32;
    while let Some(t) = c.next() {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                // A trailing comma does not start a new field.
                ',' if angle_depth == 0 && c.peek().is_some() => n += 1,
                _ => {}
            }
        }
    }
    n
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.peek().is_none() {
            return Ok(variants);
        }
        let name = c.expect_ident()?;
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.pos += 1;
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream())?;
                c.pos += 1;
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => return Ok(variants),
            other => {
                return Err(format!("serde derive: expected `,` after variant, found {other:?}"))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

const JV: &str = "::serde::json::JsonValue";

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => ser_named("self.", names),
                Fields::Tuple(1) => "::serde::Serialize::to_json_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                        .collect();
                    format!("{JV}::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => format!("{JV}::Null"),
            };
            impl_serialize(name, &body)
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => {
                        format!("{name}::{vname} => {JV}::String(\"{vname}\".to_string()),")
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{vname}(f0) => {JV}::Object(vec![(\"{vname}\".to_string(), \
                         ::serde::Serialize::to_json_value(f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                            .collect();
                        format!(
                            "{name}::{vname}({}) => {JV}::Object(vec![(\"{vname}\".to_string(), \
                             {JV}::Array(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Fields::Named(fnames) => {
                        let binds = fnames.join(", ");
                        let inner = ser_named("", fnames);
                        format!(
                            "{name}::{vname} {{ {binds} }} => {JV}::Object(vec![(\"{vname}\"\
                             .to_string(), {inner})]),"
                        )
                    }
                })
                .collect();
            impl_serialize(name, &format!("match self {{ {} }}", arms.join(" ")))
        }
    }
}

/// `{"a": <a>, "b": <b>}` built from fields reachable as `{prefix}{field}`.
fn ser_named(prefix: &str, names: &[String]) -> String {
    let entries: Vec<String> = names
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_json_value(&{prefix}{f}))"))
        .collect();
    format!("{JV}::Object(vec![{}])", entries.join(", "))
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_json_value(&self) -> {JV} {{ {body} }} }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => format!(
                    "match v {{ {JV}::Object(_) => Ok({name} {{ {} }}), \
                     other => Err(::serde::DeError::custom(format!(\
                     \"{name}: expected object, found {{other:?}}\"))), }}",
                    de_named_fields(names)
                ),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_json_value(v)?))")
                }
                Fields::Tuple(n) => format!(
                    "match v {{ {JV}::Array(items) if items.len() == {n} => Ok({name}({})), \
                     other => Err(::serde::DeError::custom(format!(\
                     \"{name}: expected array of {n}, found {{other:?}}\"))), }}",
                    (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_json_value(&items[{i}])?"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                Fields::Unit => format!("{{ let _ = v; Ok({name}) }}"),
            };
            impl_deserialize(name, &body)
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(vname, _)| format!("\"{vname}\" => Ok({name}::{vname}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| !matches!(f, Fields::Unit))
                .map(|(vname, fields)| match fields {
                    Fields::Tuple(1) => format!(
                        "\"{vname}\" => Ok({name}::{vname}(\
                         ::serde::Deserialize::from_json_value(inner)?)),"
                    ),
                    Fields::Tuple(n) => format!(
                        "\"{vname}\" => match inner {{ \
                         {JV}::Array(items) if items.len() == {n} => Ok({name}::{vname}({})), \
                         other => Err(::serde::DeError::custom(format!(\
                         \"{name}::{vname}: expected array of {n}, found {{other:?}}\"))), }},",
                        (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_json_value(&items[{i}])?"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                    Fields::Named(fnames) => format!(
                        "\"{vname}\" => {{ let v = inner; match v {{ {JV}::Object(_) => \
                         Ok({name}::{vname} {{ {} }}), other => \
                         Err(::serde::DeError::custom(format!(\
                         \"{name}::{vname}: expected object, found {{other:?}}\"))), }} }},",
                        de_named_fields(fnames)
                    ),
                    Fields::Unit => unreachable!(),
                })
                .collect();
            let body = format!(
                "match v {{ \
                 {JV}::String(tag) => match tag.as_str() {{ {} other => \
                 Err(::serde::DeError::custom(format!(\"{name}: unknown variant `{{other}}`\"))), }}, \
                 {JV}::Object(entries) if entries.len() == 1 => {{ \
                 let (tag, inner) = &entries[0]; match tag.as_str() {{ {} other => \
                 Err(::serde::DeError::custom(format!(\"{name}: unknown variant `{{other}}`\"))), }} }}, \
                 other => Err(::serde::DeError::custom(format!(\
                 \"{name}: expected variant tag, found {{other:?}}\"))), }}",
                unit_arms.join(" "),
                tagged_arms.join(" ")
            );
            impl_deserialize(name, &body)
        }
    }
}

/// `a: from(v.get("a"))?, b: ...` — missing keys deserialize from `Null` so
/// `Option` fields default to `None`, everything else errors.
fn de_named_fields(names: &[String]) -> String {
    names
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_json_value(\
                 v.get(\"{f}\").unwrap_or(&{JV}::Null))\
                 .map_err(|e| ::serde::DeError::custom(\
                 format!(\"field `{f}`: {{e}}\")))?,"
            )
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_json_value(v: &{JV}) -> ::core::result::Result<Self, ::serde::DeError> \
         {{ {body} }} }}"
    )
}
