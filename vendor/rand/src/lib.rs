//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, deterministic implementation of exactly the surface the FROTE
//! reproduction uses: [`Rng::random`], [`Rng::random_range`],
//! [`Rng::random_bool`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`],
//! [`seq::SliceRandom::shuffle`] and [`seq::IndexedRandom::choose`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64. It is *not* bit-compatible with the real `rand` crate's
//! `StdRng` (ChaCha12), but every consumer in this repository only relies on
//! determinism-per-seed and statistical quality, both of which hold.

/// A source of random 64-bit words. Object-safe.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the full
    /// domain, `bool` fair).
    fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Samples uniformly from a range, e.g. `rng.random_range(0..10)` or
    /// `rng.random_range(-1.0..1.0)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Conversion of raw bits to a standard-distributed value.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform sampling over `[0, bound)` by widening multiply; the bias for the
/// bounds used in this workspace (≪ 2^64) is far below statistical noise.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let u = <$t as Standard>::standard(rng);
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the open bound.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
range_float!(f32, f64);

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from fresh entropy of `rng`, consuming exactly one
    /// `next_u64` draw regardless of the constructed generator's type — the
    /// upstream crate's `from_rng` shape. Callers that fan work out to
    /// parallel streams use this so the parent stream's position stays
    /// independent of how many children are derived afterwards.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::seed_from_u64(rng.next_u64())
    }

    /// Builds the `stream`-th generator of an independent family keyed by
    /// `seed`: a deterministic function of `(seed, stream)` whose outputs are
    /// decorrelated across streams. This is the substrate for
    /// `frote_par::SeedSplit`, which hands each parallel work item its own
    /// stream so results are bit-identical at any thread count.
    fn seed_from_stream(seed: u64, stream: u64) -> Self {
        Self::seed_from_u64(mix_stream(seed, stream))
    }
}

/// SplitMix64-style avalanche of a `(seed, stream)` pair into one seed.
/// Adjacent streams land far apart so xoshiro states never overlap in
/// practice, and `stream = 0` is *not* the identity on `seed`.
#[inline]
fn mix_stream(seed: u64, stream: u64) -> u64 {
    let mut z =
        seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x6A09_E667_F3BC_C909);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for call sites that prefer a small generator.
    pub type SmallRng = StdRng;
}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Random element access for indexable collections.
    pub trait IndexedRandom {
        /// Element type.
        type Output;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::bounded_u64(rng, self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-2.5..4.0f64);
            assert!((-2.5..4.0).contains(&y));
            let z = rng.random_range(0..=5usize);
            assert!(z <= 5);
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 60_000;
        let mut counts = [0usize; 6];
        for _ in 0..n {
            counts[rng.random_range(0..6usize)] += 1;
        }
        for &c in &counts {
            let expect = n as f64 / 6.0;
            assert!((c as f64 - expect).abs() < expect * 0.1, "{counts:?}");
        }
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn from_rng_consumes_one_draw_and_is_deterministic() {
        let mut parent_a = StdRng::seed_from_u64(5);
        let mut parent_b = StdRng::seed_from_u64(5);
        let mut child_a = StdRng::from_rng(&mut parent_a);
        let mut child_b = StdRng::from_rng(&mut parent_b);
        assert_eq!(child_a.next_u64(), child_b.next_u64());
        // Both parents advanced by exactly one draw.
        assert_eq!(parent_a.next_u64(), parent_b.next_u64());
        // The child stream is not the parent stream continued.
        let mut parent_c = StdRng::seed_from_u64(5);
        parent_c.next_u64();
        let mut child_c = StdRng::from_rng(&mut parent_a);
        assert_ne!(child_a.next_u64(), parent_c.next_u64());
        let _ = child_c.next_u64();
    }

    #[test]
    fn seed_from_stream_families_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_stream(42, 3);
        let mut b = StdRng::seed_from_stream(42, 3);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Different streams of the same seed differ, as do equal streams of
        // different seeds, and stream 0 is not seed_from_u64(seed).
        let mut c = StdRng::seed_from_stream(42, 4);
        assert_ne!(a.next_u64(), c.next_u64());
        let mut d = StdRng::seed_from_stream(43, 3);
        assert_ne!(b.next_u64(), d.next_u64());
        let mut s0 = StdRng::seed_from_stream(42, 0);
        let mut plain = StdRng::seed_from_u64(42);
        assert_ne!(s0.next_u64(), plain.next_u64());
    }

    #[test]
    fn seed_from_stream_outputs_look_independent() {
        // Crude decorrelation check: adjacent streams should not produce
        // correlated unit doubles.
        let n = 4_000;
        let mut dot = 0.0;
        for s in 0..4u64 {
            let mut x = StdRng::seed_from_stream(7, s);
            let mut y = StdRng::seed_from_stream(7, s + 1);
            for _ in 0..n {
                let a: f64 = x.random::<f64>() - 0.5;
                let b: f64 = y.random::<f64>() - 0.5;
                dot += a * b;
            }
        }
        let corr = dot / (4.0 * n as f64) / (1.0 / 12.0);
        assert!(corr.abs() < 0.05, "adjacent streams correlate: {corr}");
    }

    #[test]
    fn random_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 - 5_000.0).abs() < 500.0, "hits={hits}");
    }
}
