//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so this workspace vendors a
//! deliberately small serialization framework under the `serde` name. Unlike
//! real serde's visitor architecture, [`Serialize`] and [`Deserialize`] here
//! convert directly to and from an in-memory JSON tree ([`json::JsonValue`]).
//! The derive macros (re-exported from `serde_derive`) generate
//! externally-tagged representations compatible with what real
//! serde+serde_json would produce for the plain `#[derive]` (no attributes)
//! types this workspace uses.

pub use serde_derive::{Deserialize, Serialize};

/// The JSON data model shared by `serde` impls and the `serde_json` facade.
pub mod json {
    /// An in-memory JSON document.
    #[derive(Debug, Clone, PartialEq)]
    pub enum JsonValue {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (stored as `f64`; integers up to 2^53 are exact).
        Number(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<JsonValue>),
        /// An object; insertion order is preserved.
        Object(Vec<(String, JsonValue)>),
    }

    impl JsonValue {
        /// Looks up a key in an object.
        pub fn get(&self, key: &str) -> Option<&JsonValue> {
            match self {
                JsonValue::Object(entries) => {
                    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
                }
                _ => None,
            }
        }
    }
}

use json::JsonValue;

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// The failure description.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

fn type_name(v: &JsonValue) -> &'static str {
    match v {
        JsonValue::Null => "null",
        JsonValue::Bool(_) => "bool",
        JsonValue::Number(_) => "number",
        JsonValue::String(_) => "string",
        JsonValue::Array(_) => "array",
        JsonValue::Object(_) => "object",
    }
}

fn unexpected(expected: &str, found: &JsonValue) -> DeError {
    DeError::custom(format!("expected {expected}, found {}", type_name(found)))
}

/// Conversion into the JSON data model.
pub trait Serialize {
    /// Builds the JSON tree for `self`.
    fn to_json_value(&self) -> JsonValue;
}

/// Conversion out of the JSON data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not match `Self`'s shape.
    fn from_json_value(v: &JsonValue) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue {
                let x = *self as f64;
                if x.is_finite() { JsonValue::Number(x) } else { JsonValue::Null }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
                match v {
                    JsonValue::Number(n) => Ok(*n as $t),
                    other => Err(unexpected("number", other)),
                }
            }
        }
    )*};
}
impl_num!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(unexpected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::String(s) => Ok(s.clone()),
            other => Err(unexpected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(unexpected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> JsonValue {
        match self {
            Some(x) => x.to_json_value(),
            None => JsonValue::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
        T::from_json_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
        T::from_json_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
        T::from_json_value(v).map(std::rc::Rc::new)
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?))).collect()
            }
            other => Err(unexpected("object", other)),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn to_json_value(&self) -> JsonValue {
        // Sort keys so output is deterministic, like a BTreeMap.
        let mut entries: Vec<_> =
            self.iter().map(|(k, v)| (k.clone(), v.to_json_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        JsonValue::Object(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?))).collect()
            }
            other => Err(unexpected("object", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> JsonValue {
                JsonValue::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
                match v {
                    JsonValue::Array(items) => {
                        let expected = 0usize $(+ { let _ = $idx; 1 })+;
                        if items.len() != expected {
                            return Err(DeError::custom(format!(
                                "expected array of {expected}, found {}", items.len())));
                        }
                        Ok(($($name::from_json_value(&items[$idx])?,)+))
                    }
                    other => Err(unexpected("array", other)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::json::JsonValue;
    use super::{Deserialize, Serialize};

    #[test]
    fn primitives_round_trip() {
        let v = 3.5f64.to_json_value();
        assert_eq!(f64::from_json_value(&v).unwrap(), 3.5);
        let v = vec![1u32, 2, 3].to_json_value();
        assert_eq!(Vec::<u32>::from_json_value(&v).unwrap(), vec![1, 2, 3]);
        let v = Some("hi".to_string()).to_json_value();
        assert_eq!(Option::<String>::from_json_value(&v).unwrap(), Some("hi".into()));
        assert_eq!(Option::<String>::from_json_value(&JsonValue::Null).unwrap(), None);
    }

    #[test]
    fn mismatched_shape_errors() {
        assert!(f64::from_json_value(&JsonValue::Bool(true)).is_err());
        assert!(Vec::<u32>::from_json_value(&JsonValue::Number(1.0)).is_err());
    }
}
