//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so this workspace vendors a
//! small deterministic property-testing harness under the `proptest` name.
//! It covers exactly the surface the FROTE test suites use: range and tuple
//! strategies, [`strategy::Just`], `prop_map`, [`collection::vec`],
//! [`bool::ANY`], `prop_oneof!`, `prop_compose!`, the `proptest!` macro with
//! an optional `#![proptest_config(...)]` header, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest, none of which the suites rely on:
//! no shrinking on failure, and case generation is seeded from the test's
//! fully-qualified name plus the case index, so runs are fully
//! deterministic. Set `PROPTEST_CASES` to change the default case count.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-case deterministic RNG handed to strategies.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Builds the RNG for `case` of the test named `name` (seeded from
        /// an FNV-1a hash of the name, mixed with the case index).
        pub fn deterministic(name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Runner configuration; only the case count is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(48);
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of one type. Object-safe so
    /// heterogeneous `prop_oneof!` arms can be boxed.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            (**self).gen_value(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F> Map<S, F> {
        /// Wraps `inner`, applying `f` to each generated value
        /// (used by `prop_compose!`).
        pub fn new(inner: S, f: F) -> Self {
            Map { inner, f }
        }
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Uniform choice between boxed arms (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union of `arms`.
        ///
        /// # Panics
        ///
        /// Panics when `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.random_range(0..self.arms.len());
            self.arms[i].gen_value(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    range_strategy_float!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A length specification for [`vec()`](fn@vec): an exact size or a half-open
    /// range, as in real proptest.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// The strategy returned by [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.random()
        }
    }

    /// Fair coin flips.
    pub const ANY: Any = Any;
}

/// The common imports: strategy types and the assertion/definition macros.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Fails the current case unless the sides differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines a function returning a composed strategy:
/// `fn name(args)(bindings in strategies) -> Out { body }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($argn:ident: $argt:ty),* $(,)?)
        ($($pat:pat in $strat:expr),+ $(,)?) -> $out:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($argn: $argt),*) -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::Map::new(($($strat,)+), move |($($pat,)+)| $body)
        }
    };
}

/// Defines property tests. Each function runs `cases` times with values
/// drawn from its strategies; the RNG is seeded from the test path, so runs
/// are deterministic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = <$crate::test_runner::ProptestConfig as ::core::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident
        ($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let mut proptest_rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case as u64,
                );
                let ($($pat,)+) =
                    $crate::strategy::Strategy::gen_value(&strategies, &mut proptest_rng);
                // The closure gives `prop_assume!` an early-exit scope for
                // this case only.
                #[allow(clippy::redundant_closure_call)]
                (|| $body)();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::deterministic("self_test", 0);
        let strat = (0u32..5, -1.0..1.0f64, crate::bool::ANY);
        for _ in 0..200 {
            let (a, b, _c) = strat.gen_value(&mut rng);
            assert!(a < 5);
            assert!((-1.0..1.0).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = TestRng::deterministic("self_test_vec", 1);
        for _ in 0..100 {
            let v = crate::collection::vec(0u32..3, 2..6).gen_value(&mut rng);
            assert!((2..6).contains(&v.len()));
            let exact = crate::collection::vec(0u32..3, 4).gen_value(&mut rng);
            assert_eq!(exact.len(), 4);
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = TestRng::deterministic("self_test_oneof", 2);
        let strat = prop_oneof![Just(1u32), Just(2u32)].prop_map(|x| x * 10);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(strat.gen_value(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![10, 20]);
    }

    #[test]
    fn determinism_across_runs() {
        let strat = crate::collection::vec(0u64..1000, 5);
        let a: Vec<Vec<u64>> =
            (0..10).map(|c| strat.gen_value(&mut TestRng::deterministic("det", c))).collect();
        let b: Vec<Vec<u64>> =
            (0..10).map(|c| strat.gen_value(&mut TestRng::deterministic("det", c))).collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: bindings, assume, assert.
        #[test]
        fn macro_smoke(x in 0u32..50, flip in crate::bool::ANY) {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            if flip {
                prop_assert_ne!(x, 13);
            }
        }
    }

    prop_compose! {
        fn pair(scale: u32)(a in 0u32..10, b in 0u32..10) -> (u32, u32) {
            (a * scale, b * scale)
        }
    }

    proptest! {
        #[test]
        fn composed_pairs_scale(p in pair(3)) {
            prop_assert_eq!(p.0 % 3, 0);
            prop_assert_eq!(p.1 % 3, 0);
        }
    }
}
