//! Conflicting feedback from multiple experts (paper §3.1 "Rule conflicts").
//!
//! ```sh
//! cargo run --release --example multi_expert_conflict
//! ```
//!
//! Two experts give overlapping rules with contradictory labels. FROTE
//! refuses the conflicting set; the example shows both resolution options
//! the library provides — dropping the later rule, and carving out the
//! intersection with a 50/50 probabilistic mixture (the paper's option 2) —
//! then runs FROTE with the resolved set.

use frote::{Frote, FroteConfig, FroteError};
use frote_data::synth::{DatasetKind, SynthConfig};
use frote_ml::logreg::LogisticRegressionTrainer;
use frote_rules::parse::parse_rule;
use frote_rules::{ConflictResolution, FeedbackRuleSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds =
        DatasetKind::Contraceptive.generate(&SynthConfig { n_rows: 800, ..Default::default() });
    let schema = ds.schema().clone();

    // Expert A: young couples with children use short-term methods.
    let expert_a = parse_rule("wife-age < 30 AND n-children >= 1 => short-term", &schema)?;
    // Expert B: families with several children use long-term methods —
    // overlapping coverage, different class: a conflict.
    let expert_b = parse_rule("n-children >= 3 => long-term", &schema)?;
    let frs = FeedbackRuleSet::new(vec![expert_a, expert_b]);

    let conflicts = frs.conflicts(&schema);
    println!("detected conflicts: {conflicts:?}");
    assert!(!conflicts.is_empty());

    // FROTE rejects the conflicting set outright.
    let trainer = LogisticRegressionTrainer::default();
    let config =
        FroteConfig { iteration_limit: 8, instances_per_iteration: Some(30), ..Default::default() };
    let mut rng = StdRng::seed_from_u64(42);
    match Frote::new(config).run(&ds, &trainer, &frs, &mut rng) {
        Err(FroteError::Rules(e)) => println!("FROTE rejected the set: {e}"),
        other => panic!("expected a rules error, got {:?}", other.is_ok()),
    }

    // Option 1: drop the later expert's rule.
    let dropped = frs.resolve_conflicts(&schema, ConflictResolution::DropLater);
    println!("\nafter DropLater ({} rules):", dropped.len());
    for r in dropped.rules() {
        println!("  {}", r.display_with(&schema));
    }

    // Option 2 (the paper's): a mixture rule for the intersection, taking
    // precedence over both originals.
    let mixed = frs.resolve_conflicts(&schema, ConflictResolution::IntersectionMixture);
    println!("\nafter IntersectionMixture ({} rules):", mixed.len());
    for r in mixed.rules() {
        println!("  {}", r.display_with(&schema));
    }

    // The resolved set runs fine.
    let out = Frote::new(config).run(&ds, &trainer, &mixed, &mut rng)?;
    println!(
        "\nFROTE on the resolved set: J̄ {:.3} -> {:.3} ({} instances added)",
        out.report.initial.j, out.report.final_objective.j, out.report.instances_added,
    );
    Ok(())
}
