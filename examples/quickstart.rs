//! Quickstart: edit a model with one feedback rule.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Reproduces the paper's Figure 1(c) scenario: the historical loan data
//! contains *no applicants under 35* (the old policy never considered them),
//! and a new policy approves young, salaried, high-income applicants.
//! Relabelling cannot help — there is nothing to relabel — so FROTE must
//! synthesize instances in the empty region to move the boundary.

use frote::objective::paper_j;
use frote::{Frote, FroteConfig};
use frote_data::{Dataset, Schema, Value};
use frote_ml::forest::RandomForestTrainer;
use frote_ml::TrainAlgorithm;
use frote_rules::parse::parse_rule;
use frote_rules::FeedbackRuleSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    Schema::builder("approved", vec!["no".into(), "yes".into()])
        .numeric("age")
        .numeric("income")
        .categorical("employment", vec!["salaried".into(), "self-employed".into()])
        .build()
}

fn sample(n: usize, min_age: f64, rng: &mut StdRng) -> Dataset {
    let mut ds = Dataset::new(schema());
    for _ in 0..n {
        let age = rng.random_range(min_age..70.0);
        let income = rng.random_range(20_000.0..120_000.0);
        let employment = u32::from(rng.random::<f64>() < 0.3);
        // Old policy: 40+, income above 60k.
        let approved = u32::from(age >= 40.0 && income > 60_000.0);
        ds.push_row(&[Value::Num(age), Value::Num(income), Value::Cat(employment)], approved)
            .expect("row matches schema");
    }
    ds
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);
    // Historical data: nobody under 35 ever applied.
    let train = sample(800, 35.0, &mut rng);
    // Tomorrow's applicants include younger people.
    let test = sample(400, 18.0, &mut rng);

    // New policy: young, salaried, high-income applicants are approved.
    let rule =
        parse_rule("age < 35 AND income > 80000 AND employment = salaried => yes", train.schema())?;
    println!("feedback rule: {}", rule.display_with(train.schema()));
    let frs = FeedbackRuleSet::new(vec![rule]);
    println!(
        "rule coverage in training data: {} rows (the region is empty)",
        frs.coverage(&train).len()
    );

    let trainer = RandomForestTrainer::default();
    let before = trainer.train(&train);
    let before_j = paper_j(before.as_ref(), &test, &frs);
    println!("\nbefore editing: MRA {:.3}, outside-coverage F1 {:.3}", before_j.mra, before_j.f1);

    let config = FroteConfig {
        iteration_limit: 12,
        instances_per_iteration: Some(60),
        ..Default::default()
    };
    let out = Frote::new(config).run(&train, &trainer, &frs, &mut rng)?;
    let after_j = paper_j(out.model.as_ref(), &test, &frs);
    println!("after FROTE:    MRA {:.3}, outside-coverage F1 {:.3}", after_j.mra, after_j.f1);
    println!(
        "({} synthetic instances over {} accepted iterations; dataset {} -> {} rows)",
        out.report.instances_added,
        out.report.n_accepted(),
        train.n_rows(),
        out.dataset.n_rows(),
    );
    assert!(after_j.mra > before_j.mra, "augmentation should raise rule agreement");
    Ok(())
}
