//! The paper's motivating scenario (Figure 1): a loan-approval policy
//! changes, lowering the age threshold, and the user expresses the change by
//! editing a rule extracted from the existing model rather than crafting one
//! from scratch.
//!
//! ```sh
//! cargo run --release --example loan_approval
//! ```
//!
//! Pipeline: train on historical data → extract a rule-set explanation
//! (`frote-induct`, the BRCG stand-in) → edit the age condition → relabel +
//! augment with FROTE → verify the new policy on a held-out set drawn from
//! the *new* policy distribution.

use frote::objective::paper_j;
use frote::{Frote, FroteConfig, ModStrategy};
use frote_data::{Dataset, Schema, Value};
use frote_induct::RuleInducer;
use frote_ml::gbdt::GbdtTrainer;
use frote_ml::TrainAlgorithm;
use frote_rules::{Clause, FeedbackRule, FeedbackRuleSet, Op, Predicate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    Schema::builder("approved", vec!["no".into(), "yes".into()])
        .numeric("age")
        .numeric("income")
        .numeric("debt-ratio")
        .categorical("marital-status", vec!["single".into(), "married".into()])
        .build()
}

/// Approval policy: threshold on age plus an income/debt gate.
fn label(age: f64, income: f64, debt: f64, min_age: f64) -> u32 {
    u32::from(age >= min_age && income > 50_000.0 && debt < 0.45)
}

fn sample(n: usize, min_age: f64, rng: &mut StdRng) -> Dataset {
    let mut ds = Dataset::new(schema());
    for _ in 0..n {
        let age = rng.random_range(18.0..75.0);
        let income = rng.random_range(15_000.0..130_000.0);
        let debt = rng.random_range(0.0..0.9);
        let marital = u32::from(rng.random::<f64>() < 0.5);
        let y = label(age, income, debt, min_age);
        ds.push_row(
            &[Value::Num(age), Value::Num(income), Value::Num(debt), Value::Cat(marital)],
            y,
        )
        .expect("row matches schema");
    }
    ds
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);
    // Historical data follows the old policy (approve from age 40).
    let train = sample(1200, 40.0, &mut rng);
    // Future data follows the new policy (approve from age 25).
    let future = sample(600, 25.0, &mut rng);

    let trainer = GbdtTrainer::default();
    let model = trainer.train(&train);

    // Step 1: the user reviews rule explanations of the current model.
    let explanations = RuleInducer::default().explain(&train, model.as_ref());
    println!("model explanations ({}):", explanations.len());
    for r in &explanations {
        println!("  {}", r.display_with(train.schema()));
    }

    // Step 2: rather than writing a rule from scratch, the user takes the
    // highest-coverage "approve" explanation and lowers its age condition.
    let seed_rule = explanations
        .iter()
        .filter(|r| r.dist().mode() == 1)
        .max_by_key(|r| r.coverage_count(&train))
        .expect("the model approves someone");
    let edited: Vec<Predicate> = seed_rule
        .clause()
        .predicates()
        .iter()
        .map(|p| {
            // Lower any age lower-bound to 25.
            if train.schema().feature(p.feature()).name() == "age"
                && matches!(p.op(), Op::Ge | Op::Gt)
            {
                Predicate::new(p.feature(), Op::Ge, Value::Num(25.0))
            } else {
                *p
            }
        })
        .collect();
    let mut edited = edited;
    if !edited.iter().any(|p| train.schema().feature(p.feature()).name() == "age") {
        // Explanation had no age condition; add the new policy's bound.
        edited.push(Predicate::new(0, Op::Ge, Value::Num(25.0)));
    }
    // Keep the income gate explicit so the rule matches the real new policy.
    if !edited.iter().any(|p| train.schema().feature(p.feature()).name() == "income") {
        edited.push(Predicate::new(1, Op::Gt, Value::Num(50_000.0)));
    }
    let feedback = FeedbackRule::deterministic(Clause::new(edited), 1);
    println!("\nedited feedback rule: {}", feedback.display_with(train.schema()));
    let frs = FeedbackRuleSet::new(vec![feedback]);

    // Step 3: measure, edit with FROTE, measure again — on future-policy data.
    let before = paper_j(model.as_ref(), &future, &frs);
    let config = FroteConfig {
        iteration_limit: 15,
        instances_per_iteration: Some(60),
        mod_strategy: ModStrategy::Relabel,
        ..Default::default()
    };
    let out = Frote::new(config).run(&train, &trainer, &frs, &mut rng)?;
    let after = paper_j(out.model.as_ref(), &future, &frs);

    println!("\nevaluation on future-policy data:");
    println!("  before: MRA {:.3}  F1 {:.3}  J̄ {:.3}", before.mra, before.f1, before.j);
    println!("  after:  MRA {:.3}  F1 {:.3}  J̄ {:.3}", after.mra, after.f1, after.j);
    println!(
        "  ({} synthetic instances over {} accepted iterations)",
        out.report.instances_added,
        out.report.n_accepted()
    );
    if out.report.instances_added == 0 {
        println!(
            "  relabelling alone aligned the model here — the covered region \
             already has plenty of data; see the quickstart example for the \
             empty-region case where augmentation is essential"
        );
    }
    Ok(())
}
