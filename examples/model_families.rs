//! The black-box contract in action: FROTE edits four different model
//! families — linear, bagged trees, boosted trees, and a generative Naive
//! Bayes — through the same `TrainAlgorithm` interface, with no
//! model-specific code anywhere in the editing loop (paper §3.2: the
//! algorithm "can thus be used with any classification algorithm that takes
//! training data as input and produces a classifier as output").
//!
//! ```sh
//! cargo run --release --example model_families
//! ```

use frote::objective::paper_j;
use frote::{Frote, FroteConfig};
use frote_data::split::train_test_split;
use frote_data::synth::{DatasetKind, SynthConfig};
use frote_ml::forest::RandomForestTrainer;
use frote_ml::gbdt::GbdtTrainer;
use frote_ml::logreg::LogisticRegressionTrainer;
use frote_ml::naive_bayes::NaiveBayesTrainer;
use frote_ml::TrainAlgorithm;
use frote_rules::parse::parse_rule;
use frote_rules::FeedbackRuleSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds =
        DatasetKind::Contraceptive.generate(&SynthConfig { n_rows: 1000, ..Default::default() });
    let mut rng = StdRng::seed_from_u64(42);
    let (train, test) = train_test_split(&ds, 0.7, &mut rng);

    let rule = parse_rule("wife-age < 28 AND wife-education = wedu3 => long-term", ds.schema())?;
    println!("feedback rule: {}\n", rule.display_with(ds.schema()));
    let frs = FeedbackRuleSet::new(vec![rule]);

    let families: Vec<Box<dyn TrainAlgorithm>> = vec![
        Box::new(LogisticRegressionTrainer::default()),
        Box::new(RandomForestTrainer::default()),
        Box::new(GbdtTrainer::default()),
        Box::new(NaiveBayesTrainer::default()),
    ];

    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "model", "MRA before", "MRA after", "F1 before", "F1 after", "added"
    );
    for trainer in families {
        let before_model = trainer.train(&train);
        let before = paper_j(before_model.as_ref(), &test, &frs);
        let config = FroteConfig {
            iteration_limit: 10,
            instances_per_iteration: Some(60),
            ..Default::default()
        };
        let mut run_rng = StdRng::seed_from_u64(42);
        let out = Frote::new(config).run(&train, trainer.as_ref(), &frs, &mut run_rng)?;
        let after = paper_j(out.model.as_ref(), &test, &frs);
        println!(
            "{:<6} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>8}",
            trainer.name(),
            before.mra,
            after.mra,
            before.f1,
            after.f1,
            out.report.instances_added
        );
    }
    println!("\nsame loop, same rules, four model families — zero model-specific code.");
    Ok(())
}
