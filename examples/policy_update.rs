//! Comparing the input-dataset choices (`none` / `relabel` / `drop`) on a
//! regulatory policy update — the paper's §5.1 "Input dataset choices" axis.
//!
//! ```sh
//! cargo run --release --example policy_update
//! ```
//!
//! A claims-management model must start fast-tracking a category of claims
//! it historically denied. When the user cannot touch the historical data
//! (data-integrity constraints), `none` still works through augmentation
//! alone; when they can, `relabel`/`drop` converge faster.

use frote::objective::paper_j;
use frote::{Frote, FroteConfig, ModStrategy};
use frote_data::synth::ConceptCond;
use frote_data::synth::{ConceptRule, FeatureGen, PlantedConcept, SynthConfig, SynthSpec};
use frote_data::Schema;
use frote_ml::forest::RandomForestTrainer;
use frote_rules::parse::parse_rule;
use frote_rules::FeedbackRuleSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn claims_spec() -> SynthSpec {
    let schema = Schema::builder("decision", vec!["deny".into(), "fast-track".into()])
        .numeric("claim-amount")
        .numeric("customer-tenure")
        .categorical("claim-type", vec!["auto".into(), "home".into(), "health".into()])
        .categorical("documentation", vec!["complete".into(), "partial".into()])
        .build();
    let gens = vec![
        FeatureGen::GaussianMixture {
            weights: vec![3.0, 1.0],
            means: vec![2_000.0, 15_000.0],
            stds: vec![800.0, 5_000.0],
        },
        FeatureGen::gaussian(6.0, 3.0),
        FeatureGen::Categorical { weights: vec![3.0, 2.0, 2.0] },
        FeatureGen::Categorical { weights: vec![4.0, 1.0] },
    ];
    // Historical policy: fast-track only small, well-documented claims.
    let concept = PlantedConcept::new(
        vec![ConceptRule::new(
            vec![
                ConceptCond::NumLt { feature: 0, threshold: 3_000.0 },
                ConceptCond::CatEq { feature: 3, category: 0 },
            ],
            1,
        )],
        0,
    );
    SynthSpec::new(schema, gens, concept, 0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = claims_spec();
    let ds = spec.generate(&SynthConfig { n_rows: 1000, noise: 0.05, seed: 42 });
    // New regulation: long-tenure health claims must be fast-tracked even
    // with partial documentation.
    let rule =
        parse_rule("claim-type = health AND customer-tenure >= 8 => fast-track", ds.schema())?;
    println!("policy update: {}\n", rule.display_with(ds.schema()));
    let frs = FeedbackRuleSet::new(vec![rule]);

    let trainer = RandomForestTrainer::default();
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "strategy", "MRA", "F1", "J̄", "added", "accepted"
    );
    for strategy in [ModStrategy::None, ModStrategy::Relabel, ModStrategy::Drop] {
        // η matters for `none`/`drop`: depth-3 forests barely move for
        // small additions, so no candidate improves Ĵ and every batch is
        // discarded (Algorithm 1 keeps only improving datasets). η = 100
        // gives each batch enough mass to shift the ensemble.
        let config = FroteConfig {
            iteration_limit: 15,
            instances_per_iteration: Some(100),
            mod_strategy: strategy,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(42);
        let out = Frote::new(config).run(&ds, &trainer, &frs, &mut rng)?;
        let j = paper_j(out.model.as_ref(), &ds, &frs);
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>8.3} {:>10} {:>10}",
            strategy.name(),
            j.mra,
            j.f1,
            j.j,
            out.report.instances_added,
            out.report.n_accepted(),
        );
    }
    Ok(())
}
