//! Auditing a model edit (paper §6, "Broader impact"): FROTE's edits are
//! transparent — the feedback rules, the augmented dataset, and an
//! interpretable comparison of the pre-/post-edit models together form the
//! governance trail the paper describes (citing Nair et al. 2021's
//! "What changed?" model comparison).
//!
//! ```sh
//! cargo run --release --example audit_edit
//! ```

use frote::{Frote, FroteConfig};
use frote_data::synth::{DatasetKind, SynthConfig};
use frote_eval::model_diff::ModelDiff;
use frote_ml::gbdt::GbdtTrainer;
use frote_ml::TrainAlgorithm;
use frote_rules::parse::parse_rule;
use frote_rules::FeedbackRuleSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 900, ..Default::default() });

    // The edit: medium-safety large cars should now be rated acceptable.
    let rule = parse_rule("safety = med AND persons = more => acc", ds.schema())?;
    println!("feedback rule under review:\n  {}\n", rule.display_with(ds.schema()));
    let frs = FeedbackRuleSet::new(vec![rule]);

    let trainer = GbdtTrainer::default();
    let before = trainer.train(&ds);

    let config = FroteConfig {
        iteration_limit: 12,
        instances_per_iteration: Some(60),
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(42);
    let out = Frote::new(config).run(&ds, &trainer, &frs, &mut rng)?;

    // Governance artifacts:
    println!("audit artifact 1 — the data lineage:");
    println!(
        "  {} original rows + {} synthetic rows (labels from the rule)\n",
        ds.n_rows(),
        out.report.instances_added
    );

    println!("audit artifact 2 — what changed in the model:");
    let diff = ModelDiff::compute(before.as_ref(), out.model.as_ref(), &ds);
    print!("{}", diff.render(&ds));

    // The edit should be localized: most flipped predictions sit inside the
    // feedback rule's coverage.
    let coverage = frs.coverage(&ds);
    let flipped: Vec<usize> = (0..ds.n_rows())
        .filter(|&i| before.predict(&ds.row(i)) != out.model.predict(&ds.row(i)))
        .collect();
    let inside = flipped.iter().filter(|i| coverage.contains(i)).count();
    println!(
        "\nlocality: {}/{} flipped predictions are inside the rule's coverage",
        inside,
        flipped.len()
    );
    Ok(())
}
