//! Post-processing (Overlay, Daly et al. 2021) vs model editing (FROTE) —
//! the comparison behind the paper's Table 2, on one concrete scenario.
//!
//! ```sh
//! cargo run --release --example overlay_vs_frote
//! ```
//!
//! Overlay patches predictions at serve time; FROTE bakes the feedback into
//! the retrained model. When the feedback rule deviates strongly from what
//! the model believes, Overlay's soft mode cannot follow it and its hard
//! mode damages the surrounding region — FROTE moves the boundary instead.

use frote::{Frote, FroteConfig};
use frote_data::split::train_test_split;
use frote_data::synth::{DatasetKind, SynthConfig};
use frote_ml::forest::RandomForestTrainer;
use frote_ml::TrainAlgorithm;
use frote_overlay::{Overlay, OverlayMode};
use frote_rules::parse::parse_rule;
use frote_rules::FeedbackRuleSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = DatasetKind::Mushroom.generate(&SynthConfig { n_rows: 1500, ..Default::default() });
    let mut rng = StdRng::seed_from_u64(42);
    let (train, test) = train_test_split(&ds, 0.7, &mut rng);

    // Feedback that deviates from the planted concept: a spore-print color
    // the model considers edible should now be flagged poisonous.
    let rule = parse_rule(
        "spore-print-color = spore-print-color-0 AND gill-size = gill-size-0 => poisonous",
        ds.schema(),
    )?;
    println!("feedback rule: {}\n", rule.display_with(ds.schema()));
    let frs = FeedbackRuleSet::new(vec![rule]);

    let trainer = RandomForestTrainer::default();
    let model = trainer.train(&train);

    // One scoring function for everything: rule agreement inside coverage,
    // accuracy outside.
    let score = |preds: &[u32]| {
        let covered: Vec<usize> = frs.attributed_coverage(&test).concat();
        let agree = covered.iter().filter(|&&i| frs.rule(0).label_agrees(preds[i])).count() as f64
            / covered.len().max(1) as f64;
        let outside = frs.outside_coverage(&test);
        let acc = outside.iter().filter(|&&i| preds[i] == test.label(i)).count() as f64
            / outside.len().max(1) as f64;
        (agree, acc)
    };

    let mut rows = vec![("initial model".to_string(), score(&model.predict_dataset(&test)))];
    // Overlay wraps the *unchanged* model.
    for mode in [OverlayMode::Soft, OverlayMode::Hard] {
        let ov = Overlay::new(model.as_ref(), frs.clone(), mode, &train);
        rows.push((format!("Overlay-{mode:?}"), score(&ov.predict_dataset(&test))));
    }

    // FROTE edits the model.
    let config = FroteConfig {
        iteration_limit: 12,
        instances_per_iteration: Some(50),
        ..Default::default()
    };
    let out = Frote::new(config).run(&train, &trainer, &frs, &mut rng)?;
    rows.push(("FROTE (edited)".to_string(), score(&out.model.predict_dataset(&test))));

    println!("{:<16} {:>10} {:>14}", "system", "rule-agree", "outside-acc");
    for (name, (agree, acc)) in rows {
        println!("{:<16} {:>10.3} {:>14.3}", name, agree, acc);
    }
    println!(
        "\nFROTE added {} synthetic instances; the edited model needs no serve-time patch layer.",
        out.report.instances_added
    );
    Ok(())
}
