//! Cross-crate integration tests: the full §5.1 pipeline from synthetic
//! dataset through rule induction, perturbation, splitting, FROTE, and
//! held-out evaluation.

use frote::objective::paper_j;
use frote::{Frote, FroteConfig, ModStrategy, SelectionStrategy};
use frote_data::synth::{DatasetKind, SynthConfig};
use frote_eval::runner::{run_once, RunSpec};
use frote_eval::setup::{draw_conflict_free_frs, prepare};
use frote_eval::{ModelKind, Scale};
use frote_ml::forest::{ForestParams, RandomForestTrainer};
use frote_rules::parse::parse_rule;
use frote_rules::FeedbackRuleSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fast_rf() -> RandomForestTrainer {
    RandomForestTrainer::new(ForestParams { n_trees: 8, ..Default::default() }, 42)
}

/// The headline behaviour: editing raises MRA on a held-out set without
/// collapsing outside-coverage F1, in the empty-coverage (tcf = 0) regime.
#[test]
fn frote_raises_mra_in_empty_coverage_regime() {
    let setup = prepare(DatasetKind::Car, Scale::Smoke, 42);
    let spec = RunSpec { tcf: 0.0, frs_size: 3, ..RunSpec::new(ModelKind::Rf, Scale::Smoke) };
    let mut improvements = Vec::new();
    let mut f1_drops = Vec::new();
    for seed in 0..6 {
        if let Some(r) = run_once(&setup, &spec, 1000 + seed) {
            improvements.push(r.final_.mra - r.initial.mra);
            f1_drops.push(r.initial.f1 - r.final_.f1);
        }
    }
    assert!(improvements.len() >= 3, "too many degenerate runs");
    let mean_improvement: f64 = improvements.iter().sum::<f64>() / improvements.len() as f64;
    assert!(
        mean_improvement > 0.05,
        "expected a clear MRA gain at tcf=0, got {mean_improvement} ({improvements:?})"
    );
    let mean_drop: f64 = f1_drops.iter().sum::<f64>() / f1_drops.len() as f64;
    assert!(mean_drop < 0.25, "outside-coverage F1 collapsed: {f1_drops:?}");
}

/// The relabel midpoint always sits between initial and final in intent:
/// final must not be worse than the modified baseline on average.
#[test]
fn augmentation_beats_relabel_alone_on_average() {
    let setup = prepare(DatasetKind::Mushroom, Scale::Smoke, 42);
    let spec = RunSpec { tcf: 0.05, frs_size: 3, ..RunSpec::new(ModelKind::Lgbm, Scale::Smoke) };
    let mut deltas = Vec::new();
    for seed in 0..6 {
        if let Some(r) = run_once(&setup, &spec, 2000 + seed) {
            deltas.push(r.final_.j - r.modified.j);
        }
    }
    assert!(!deltas.is_empty());
    let mean: f64 = deltas.iter().sum::<f64>() / deltas.len() as f64;
    assert!(mean > -0.05, "augmentation badly hurt the relabel baseline: {deltas:?}");
}

/// All three selection strategies produce valid runs end to end.
#[test]
fn all_selection_strategies_run_end_to_end() {
    let setup = prepare(DatasetKind::Car, Scale::Smoke, 42);
    for strategy in [
        SelectionStrategy::Random,
        SelectionStrategy::Ip,
        SelectionStrategy::OnlineProxy,
        SelectionStrategy::JointNeighbors,
    ] {
        let spec = RunSpec { selection: strategy, ..RunSpec::new(ModelKind::Rf, Scale::Smoke) };
        let r = run_once(&setup, &spec, 7).unwrap_or_else(|| {
            panic!("{} run degenerated", strategy.name());
        });
        assert!((0.0..=1.0).contains(&r.final_.j), "{}", strategy.name());
    }
}

/// All three mod strategies run end to end on all three model families.
#[test]
fn mod_strategy_times_model_matrix() {
    let setup = prepare(DatasetKind::Contraceptive, Scale::Smoke, 42);
    for mod_strategy in [ModStrategy::None, ModStrategy::Relabel, ModStrategy::Drop] {
        for model in ModelKind::ALL {
            let spec = RunSpec { mod_strategy, ..RunSpec::new(model, Scale::Smoke) };
            let r = run_once(&setup, &spec, 99);
            assert!(r.is_some(), "degenerate run for {} + {}", mod_strategy.name(), model.name());
        }
    }
}

/// Full determinism across the whole pipeline: same seeds, same bytes.
#[test]
fn pipeline_is_bit_deterministic() {
    let setup_a = prepare(DatasetKind::Car, Scale::Smoke, 42);
    let setup_b = prepare(DatasetKind::Car, Scale::Smoke, 42);
    assert_eq!(setup_a.dataset, setup_b.dataset);
    assert_eq!(setup_a.pool, setup_b.pool);
    let spec = RunSpec::new(ModelKind::Lgbm, Scale::Smoke);
    assert_eq!(run_once(&setup_a, &spec, 5), run_once(&setup_b, &spec, 5));
}

/// FROTE's output dataset always retrains to the model it returns (the
/// advertised contract: `D̂` is the artifact, the model is a convenience).
#[test]
fn output_dataset_reproduces_output_model() {
    let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 300, ..Default::default() });
    let rule = parse_rule("safety = low => acc", ds.schema()).unwrap();
    let frs = FeedbackRuleSet::new(vec![rule]);
    let trainer = fast_rf();
    let config =
        FroteConfig { iteration_limit: 5, instances_per_iteration: Some(20), ..Default::default() };
    let mut rng = StdRng::seed_from_u64(3);
    let out = Frote::new(config).run(&ds, &trainer, &frs, &mut rng).unwrap();
    use frote_ml::TrainAlgorithm;
    let retrained = trainer.train(&out.dataset);
    // Same training data + deterministic trainer => identical predictions.
    for i in (0..ds.n_rows()).step_by(17) {
        assert_eq!(retrained.predict(&ds.row(i)), out.model.predict(&ds.row(i)));
    }
}

/// The quota accounting in the report matches the dataset growth.
#[test]
fn report_accounting_matches_dataset() {
    let ds = DatasetKind::Mushroom.generate(&SynthConfig { n_rows: 400, ..Default::default() });
    let rule = parse_rule("odor = odor-2 => poisonous", ds.schema()).unwrap();
    let frs = FeedbackRuleSet::new(vec![rule]);
    let config = FroteConfig {
        iteration_limit: 6,
        instances_per_iteration: Some(25),
        mod_strategy: ModStrategy::None,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(8);
    let out = Frote::new(config).run(&ds, &fast_rf(), &frs, &mut rng).unwrap();
    assert_eq!(out.dataset.n_rows(), ds.n_rows() + out.report.instances_added);
    let accepted_total: usize =
        out.report.iterations.iter().filter(|r| r.accepted).map(|r| r.proposed).sum();
    assert_eq!(accepted_total, out.report.instances_added);
}

/// Drawn rule sets stay conflict-free across every dataset at smoke scale.
#[test]
fn conflict_free_draws_across_all_datasets() {
    for kind in DatasetKind::ALL {
        let setup = prepare(kind, Scale::Smoke, 42);
        let mut rng = StdRng::seed_from_u64(11);
        let frs = draw_conflict_free_frs(&setup, 5, &mut rng);
        assert!(!frs.is_empty(), "{}: empty draw", kind.name());
        assert!(frs.is_conflict_free(setup.dataset.schema()), "{}: conflicting draw", kind.name());
    }
}

/// Probabilistic rules flow through the whole stack: a 60/40 rule yields
/// both labels among the synthetics and a valid run.
#[test]
fn probabilistic_rules_end_to_end() {
    use frote_data::Value;
    use frote_rules::{Clause, FeedbackRule, LabelDist, Op, Predicate};
    let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 300, ..Default::default() });
    let rule = FeedbackRule::new(
        Clause::new(vec![Predicate::new(5, Op::Eq, Value::Cat(2))]),
        LabelDist::probabilistic(vec![0.0, 0.6, 0.4, 0.0]).unwrap(),
    );
    let frs = FeedbackRuleSet::new(vec![rule]);
    let config = FroteConfig {
        iteration_limit: 6,
        instances_per_iteration: Some(30),
        mod_strategy: ModStrategy::None,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(21);
    let out = Frote::new(config).run(&ds, &fast_rf(), &frs, &mut rng).unwrap();
    if out.report.instances_added >= 30 {
        let new_labels: Vec<u32> =
            (ds.n_rows()..out.dataset.n_rows()).map(|i| out.dataset.label(i)).collect();
        assert!(new_labels.iter().all(|&l| l == 1 || l == 2), "{new_labels:?}");
        assert!(new_labels.contains(&1));
    }
}

/// Evaluating the final model on the test split gives finite, bounded
/// metrics on every dataset/model combination (smoke matrix sweep).
#[test]
fn metric_bounds_across_matrix() {
    for kind in [DatasetKind::Car, DatasetKind::Splice] {
        let setup = prepare(kind, Scale::Smoke, 42);
        for model in ModelKind::ALL {
            let spec = RunSpec::new(model, Scale::Smoke);
            if let Some(r) = run_once(&setup, &spec, 1) {
                for v in [r.initial, r.modified, r.final_] {
                    assert!(v.j.is_finite() && (0.0..=1.0).contains(&v.j));
                    assert!((0.0..=1.0).contains(&v.mra));
                    assert!((0.0..=1.0).contains(&v.f1));
                }
            }
        }
    }
}

/// paper_j degrades gracefully when the FRS covers the entire test set.
#[test]
fn full_coverage_objective() {
    let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 100, ..Default::default() });
    let rule = parse_rule("TRUE => unacc", ds.schema()).unwrap();
    let frs = FeedbackRuleSet::new(vec![rule]);
    use frote_ml::TrainAlgorithm;
    let model = fast_rf().train(&ds);
    let v = paper_j(model.as_ref(), &ds, &frs);
    // Outside coverage is empty -> F1 vacuous 1.0 but weighted by 0 mass.
    assert!((0.0..=1.0).contains(&v.j));
    assert_eq!(v.f1, 1.0);
}
