//! Property-based tests for the rules engine: coverage semantics, relaxation
//! invariants, conflict detection consistency, parser round-trips.

use frote_data::{Dataset, Schema, Value};
use frote_rules::relax::relax_clause;
use frote_rules::{Clause, FeedbackRule, FeedbackRuleSet, LabelDist, Op, Predicate};
use proptest::prelude::*;

/// Schema used throughout: two numeric, one 4-way categorical feature.
fn schema() -> Schema {
    Schema::builder("y", vec!["a".into(), "b".into(), "c".into()])
        .numeric("x0")
        .numeric("x1")
        .categorical("k", vec!["p".into(), "q".into(), "r".into(), "s".into()])
        .build()
}

prop_compose! {
    fn arb_row()(x0 in -50.0..50.0f64, x1 in -50.0..50.0f64, k in 0u32..4) -> Vec<Value> {
        vec![Value::Num(x0), Value::Num(x1), Value::Cat(k)]
    }
}

fn arb_dataset(max_rows: usize) -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((arb_row(), 0u32..3), 1..max_rows).prop_map(|rows| {
        let mut ds = Dataset::new(schema());
        for (row, label) in rows {
            ds.push_row(&row, label).unwrap();
        }
        ds
    })
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (
            0usize..2,
            -40.0..40.0f64,
            prop_oneof![Just(Op::Lt), Just(Op::Le), Just(Op::Gt), Just(Op::Ge)]
        )
            .prop_map(|(f, v, op)| Predicate::new(f, op, Value::Num(v))),
        (0u32..4, prop_oneof![Just(Op::Eq), Just(Op::Ne)]).prop_map(|(c, op)| Predicate::new(
            2,
            op,
            Value::Cat(c)
        )),
    ]
}

fn arb_clause(max_preds: usize) -> impl Strategy<Value = Clause> {
    proptest::collection::vec(arb_predicate(), 0..max_preds).prop_map(Clause::new)
}

proptest! {
    /// Coverage equals the brute-force row filter.
    #[test]
    fn coverage_matches_row_filter(ds in arb_dataset(40), clause in arb_clause(4)) {
        let cov = clause.coverage(&ds);
        let brute: Vec<usize> =
            (0..ds.n_rows()).filter(|&i| clause.satisfied_by(&ds.row(i))).collect();
        prop_assert_eq!(cov, brute);
        prop_assert_eq!(clause.coverage_count(&ds),
            (0..ds.n_rows()).filter(|&i| clause.satisfied_by(&ds.row(i))).count());
    }

    /// Conjunction coverage is the intersection of the parts' coverages.
    #[test]
    fn and_is_intersection(ds in arb_dataset(40), a in arb_clause(3), b in arb_clause(3)) {
        let both = a.and(&b);
        let cov_a = a.coverage(&ds);
        let cov_b = b.coverage(&ds);
        let expected: Vec<usize> =
            cov_a.iter().copied().filter(|i| cov_b.contains(i)).collect();
        prop_assert_eq!(both.coverage(&ds), expected);
    }

    /// If a clause has empirical coverage it must be analytically satisfiable.
    #[test]
    fn covered_implies_satisfiable(ds in arb_dataset(40), clause in arb_clause(4)) {
        if !clause.coverage(&ds).is_empty() {
            prop_assert!(clause.satisfiable(&schema()));
        }
    }

    /// Relaxation: never reduces support, never adds conditions, reaches the
    /// requested minimum support whenever the dataset allows it.
    #[test]
    fn relaxation_invariants(ds in arb_dataset(40), clause in arb_clause(4), k in 1usize..8) {
        let min_support = k + 1;
        let before = clause.coverage_count(&ds);
        let out = relax_clause(&clause, &ds, min_support);
        prop_assert!(out.support >= before);
        prop_assert!(out.clause.subset_of(&clause));
        prop_assert_eq!(out.support, out.clause.coverage_count(&ds));
        if ds.n_rows() >= min_support {
            prop_assert!(out.support >= min_support,
                "support {} < {} with {} rows", out.support, min_support, ds.n_rows());
        } else {
            prop_assert!(out.clause.is_empty() || out.support == before.max(out.support));
        }
        prop_assert!(out.deleted <= clause.len());
    }

    /// Conflict detection is consistent with empirical overlap: two rules
    /// with different deterministic classes and overlapping *empirical*
    /// coverage must be flagged as conflicting.
    #[test]
    fn empirical_overlap_implies_conflict(
        ds in arb_dataset(40),
        a in arb_clause(3),
        b in arb_clause(3),
    ) {
        let frs = FeedbackRuleSet::new(vec![
            FeedbackRule::deterministic(a.clone(), 0),
            FeedbackRule::deterministic(b.clone(), 1),
        ]);
        let cov_a = a.coverage(&ds);
        let cov_b = b.coverage(&ds);
        let overlap = cov_a.iter().any(|i| cov_b.contains(i));
        if overlap {
            prop_assert!(!frs.is_conflict_free(&schema()),
                "empirical overlap but no analytic conflict: {} vs {}", a, b);
        }
    }

    /// Attributed coverage partitions the union coverage.
    #[test]
    fn attribution_partitions_coverage(
        ds in arb_dataset(40),
        a in arb_clause(3),
        b in arb_clause(3),
        c in arb_clause(3),
    ) {
        let frs = FeedbackRuleSet::new(vec![
            FeedbackRule::deterministic(a, 0),
            FeedbackRule::deterministic(b, 0),
            FeedbackRule::deterministic(c, 0),
        ]);
        let attributed = frs.attributed_coverage(&ds);
        let mut merged: Vec<usize> = attributed.concat();
        merged.sort_unstable();
        // No duplicates: the per-rule sets are disjoint.
        let mut dedup = merged.clone();
        dedup.dedup();
        prop_assert_eq!(&merged, &dedup);
        prop_assert_eq!(merged, frs.coverage(&ds));
    }

    /// DropLater resolution always yields a conflict-free set that is a
    /// subsequence of the input.
    #[test]
    fn drop_later_resolution_invariants(
        clauses in proptest::collection::vec((arb_clause(3), 0u32..3), 1..5),
    ) {
        use frote_rules::ConflictResolution;
        let rules: Vec<FeedbackRule> = clauses
            .into_iter()
            .map(|(c, y)| FeedbackRule::deterministic(c, y))
            .collect();
        let frs = FeedbackRuleSet::new(rules.clone());
        let resolved = frs.resolve_conflicts(&schema(), ConflictResolution::DropLater);
        prop_assert!(resolved.is_conflict_free(&schema()));
        // Subsequence check.
        let mut cursor = 0;
        for r in resolved.rules() {
            let pos = rules[cursor..].iter().position(|orig| orig == r);
            prop_assert!(pos.is_some(), "resolved rule not from the input");
            cursor += pos.unwrap() + 1;
        }
    }

    /// The label distribution mixture has the same support union and sums
    /// to 1.
    #[test]
    fn mixtures_are_distributions(a in 0u32..3, b in 0u32..3) {
        let da = LabelDist::deterministic(a);
        let db = LabelDist::deterministic(b);
        let m = da.mixture(&db, 3);
        let total: f64 = (0..3).map(|c| m.prob(c)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(m.prob(a) >= 0.5 - 1e-9);
        prop_assert!(m.prob(b) >= 0.5 - 1e-9 || a != b);
    }

    /// Display + parse round-trips deterministic rules (modulo float
    /// formatting, which Rust prints losslessly).
    #[test]
    fn parse_display_roundtrip(clause in arb_clause(3), class in 0u32..3) {
        let s = schema();
        let rule = FeedbackRule::deterministic(clause, class);
        prop_assume!(rule.validate(&s).is_ok());
        let text = rule.display_with(&s).to_string();
        let body = text.strip_prefix("IF ").unwrap();
        let (clause_text, rest) = body.split_once(" THEN ").unwrap();
        let class_name = rest.rsplit(" = ").next().unwrap();
        let rebuilt = frote_rules::parse::parse_rule(
            &format!("{clause_text} => {class_name}"),
            &s,
        ).unwrap();
        prop_assert_eq!(rebuilt.clause().coverage_count(&demo_probe(&s)),
            rule.clause().coverage_count(&demo_probe(&s)));
        prop_assert_eq!(rebuilt.dist(), rule.dist());
    }
}

/// A fixed probe dataset for semantic comparison of parsed clauses.
fn demo_probe(s: &Schema) -> Dataset {
    let mut ds = Dataset::new(s.clone());
    let mut v = -50.0;
    for i in 0..60 {
        ds.push_row(
            &[Value::Num(v), Value::Num(-v * 0.7), Value::Cat((i % 4) as u32)],
            (i % 3) as u32,
        )
        .unwrap();
        v += 1.7;
    }
    ds
}
