//! Differential gate for the sharded data plane (PR 8).
//!
//! Three contracts, each checked against the unsharded plane as the oracle:
//!
//! 1. **Matrix equivalence** — a [`ShardedMatrix`] driven through an
//!    arbitrary `push_row` / `extend_from` / `truncate_rows` op sequence is
//!    cell-for-cell identical to a [`FeatureMatrix`] driven through the same
//!    sequence, at shard sizes 64, 4096, and effectively-unsharded.
//! 2. **Training equivalence** — histogram-mode tree training produces
//!    bit-identical models (probabilities compared through `f64::to_bits`)
//!    at every shard size × `FROTE_THREADS` combination, because per-shard
//!    class histograms merge in fixed shard order and integer counts are
//!    exact in f64.
//! 3. **Spill round-trip** — spilling every shard to disk and loading it
//!    back reproduces the original matrix bit for bit.

use frote_data::sharded::test_support::with_shard_rows;
use frote_data::{Dataset, FeatureMatrix, Schema, ShardedMatrix, Value};
use frote_ml::tree::{DecisionTreeTrainer, TreeParams};
use frote_ml::{SplitMode, TrainAlgorithm};
use frote_par::test_support::with_threads;
use proptest::prelude::*;

const WIDTH: usize = 5;

/// One random mutation of the matrix-under-test. All payload rows are
/// derived arithmetically from the op's seed so both planes see identical
/// data without threading an RNG through the interpreter.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push one row derived from the seed.
    Push(u16),
    /// Extend with `n % 97` rows derived from the seed.
    Extend(u16),
    /// Truncate to `seed % (n_rows + 1)` rows.
    Truncate(u16),
}

fn row_of(seed: u16, j: usize) -> f64 {
    f64::from(seed) * 0.25 + (j as f64) * 1.5 - 40.0
}

fn apply_flat(m: &mut FeatureMatrix, op: Op) {
    match op {
        Op::Push(seed) => {
            let row: Vec<f64> = (0..WIDTH).map(|j| row_of(seed, j)).collect();
            m.push_row(&row);
        }
        Op::Extend(seed) => {
            let mut other = FeatureMatrix::new(WIDTH);
            for r in 0..usize::from(seed) % 97 {
                let row: Vec<f64> =
                    (0..WIDTH).map(|j| row_of(seed.wrapping_add(r as u16), j)).collect();
                other.push_row(&row);
            }
            m.extend_from(&other);
        }
        Op::Truncate(seed) => {
            let keep = usize::from(seed) % (m.n_rows() + 1);
            m.truncate_rows(keep);
        }
    }
}

fn apply_sharded(m: &mut ShardedMatrix, op: Op) {
    match op {
        Op::Push(seed) => {
            let row: Vec<f64> = (0..WIDTH).map(|j| row_of(seed, j)).collect();
            m.push_row(&row);
        }
        Op::Extend(seed) => {
            let mut other = FeatureMatrix::new(WIDTH);
            for r in 0..usize::from(seed) % 97 {
                let row: Vec<f64> =
                    (0..WIDTH).map(|j| row_of(seed.wrapping_add(r as u16), j)).collect();
                other.push_row(&row);
            }
            m.extend_from(&other);
        }
        Op::Truncate(seed) => {
            let keep = usize::from(seed) % (m.n_rows() + 1);
            m.truncate_rows(keep);
        }
    }
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..4096).prop_map(Op::Push),
        (0u16..4096).prop_map(Op::Extend),
        (0u16..4096).prop_map(Op::Truncate),
    ]
}

fn schema() -> Schema {
    Schema::builder("y", vec!["a".into(), "b".into(), "c".into()])
        .numeric("x0")
        .numeric("x1")
        .categorical("k", vec!["p".into(), "q".into(), "r".into(), "s".into()])
        .build()
}

prop_compose! {
    fn arb_dataset()(rows in proptest::collection::vec(
        (0u8..32, 0u8..20, 0u32..4, 0u32..3), 80..300,
    )) -> Dataset {
        let mut ds = Dataset::new(schema());
        for (x0, x1, k, y) in rows {
            ds.push_row(
                &[Value::Num(f64::from(x0) * 0.75 - 9.0), Value::Num(f64::from(x1)), Value::Cat(k)],
                y,
            )
            .unwrap();
        }
        ds
    }
}

/// Bit pattern of every class probability for every row: the strictest
/// model-equality observable the [`frote_ml::Classifier`] contract exposes.
fn proba_bits(model: &dyn frote_ml::Classifier, ds: &Dataset) -> Vec<u64> {
    let mut out = Vec::with_capacity(ds.n_rows() * model.n_classes());
    let mut p = Vec::new();
    for i in 0..ds.n_rows() {
        model.predict_proba_into(&ds.row(i), &mut p);
        out.extend(p.iter().map(|v| v.to_bits()));
    }
    out
}

proptest! {
    /// Contract 1: the sharded matrix is indistinguishable from the flat
    /// one under any op sequence, at every shard size.
    #[test]
    fn sharded_matrix_matches_flat_cell_for_cell(
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        let mut flat = FeatureMatrix::new(WIDTH);
        for &op in &ops {
            apply_flat(&mut flat, op);
        }
        // 1 << 62 rows per shard = one shard in practice ("whole").
        for shard_rows in [64usize, 4096, 1 << 62] {
            let mut sharded = ShardedMatrix::with_shard_rows(WIDTH, shard_rows);
            for &op in &ops {
                apply_sharded(&mut sharded, op);
            }
            prop_assert_eq!(sharded.n_rows(), flat.n_rows());
            prop_assert_eq!(sharded.width(), flat.width());
            for i in 0..flat.n_rows() {
                prop_assert_eq!(
                    sharded.row(i), flat.row(i),
                    "row {} differs at shard_rows={}", i, shard_rows
                );
            }
            prop_assert_eq!(sharded.to_matrix(), flat.clone());
        }
    }

    /// Contract 2: histogram-mode training is bit-identical across shard
    /// sizes and thread counts (per-shard builds merge in shard order;
    /// integer class counts are exact in f64).
    #[test]
    fn histogram_training_is_shard_size_and_thread_invariant(
        ds in arb_dataset(), depth in 1usize..5,
    ) {
        let params = TreeParams {
            max_depth: depth,
            split_mode: SplitMode::Histogram { max_bins: 16 },
            ..Default::default()
        };
        let trainer = DecisionTreeTrainer::new(params, 42);
        let baseline = proba_bits(trainer.train(&ds).as_ref(), &ds);
        for threads in [1usize, 2, 4] {
            for shard_rows in [64usize, 4096] {
                let bits = with_threads(threads, || {
                    with_shard_rows(shard_rows, || {
                        proba_bits(trainer.train(&ds).as_ref(), &ds)
                    })
                });
                prop_assert_eq!(
                    &bits, &baseline,
                    "model drifted at shard_rows={} threads={}", shard_rows, threads
                );
            }
        }
    }

    /// Contract 3: spill → load round-trips every shard bit for bit.
    #[test]
    fn spill_load_round_trip_is_exact(
        rows in proptest::collection::vec(0u16..4096, 1..300),
    ) {
        let mut flat = FeatureMatrix::new(WIDTH);
        for &seed in &rows {
            apply_flat(&mut flat, Op::Push(seed));
        }
        let mut sharded = ShardedMatrix::with_shard_rows(WIDTH, 64);
        sharded.extend_from(&flat);
        let dir = std::env::temp_dir()
            .join(format!("frote-prop-sharded-{}-{}", std::process::id(), rows.len()));
        std::fs::create_dir_all(&dir).unwrap();
        for s in 0..sharded.n_shards() {
            sharded.spill_shard(s, &dir).unwrap();
        }
        for s in 0..sharded.n_shards() {
            sharded.load_shard(s).unwrap();
            prop_assert!(!sharded.is_spilled(s));
        }
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(sharded.to_matrix(), flat);
    }
}
