//! The zero-perturbation contract of `frote-obs`, proven end to end:
//!
//! 1. The golden pipeline hashes are **byte-identical with metrics on** —
//!    recording observes the computation, it never participates in it.
//! 2. Counters tagged `invariant` (and invariant gauges) are **identical at
//!    1, 2, and 4 worker threads** — they count work the determinism
//!    contract pins, not how the schedule happened to distribute it.
//!    `thread_variant` metrics (`par.*`, latency histograms) are exempt by
//!    their tag, which is exactly the split `benchdiff` gates on.
//!
//! Everything lives in ONE `#[test]` because the metrics registry is
//! process-global: concurrent tests in the same binary would interleave
//! their counts. Integration-test binaries are separate processes, so the
//! rest of the suite is unaffected.

use frote::{Frote, FroteConfig, SelectionStrategy};
use frote_data::synth::{DatasetKind, SynthConfig};
use frote_ml::forest::{ForestParams, RandomForestTrainer};
use frote_ml::tree::TreeParams;
use frote_ml::SplitMode;
use frote_par::test_support::with_threads;
use frote_rules::parse::parse_rule;
use frote_rules::FeedbackRuleSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The mixed Car scenario of `tests/golden_pipeline.rs`, verbatim.
fn run_random() -> u64 {
    let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 300, ..Default::default() });
    let rule = parse_rule("safety = low AND buying = low => acc", ds.schema()).unwrap();
    let frs = FeedbackRuleSet::new(vec![rule]);
    let trainer = RandomForestTrainer::new(ForestParams { n_trees: 10, ..Default::default() }, 42);
    let config = FroteConfig {
        iteration_limit: 4,
        instances_per_iteration: Some(15),
        selection: SelectionStrategy::Random,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(9);
    let out = Frote::new(config).run(&ds, &trainer, &frs, &mut rng).unwrap();
    fnv1a(format!("{:?}|{:?}", out.dataset, out.report).as_bytes())
}

/// The numeric histogram-mode scenario of `tests/golden_pipeline.rs`,
/// verbatim — online-proxy selection plus quantized RF retrains, so the run
/// drives the encoded, binned, and rule-mask caches and the histogram plane.
fn run_hist_numeric() -> u64 {
    let ds = DatasetKind::WineQuality.generate(&SynthConfig { n_rows: 250, ..Default::default() });
    let rule = parse_rule("alcohol >= 12 => 8", ds.schema()).unwrap();
    let frs = FeedbackRuleSet::new(vec![rule]);
    let tree = TreeParams {
        max_depth: 3,
        split_mode: SplitMode::Histogram { max_bins: 16 },
        ..Default::default()
    };
    let trainer = RandomForestTrainer::new(ForestParams { n_trees: 8, tree }, 7);
    let config = FroteConfig {
        iteration_limit: 3,
        instances_per_iteration: Some(12),
        selection: SelectionStrategy::OnlineProxy,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(21);
    let out = Frote::new(config).run(&ds, &trainer, &frs, &mut rng).unwrap();
    fnv1a(format!("{:?}|{:?}", out.dataset, out.report).as_bytes())
}

/// Must match `tests/golden_pipeline.rs`.
const GOLDEN_RANDOM: u64 = 0x3d16_ce7c_f8d3_ed96;
const GOLDEN_HIST_NUMERIC: u64 = 0x53e4_4701_4ba3_c2e6;

/// The `invariant`-tagged slice of a snapshot: counter values plus gauge
/// bits, in snapshot (name) order — the payload that may not move with the
/// thread count.
fn invariant_slice(snap: &frote_obs::MetricsSnapshot) -> Vec<(String, u64)> {
    snap.counters
        .iter()
        .filter(|c| c.variance == "invariant")
        .map(|c| (c.name.clone(), c.value))
        .chain(
            snap.gauges
                .iter()
                .filter(|g| g.variance == "invariant")
                .map(|g| (g.name.clone(), g.value.to_bits())),
        )
        .collect()
}

#[test]
fn metrics_on_preserves_goldens_and_invariant_counters_across_threads() {
    // (a) Reference leg: metrics forced off. The goldens must hold, and —
    // trivially — no counts may accumulate.
    frote_obs::set_metrics_enabled(false);
    frote_obs::reset();
    let (a, b) = with_threads(2, || (run_random(), run_hist_numeric()));
    assert_eq!(a, GOLDEN_RANDOM, "golden drifted with metrics off");
    assert_eq!(b, GOLDEN_HIST_NUMERIC, "histogram golden drifted with metrics off");
    assert_eq!(
        frote_obs::snapshot().counter("frote.iterations"),
        None,
        "a disabled registry must record nothing"
    );

    // (b) Metrics forced on, same scenarios at 1, 2, and 4 threads: the
    // hashes stay byte-identical to the metrics-off leg, and the
    // invariant-tagged metrics are identical at every thread count.
    frote_obs::set_metrics_enabled(true);
    let mut reference: Option<Vec<(String, u64)>> = None;
    for t in [1usize, 2, 4] {
        frote_obs::reset();
        let (a, b) = with_threads(t, || (run_random(), run_hist_numeric()));
        assert_eq!(a, GOLDEN_RANDOM, "recording perturbed the golden at {t} threads");
        assert_eq!(
            b, GOLDEN_HIST_NUMERIC,
            "recording perturbed the histogram golden at {t} threads"
        );
        let snap = frote_obs::snapshot();
        // The runs actually counted interior work — accepted iterations,
        // cache appends, histogram nodes — not just zeros matching zeros.
        for name in [
            "frote.iterations",
            "frote.accepted",
            "hist.nodes_built",
            "rule_mask_cache.sync.append",
        ] {
            assert!(
                snap.counter(name).unwrap_or(0) > 0,
                "{name} stayed zero at {t} threads — instrumentation not reached"
            );
        }
        let invariant = invariant_slice(&snap);
        match &reference {
            None => reference = Some(invariant),
            Some(want) => assert_eq!(
                want, &invariant,
                "invariant-tagged metrics moved between thread counts (at {t} threads)"
            ),
        }
    }
    frote_obs::clear_metrics_override();
}
