//! Golden pipeline pin: the FROTE loop's full output (augmented dataset +
//! report) is byte-identical to the seed implementation, at 1 and 4 threads.
//!
//! The exact-mode hashes below were captured from the pre-refactor (PR 2)
//! tree; neither the dense-data-plane refactor nor the quantized training
//! plane may move them. Histogram mode (`SplitMode::Histogram`, opt-in) is
//! pinned separately at 1, 2, and 4 threads — its outputs legitimately
//! differ from exact mode, but must be bit-identical across thread counts
//! and across PRs. FNV-1a is used because its value is defined by the
//! algorithm alone (unlike `DefaultHasher`, which is only stable within one
//! std release).

use frote::{Frote, FroteConfig, SelectionStrategy};
use frote_data::synth::{DatasetKind, SynthConfig};
use frote_data::Dataset;
use frote_ml::forest::{ForestParams, RandomForestTrainer};
use frote_ml::logreg::LogisticRegressionTrainer;
use frote_ml::tree::TreeParams;
use frote_ml::{Classifier, SplitMode, TrainAlgorithm};
use frote_par::test_support::with_threads;
use frote_rules::parse::parse_rule;
use frote_rules::FeedbackRuleSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One deterministic end-to-end run over the mixed Car scenario with the
/// random strategy (the paper's default).
fn run_random() -> u64 {
    let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 300, ..Default::default() });
    let rule = parse_rule("safety = low AND buying = low => acc", ds.schema()).unwrap();
    let frs = FeedbackRuleSet::new(vec![rule]);
    let trainer = RandomForestTrainer::new(ForestParams { n_trees: 10, ..Default::default() }, 42);
    let config = FroteConfig {
        iteration_limit: 4,
        instances_per_iteration: Some(15),
        selection: SelectionStrategy::Random,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(9);
    let out = Frote::new(config).run(&ds, &trainer, &frs, &mut rng).unwrap();
    fnv1a(format!("{:?}|{:?}", out.dataset, out.report).as_bytes())
}

/// A numeric-heavy scenario through the online-proxy strategy, which
/// exercises the encoder + logistic-regression path end to end.
fn run_online() -> u64 {
    let ds = DatasetKind::WineQuality.generate(&SynthConfig { n_rows: 250, ..Default::default() });
    let rule = parse_rule("alcohol >= 12 => 8", ds.schema()).unwrap();
    let frs = FeedbackRuleSet::new(vec![rule]);
    let trainer = RandomForestTrainer::new(ForestParams { n_trees: 8, ..Default::default() }, 7);
    let config = FroteConfig {
        iteration_limit: 3,
        instances_per_iteration: Some(12),
        selection: SelectionStrategy::OnlineProxy,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(21);
    let out = Frote::new(config).run(&ds, &trainer, &frs, &mut rng).unwrap();
    fnv1a(format!("{:?}|{:?}", out.dataset, out.report).as_bytes())
}

/// The mixed Car scenario again, but retraining through the quantized
/// histogram plane (RF trees over shared bin codes, binned incrementally by
/// the loop's `TrainCache`). Car is pure-categorical, and categorical
/// histogram search is arithmetically identical to the exact search — so
/// this run must reproduce the *exact-mode* golden byte for byte.
fn run_hist_categorical() -> u64 {
    let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 300, ..Default::default() });
    let rule = parse_rule("safety = low AND buying = low => acc", ds.schema()).unwrap();
    let frs = FeedbackRuleSet::new(vec![rule]);
    let tree =
        TreeParams { max_depth: 3, split_mode: SplitMode::histogram(), ..Default::default() };
    let trainer = RandomForestTrainer::new(ForestParams { n_trees: 10, tree }, 42);
    let config = FroteConfig {
        iteration_limit: 4,
        instances_per_iteration: Some(15),
        selection: SelectionStrategy::Random,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(9);
    let out = Frote::new(config).run(&ds, &trainer, &frs, &mut rng).unwrap();
    fnv1a(format!("{:?}|{:?}", out.dataset, out.report).as_bytes())
}

/// The numeric WineQuality scenario through a coarse 16-bin histogram RF —
/// quantization genuinely differs from the exact search here, so this run
/// carries its own golden.
fn run_hist_numeric() -> u64 {
    let ds = DatasetKind::WineQuality.generate(&SynthConfig { n_rows: 250, ..Default::default() });
    let rule = parse_rule("alcohol >= 12 => 8", ds.schema()).unwrap();
    let frs = FeedbackRuleSet::new(vec![rule]);
    let tree = TreeParams {
        max_depth: 3,
        split_mode: SplitMode::Histogram { max_bins: 16 },
        ..Default::default()
    };
    let trainer = RandomForestTrainer::new(ForestParams { n_trees: 8, tree }, 7);
    let config = FroteConfig {
        iteration_limit: 3,
        instances_per_iteration: Some(12),
        selection: SelectionStrategy::OnlineProxy,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(21);
    let out = Frote::new(config).run(&ds, &trainer, &frs, &mut rng).unwrap();
    fnv1a(format!("{:?}|{:?}", out.dataset, out.report).as_bytes())
}

/// GOSS-mode GBDT training pinned end to end: the per-round row subsets
/// come from per-shard `SeedSplit` streams, so the fit depends on the
/// shard size — the run pins `FROTE_SHARD_ROWS=64` explicitly (the env
/// binding outranks any process override, including the CI shard-matrix
/// leg's) and must then be bit-identical at any thread count.
fn run_goss() -> u64 {
    use frote_ml::gbdt::{Gbdt, GbdtParams};
    let ds = DatasetKind::WineQuality.generate(&SynthConfig { n_rows: 250, ..Default::default() });
    let params = GbdtParams {
        n_rounds: 8,
        split_mode: SplitMode::parse("goss:16:300:200:11").expect("valid goss spec"),
        ..Default::default()
    };
    let model = frote_data::sharded::test_support::with_shard_rows(64, || Gbdt::fit(&ds, &params));
    fnv1a(format!("{:?}", model.predict_dataset(&ds)).as_bytes())
}

/// Captured from the seed (pre-refactor) tree; see the module docs.
const GOLDEN_RANDOM: u64 = 0x3d16_ce7c_f8d3_ed96;
const GOLDEN_ONLINE: u64 = 0x95e7_5f49_4078_f82e;
/// Captured at PR 4 (first histogram-mode release).
const GOLDEN_HIST_NUMERIC: u64 = 0x53e4_4701_4ba3_c2e6;
/// Captured at PR 8 (first GOSS release).
const GOLDEN_GOSS: u64 = 0xc87e_7f3b_cfc3_9443;

#[test]
fn pipeline_output_pinned_at_1_and_4_threads() {
    for t in [1usize, 4] {
        let (a, b) = with_threads(t, || (run_random(), run_online()));
        assert_eq!(a, GOLDEN_RANDOM, "random-strategy pipeline drifted at {t} threads");
        assert_eq!(b, GOLDEN_ONLINE, "online-proxy pipeline drifted at {t} threads");
    }
}

/// Forces the default `train_cached` → `train` path, disabling the LR
/// trainer's [`frote_data::EncodedCache`] reuse — the reference the cached
/// run must reproduce byte for byte.
struct UncachedLr(LogisticRegressionTrainer);

impl TrainAlgorithm for UncachedLr {
    fn train(&self, ds: &Dataset) -> Box<dyn Classifier> {
        self.0.train(ds)
    }

    fn name(&self) -> &str {
        self.0.name()
    }
}

/// The numeric WineQuality scenario with **LR as the training algorithm**
/// (not just the selection proxy): every retrain goes through
/// `TrainAlgorithm::train_cached`, so the run exercises the loop's
/// `EncodedCache` appends and rejection rollbacks end to end.
fn run_lr(trainer: &dyn TrainAlgorithm) -> u64 {
    let ds = DatasetKind::WineQuality.generate(&SynthConfig { n_rows: 250, ..Default::default() });
    let rule = parse_rule("alcohol >= 12 => 8", ds.schema()).unwrap();
    let frs = FeedbackRuleSet::new(vec![rule]);
    let config = FroteConfig {
        iteration_limit: 3,
        instances_per_iteration: Some(12),
        selection: SelectionStrategy::OnlineProxy,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(21);
    let out = Frote::new(config).run(&ds, trainer, &frs, &mut rng).unwrap();
    fnv1a(format!("{:?}|{:?}", out.dataset, out.report).as_bytes())
}

#[test]
fn lr_cached_training_matches_uncached_at_1_and_4_threads() {
    let cached = LogisticRegressionTrainer::default();
    let uncached = UncachedLr(LogisticRegressionTrainer::default());
    for t in [1usize, 4] {
        let (a, b) = with_threads(t, || (run_lr(&cached), run_lr(&uncached)));
        assert_eq!(a, b, "LR train_cached drifted from the uncached path at {t} threads");
    }
}

#[test]
fn goss_training_pinned_at_1_2_and_4_threads() {
    for t in [1usize, 2, 4] {
        let h = with_threads(t, run_goss);
        assert_eq!(h, GOLDEN_GOSS, "GOSS-mode GBDT drifted at {t} threads: {h:#018x}");
    }
}

#[test]
fn histogram_pipeline_pinned_at_1_2_and_4_threads() {
    for t in [1usize, 2, 4] {
        let (cat, num) = with_threads(t, || (run_hist_categorical(), run_hist_numeric()));
        assert_eq!(
            cat, GOLDEN_RANDOM,
            "categorical histogram run must equal the exact-mode golden at {t} threads"
        );
        assert_eq!(
            num, GOLDEN_HIST_NUMERIC,
            "histogram-mode pipeline drifted at {t} threads: {num:#018x}"
        );
    }
}
