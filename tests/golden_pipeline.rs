//! Golden pipeline pin: the FROTE loop's full output (augmented dataset +
//! report) is byte-identical to the seed implementation, at 1 and 4 threads.
//!
//! The hashes below were captured from the pre-refactor (PR 2) tree; the
//! dense-data-plane refactor must not move them. FNV-1a is used because its
//! value is defined by the algorithm alone (unlike `DefaultHasher`, which is
//! only stable within one std release).

use frote::{Frote, FroteConfig, SelectionStrategy};
use frote_data::synth::{DatasetKind, SynthConfig};
use frote_ml::forest::{ForestParams, RandomForestTrainer};
use frote_par::test_support::with_threads;
use frote_rules::parse::parse_rule;
use frote_rules::FeedbackRuleSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One deterministic end-to-end run over the mixed Car scenario with the
/// random strategy (the paper's default).
fn run_random() -> u64 {
    let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 300, ..Default::default() });
    let rule = parse_rule("safety = low AND buying = low => acc", ds.schema()).unwrap();
    let frs = FeedbackRuleSet::new(vec![rule]);
    let trainer = RandomForestTrainer::new(ForestParams { n_trees: 10, ..Default::default() }, 42);
    let config = FroteConfig {
        iteration_limit: 4,
        instances_per_iteration: Some(15),
        selection: SelectionStrategy::Random,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(9);
    let out = Frote::new(config).run(&ds, &trainer, &frs, &mut rng).unwrap();
    fnv1a(format!("{:?}|{:?}", out.dataset, out.report).as_bytes())
}

/// A numeric-heavy scenario through the online-proxy strategy, which
/// exercises the encoder + logistic-regression path end to end.
fn run_online() -> u64 {
    let ds = DatasetKind::WineQuality.generate(&SynthConfig { n_rows: 250, ..Default::default() });
    let rule = parse_rule("alcohol >= 12 => 8", ds.schema()).unwrap();
    let frs = FeedbackRuleSet::new(vec![rule]);
    let trainer = RandomForestTrainer::new(ForestParams { n_trees: 8, ..Default::default() }, 7);
    let config = FroteConfig {
        iteration_limit: 3,
        instances_per_iteration: Some(12),
        selection: SelectionStrategy::OnlineProxy,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(21);
    let out = Frote::new(config).run(&ds, &trainer, &frs, &mut rng).unwrap();
    fnv1a(format!("{:?}|{:?}", out.dataset, out.report).as_bytes())
}

/// Captured from the seed (pre-refactor) tree; see the module docs.
const GOLDEN_RANDOM: u64 = 0x3d16_ce7c_f8d3_ed96;
const GOLDEN_ONLINE: u64 = 0x95e7_5f49_4078_f82e;

#[test]
fn pipeline_output_pinned_at_1_and_4_threads() {
    for t in [1usize, 4] {
        let (a, b) = with_threads(t, || (run_random(), run_online()));
        assert_eq!(a, GOLDEN_RANDOM, "random-strategy pipeline drifted at {t} threads");
        assert_eq!(b, GOLDEN_ONLINE, "online-proxy pipeline drifted at {t} threads");
    }
}
