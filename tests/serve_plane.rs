//! Serving-plane integration: lock-free snapshot swaps under concurrent
//! readers, and boundary validation of malformed rows over the wire.
//!
//! The swap test pins the PR 9 consistency guarantee end to end: readers
//! hammer `POST /score` over real TCP connections while a writer publishes
//! a sequence of retrained generations whose models *differ* (each is
//! fitted on a deterministically relabeled dataset). Every response names
//! the generation its batch was scored against, and its labels must match
//! that generation's precomputed predictions bit for bit — never a mix of
//! two snapshots — at `FROTE_THREADS` 1, 2, and 4. The boundary test pins
//! the other contract: malformed rows (wrong arity, out-of-vocab
//! categories, NaN cells) surface structured `400`s through the compiled
//! rule-engine guard, and the connection keeps serving afterwards.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use frote_data::{Dataset, Schema, Value};
use frote_ml::tree::{DecisionTreeTrainer, TreeParams};
use frote_ml::{Classifier, TrainAlgorithm};
use frote_par::test_support::with_threads;
use frote_serve::{render_rows, Client, ModelRegistry, RowGuard, ServeConfig, Server, Snapshot};

fn trainer() -> DecisionTreeTrainer {
    DecisionTreeTrainer::new(TreeParams { max_depth: 4, ..Default::default() }, 7)
}

/// A small mixed-schema dataset (numeric + categorical) built by hand so
/// the boundary tests can aim at both column kinds.
fn mixed_dataset() -> Dataset {
    let schema = Arc::new(
        Schema::builder("y", vec!["no".into(), "yes".into()])
            .numeric("age")
            .categorical("job", vec!["eng".into(), "law".into(), "med".into()])
            .numeric("income")
            .build(),
    );
    let mut ds = Dataset::with_shared_schema(schema);
    for i in 0..120u32 {
        let age = f64::from(i % 60) + 20.0;
        let job = i % 3;
        let income = f64::from(i % 7) * 11.0 + 30.0;
        let label = u32::from((age > 45.0) ^ (job == 1));
        ds.push_row(&[Value::Num(age), Value::Cat(job), Value::Num(income)], label).unwrap();
    }
    ds
}

/// `ds` with every label rotated by `shift` — same schema, different
/// supervision, so each generation's fitted model really differs.
fn relabeled(ds: &Dataset, shift: u32) -> Dataset {
    let k = ds.n_classes() as u32;
    let mut out = Dataset::with_shared_schema(ds.schema_handle());
    let mut row = Vec::with_capacity(ds.n_features());
    for i in 0..ds.n_rows() {
        row.clear();
        for j in 0..ds.n_features() {
            row.push(ds.cell(i, j));
        }
        out.push_row(&row, (ds.labels()[i] + shift) % k).unwrap();
    }
    out
}

fn snapshot_for(ds: &Dataset) -> Snapshot {
    Snapshot::fit(&trainer(), ds, RowGuard::not_null(ds.schema()).unwrap())
}

/// Class-name predictions of `model` on the first `n` rows of `ds`.
fn direct_labels(model: &dyn Classifier, ds: &Dataset, n: usize) -> Vec<String> {
    let indices: Vec<usize> = (0..n).collect();
    model
        .predict_rows(ds, &indices)
        .into_iter()
        .map(|c| ds.schema().class_name(c).to_string())
        .collect()
}

#[test]
fn snapshot_swaps_are_generation_consistent_across_thread_counts() {
    const GENERATIONS: usize = 5;
    const PROBE_ROWS: usize = 16;
    const READERS: usize = 3;

    let base = mixed_dataset();
    // Precompute every generation's ground truth: generation g (1-based)
    // is the model fitted on the (g-1)-rotated labels.
    let expected: Vec<Vec<String>> = (0..GENERATIONS as u32)
        .map(|shift| {
            let model = trainer().train(&relabeled(&base, shift));
            direct_labels(&*model, &base, PROBE_ROWS)
        })
        .collect();
    assert!(
        expected.windows(2).any(|w| w[0] != w[1]),
        "relabeling must actually change the fitted model for the test to mean anything"
    );
    let probe_indices: Vec<usize> = (0..PROBE_ROWS).collect();
    let body = render_rows(&base, &probe_indices);

    for threads in [1usize, 2, 4] {
        with_threads(threads, || {
            let registry = Arc::new(ModelRegistry::new());
            let entry = registry.register("swap", snapshot_for(&base), None);
            let server = Arc::new(Server::bind(&ServeConfig::default(), registry).unwrap());
            let accept = {
                let server = Arc::clone(&server);
                std::thread::spawn(move || server.run())
            };
            let addr = server.local_addr().to_string();
            let done = AtomicBool::new(false);

            std::thread::scope(|scope| {
                for _ in 0..READERS {
                    let addr = addr.clone();
                    let body = &body;
                    let expected = &expected;
                    let done = &done;
                    scope.spawn(move || {
                        let mut client = Client::connect(&addr).unwrap();
                        let mut last_generation = 0u64;
                        let mut scored = 0usize;
                        while !done.load(Ordering::Acquire) || scored == 0 {
                            let (generation, labels) = client.score("swap", body).unwrap();
                            // Exactly one published generation, bit for bit
                            // — never a blend of two snapshots.
                            assert!(
                                (1..=GENERATIONS as u64).contains(&generation),
                                "unpublished generation {generation}"
                            );
                            assert_eq!(
                                &labels,
                                &expected[(generation - 1) as usize],
                                "response does not match generation {generation} at \
                                 {threads} threads"
                            );
                            assert!(
                                generation >= last_generation,
                                "generation went backwards ({last_generation} -> {generation})"
                            );
                            last_generation = generation;
                            scored += 1;
                        }
                    });
                }
                // The writer: publish the remaining generations while the
                // readers are in flight.
                for shift in 1..GENERATIONS as u32 {
                    let generation = entry.publish(snapshot_for(&relabeled(&base, shift)));
                    assert_eq!(generation, u64::from(shift) + 1);
                    std::thread::sleep(Duration::from_millis(15));
                }
                done.store(true, Ordering::Release);
            });

            // After the writer finished, new resolutions see the last
            // generation immediately.
            let mut client = Client::connect(&addr).unwrap();
            let (generation, labels) = client.score("swap", &body).unwrap();
            assert_eq!(generation, GENERATIONS as u64);
            assert_eq!(&labels, &expected[GENERATIONS - 1]);

            server.trigger_shutdown();
            accept.join().unwrap();
        });
    }
}

#[test]
fn malformed_rows_get_structured_errors_and_workers_survive() {
    let ds = mixed_dataset();
    let model = trainer().train(&ds);
    let registry = Arc::new(ModelRegistry::new());
    registry.register("mixed", snapshot_for(&ds), None);
    let server = Arc::new(Server::bind(&ServeConfig::default(), registry).unwrap());
    let accept = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };
    let mut client = Client::connect(&server.local_addr().to_string()).unwrap();

    // Wrong arity: 2 cells against a 3-feature schema.
    let resp = client.request("POST", "/score/mixed", "30,eng\n").unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("row 1") && resp.body.contains("arity"), "{}", resp.body);

    // Out-of-vocabulary category, on the second row.
    let resp = client.request("POST", "/score/mixed", "30,eng,50\n31,ceo,50\n").unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("row 2") && resp.body.contains("unknown category"), "{}", resp.body);

    // Unparsable numeric cell.
    let resp = client.request("POST", "/score/mixed", "thirty,eng,50\n").unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("unparsable numeric"), "{}", resp.body);

    // NaN parses, then the compiled guard rejects it with rule provenance.
    let resp = client.request("POST", "/score/mixed", "NaN,eng,50\n").unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("boundary guard") && resp.body.contains("age"), "{}", resp.body);

    // Unknown model: structured 404, not a hang.
    let resp = client.request("POST", "/score/nope", "30,eng,50\n").unwrap();
    assert_eq!(resp.status, 404);
    assert!(resp.body.contains("unknown model"), "{}", resp.body);

    // The same connection still scores: no worker died on any rejection.
    let (generation, labels) = client.score("mixed", &render_rows(&ds, &[0, 1, 2, 3])).unwrap();
    assert_eq!(generation, 1);
    assert_eq!(labels, direct_labels(&*model, &ds, 4));

    server.trigger_shutdown();
    accept.join().unwrap();
}
