//! End-to-end determinism of the parallelized pipeline: for a fixed seed,
//! SMOTE generation, batch kNN, cross-validation, experiment runs, and the
//! full FROTE loop produce byte-identical outputs under
//! `FROTE_THREADS ∈ {1, 2, 4, 7}`.
//!
//! This is the acceptance gate for the `frote-par` runtime: parallelism may
//! only change wall-clock, never results.

use frote::{Frote, FroteConfig, SelectionStrategy};
use frote_data::synth::{DatasetKind, SynthConfig};
use frote_eval::runner::{run_many, RunSpec};
use frote_eval::setup::prepare;
use frote_eval::{ModelKind, Scale};
use frote_ml::balltree::BallTree;
use frote_ml::forest::{ForestParams, RandomForestTrainer};
use frote_ml::validate::cross_validate;
use frote_par::test_support::with_threads;
use frote_rules::parse::parse_rule;
use frote_rules::FeedbackRuleSet;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The acceptance criterion: the FROTE pipeline's augmented dataset
/// (selected + generated instances) and final report are byte-identical
/// under `FROTE_THREADS=1` and `FROTE_THREADS=4`.
#[test]
fn frote_pipeline_byte_identical_at_1_and_4_threads() {
    let run = || {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 300, ..Default::default() });
        let rule = parse_rule("safety = low AND buying = low => acc", ds.schema()).unwrap();
        let frs = FeedbackRuleSet::new(vec![rule]);
        let trainer =
            RandomForestTrainer::new(ForestParams { n_trees: 10, ..Default::default() }, 42);
        let config = FroteConfig {
            iteration_limit: 4,
            instances_per_iteration: Some(15),
            selection: SelectionStrategy::Random,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let out = Frote::new(config).run(&ds, &trainer, &frs, &mut rng).unwrap();
        (out.dataset, format!("{:?}", out.report))
    };
    let (ds_serial, report_serial) = with_threads(1, run);
    let (ds_par, report_par) = with_threads(4, run);
    assert_eq!(ds_serial, ds_par, "augmented dataset differs between 1 and 4 threads");
    assert_eq!(
        report_serial.as_bytes(),
        report_par.as_bytes(),
        "FROTE report differs between 1 and 4 threads"
    );
}

/// The IP selection strategy exercises borderline triage (batched kNN) on
/// top of generation; it must be equally thread-count-invariant.
#[test]
fn frote_ip_selection_identical_across_thread_counts() {
    let run = || {
        let ds = DatasetKind::Mushroom.generate(&SynthConfig { n_rows: 250, ..Default::default() });
        let rule = parse_rule("bruises = bruises-1 => poisonous", ds.schema()).unwrap();
        let frs = FeedbackRuleSet::new(vec![rule]);
        let trainer =
            RandomForestTrainer::new(ForestParams { n_trees: 6, ..Default::default() }, 1);
        let config = FroteConfig {
            iteration_limit: 2,
            instances_per_iteration: Some(10),
            selection: SelectionStrategy::Ip,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let out = Frote::new(config).run(&ds, &trainer, &frs, &mut rng).unwrap();
        format!("{:?}{:?}", out.dataset, out.report)
    };
    let reference = with_threads(1, run);
    for t in [2, 7] {
        assert_eq!(with_threads(t, run), reference, "FROTE_THREADS={t}");
    }
}

/// Cross-validation and the experiment runner (both fan out training) keep
/// their fold/run results identical at any thread count.
#[test]
fn cross_validation_and_run_many_identical_across_thread_counts() {
    let cv = || {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 200, ..Default::default() });
        format!("{:?}", cross_validate(&RandomForestTrainer::default(), &ds, 4, 42))
    };
    let runs = || {
        let setup = prepare(DatasetKind::Car, Scale::Smoke, 42);
        let spec = RunSpec::new(ModelKind::Rf, Scale::Smoke);
        format!("{:?}", run_many(&setup, &spec, 3, 77))
    };
    let cv_ref = with_threads(1, cv);
    let runs_ref = with_threads(1, runs);
    for t in [2, 4] {
        assert_eq!(with_threads(t, cv), cv_ref, "cross_validate, FROTE_THREADS={t}");
        assert_eq!(with_threads(t, runs), runs_ref, "run_many, FROTE_THREADS={t}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// SMOTE generation is bit-identical across thread counts for arbitrary
    /// seeds and batch sizes.
    #[test]
    fn smote_bit_identical_across_thread_counts(seed in 0u64..10_000, n_new in 0usize..120) {
        use frote_smote::{Smote, SmoteParams};
        let run = || {
            let ds = DatasetKind::WineQuality
                .generate(&SynthConfig { n_rows: 150, ..Default::default() });
            let minority = (0..ds.n_classes() as u32)
                .min_by_key(|&c| ds.indices_of_class(c).len())
                .unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            Smote::new(SmoteParams::default()).generate(&ds, minority, n_new, &mut rng)
        };
        let reference = with_threads(1, run);
        for t in [2usize, 7] {
            prop_assert_eq!(with_threads(t, run), reference.clone(), "FROTE_THREADS={}", t);
        }
    }

    /// Ball-tree construction and batch queries are identical across thread
    /// counts (the parallel subtree merge reproduces the serial layout).
    #[test]
    fn balltree_batch_identical_across_thread_counts(seed in 0u64..10_000) {
        let run = || {
            let mut rng = StdRng::seed_from_u64(seed);
            let points: Vec<Vec<f64>> = (0..2500)
                .map(|_| (0..3).map(|_| rng.random_range(-10.0..10.0)).collect())
                .collect();
            let queries: Vec<Vec<f64>> = (0..30)
                .map(|_| (0..3).map(|_| rng.random_range(-10.0..10.0)).collect())
                .collect();
            let tree = BallTree::build(points.into());
            format!("{:?}", tree.k_nearest_batch(&queries.into(), 8))
        };
        let reference = with_threads(1, run);
        for t in [2usize, 7] {
            prop_assert_eq!(with_threads(t, run), reference.clone(), "FROTE_THREADS={}", t);
        }
    }
}
