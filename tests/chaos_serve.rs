//! Chaos integration for the fault-hardened serving plane (PR 10).
//!
//! These tests run real servers over real TCP with `frote-faults`
//! failpoints armed at every serve-path site and pin the robustness
//! contract end to end:
//!
//! - **Correct or structured, never wrong:** under injected read/parse/
//!   write/predict faults, every response a client manages to get is
//!   either a bit-correct generation-consistent score or a structured
//!   `4xx`/`5xx`; a dropped connection is retried with deterministic
//!   backoff.
//! - **The server never dies:** after a chaos wave the same server still
//!   answers `/health` and shuts down cleanly.
//! - **Faults are transient:** with the spec cleared, a fresh wave's
//!   response digest matches a fault-free twin bit for bit.
//! - **Deadlines:** a stalled client gets a structured `408`, not a stuck
//!   worker.
//! - **Admission control:** refused connections and shed requests get
//!   structured `503` + `Retry-After`, and the batcher shed is observable.
//! - **Graceful shutdown:** in-flight requests are answered during the
//!   drain, in-process and through the `--stdin-watch` binary (exit 0).
//!
//! Every server-running section holds the process-wide fault lock (via
//! `frote_faults::test_support::with_spec`, with `None` for fault-free
//! sections) so concurrently scheduled tests cannot trample each other's
//! armed spec.

use std::hash::{Hash, Hasher};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use frote_data::{Dataset, Schema, Value};
use frote_faults::test_support::with_spec;
use frote_ml::tree::{DecisionTreeTrainer, TreeParams};
use frote_ml::{Classifier, TrainAlgorithm};
use frote_par::test_support::with_threads;
use frote_serve::client::parse_score_body;
use frote_serve::{
    render_rows, Backoff, Client, ModelRegistry, RowGuard, ServeConfig, Server, Snapshot,
};

fn trainer() -> DecisionTreeTrainer {
    DecisionTreeTrainer::new(TreeParams { max_depth: 4, ..Default::default() }, 7)
}

fn mixed_dataset() -> Dataset {
    let schema = Arc::new(
        Schema::builder("y", vec!["no".into(), "yes".into()])
            .numeric("age")
            .categorical("job", vec!["eng".into(), "law".into(), "med".into()])
            .numeric("income")
            .build(),
    );
    let mut ds = Dataset::with_shared_schema(schema);
    for i in 0..120u32 {
        let age = f64::from(i % 60) + 20.0;
        let job = i % 3;
        let income = f64::from(i % 7) * 11.0 + 30.0;
        let label = u32::from((age > 45.0) ^ (job == 1));
        ds.push_row(&[Value::Num(age), Value::Cat(job), Value::Num(income)], label).unwrap();
    }
    ds
}

fn snapshot_for(ds: &Dataset) -> Snapshot {
    Snapshot::fit(&trainer(), ds, RowGuard::not_null(ds.schema()).unwrap())
}

/// Class-name ground truth for the request covering rows
/// `start..start + n` (wrapping) — the local twin of the served model.
fn expected_labels(model: &dyn Classifier, ds: &Dataset, start: usize, n: usize) -> Vec<String> {
    let indices: Vec<usize> = (0..n).map(|k| (start + k) % ds.n_rows()).collect();
    model
        .predict_rows(ds, &indices)
        .into_iter()
        .map(|c| ds.schema().class_name(c).to_string())
        .collect()
}

fn start_server(config: &ServeConfig, ds: &Dataset) -> (Arc<Server>, std::thread::JoinHandle<()>) {
    let registry = Arc::new(ModelRegistry::new());
    registry.register("mixed", snapshot_for(ds), None);
    let server = Arc::new(Server::bind(config, registry).unwrap());
    let accept = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };
    (server, accept)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv(u64);

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
}

/// One wave: `clients` concurrent connections each scoring `requests`
/// fixed row windows with retry/backoff. Returns the FNV digest over every
/// asserted response, combined in client order — two waves against
/// bit-identical models must produce bit-identical digests.
fn run_wave(
    addr: &str,
    ds: &Dataset,
    model: &dyn Classifier,
    clients: usize,
    requests: usize,
) -> u64 {
    let digests: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut backoff = Backoff::new(
                        0xC0FF + c as u64,
                        Duration::from_millis(2),
                        Duration::from_millis(50),
                    );
                    let mut h = Fnv(FNV_OFFSET);
                    for i in 0..requests {
                        let start = (c * requests + i) * 4;
                        let indices: Vec<usize> =
                            (0..4).map(|k| (start + k) % ds.n_rows()).collect();
                        let body = render_rows(ds, &indices);
                        let resp = score_with_chaos_retry(&mut client, &mut backoff, &body);
                        let Some(resp) = resp else {
                            // Gave up after bounded retries: acceptable under
                            // chaos (it was structured the whole way), but it
                            // must not happen fault-free — the digest would
                            // differ and fail the twin comparison.
                            ("gave-up", c, i).hash(&mut h);
                            continue;
                        };
                        assert_eq!(resp.0, 1, "single published generation");
                        let want = expected_labels(model, ds, start, 4);
                        assert_eq!(resp.1, want, "client {c} request {i}: wrong scores");
                        for label in &resp.1 {
                            label.hash(&mut h);
                        }
                    }
                    h.finish()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut h = Fnv(FNV_OFFSET);
    for d in digests {
        d.hash(&mut h);
    }
    h.finish()
}

/// Scores with the client retry contract plus a bounded local retry for
/// `500 injected fault` responses (transient by construction). Returns
/// `None` when every attempt came back structured-but-unsuccessful.
fn score_with_chaos_retry(
    client: &mut Client,
    backoff: &mut Backoff,
    body: &str,
) -> Option<(u64, Vec<String>)> {
    for _ in 0..12 {
        let resp = match client.request_with_retry("POST", "/score/mixed", body, 6, backoff) {
            Ok(resp) => resp,
            Err(_) => {
                // Transport gave out even after the retry loop's own
                // reconnects; dial again and keep going.
                let _ = client.reconnect();
                continue;
            }
        };
        match resp.status {
            200 => return Some(parse_score_body(&resp.body).expect("well-formed 200 body")),
            500 => {
                assert!(
                    resp.body.contains("injected fault"),
                    "500 without an injected fault under chaos: {}",
                    resp.body
                );
                std::thread::sleep(backoff.next_delay(None));
            }
            503 | 408 => std::thread::sleep(backoff.next_delay(None)),
            other => panic!("unstructured response under chaos: {other} {}", resp.body),
        }
    }
    None
}

/// Failpoints on every serve-path site at once — read/write drops, parse
/// and predict faults, batch panics, and accept shedding.
const CHAOS_SPEC: &str = "serve.conn.read:err:60:3;\
                          serve.conn.parse:err:50:5;\
                          serve.conn.write:err:50:9;\
                          serve.batch.predict:err:60:7;\
                          serve.batch.drain:panic:40:13;\
                          serve.accept:err:120:11";

#[test]
fn chaos_wave_is_correct_or_structured_and_recovery_is_bit_identical() {
    let ds = mixed_dataset();
    let model = trainer().train(&ds);
    for threads in [1usize, 2, 4] {
        with_threads(threads, || {
            // Fault-free twin: the reference digest.
            let clean = with_spec(None, || {
                let (server, accept) = start_server(&ServeConfig::default(), &ds);
                let digest = run_wave(&server.local_addr().to_string(), &ds, &*model, 3, 12);
                server.trigger_shutdown();
                accept.join().unwrap();
                digest
            });

            // Chaos wave: same workload under injected faults everywhere.
            with_spec(Some(CHAOS_SPEC), || {
                let (server, accept) = start_server(&ServeConfig::default(), &ds);
                let addr = server.local_addr().to_string();
                run_wave(&addr, &ds, &*model, 3, 12);
                // The server never dies: it still answers after the wave
                // (individual probes may hit injected faults — the spec is
                // still armed — but one must get through).
                let mut probe = Client::connect_with_retry(&addr, Duration::from_secs(5))
                    .expect("server must survive the chaos wave");
                assert!(
                    (0..50).any(|_| {
                        let ok = probe.health().is_ok();
                        if !ok {
                            let _ = probe.reconnect();
                        }
                        ok
                    }),
                    "no health probe succeeded after the chaos wave"
                );
                server.trigger_shutdown();
                accept.join().unwrap();
            });

            // Faults cleared: the digest stream matches the twin bit for bit.
            let recovered = with_spec(None, || {
                let (server, accept) = start_server(&ServeConfig::default(), &ds);
                let digest = run_wave(&server.local_addr().to_string(), &ds, &*model, 3, 12);
                server.trigger_shutdown();
                accept.join().unwrap();
                digest
            });
            assert_eq!(
                clean, recovered,
                "post-chaos digest diverged from the fault-free twin at {threads} threads"
            );
        });
    }
}

#[test]
fn publish_faults_roll_back_over_the_wire() {
    let workload = frote_serve::workload::by_name("wine-rf").unwrap();
    let refitter = workload.refitter(false);
    let first = refitter.initial_snapshot().unwrap();
    let registry = Arc::new(ModelRegistry::new());
    registry.register(workload.name(), first, Some(Box::new(refitter)));

    with_spec(None, || {
        let server = Arc::new(Server::bind(&ServeConfig::default(), registry).unwrap());
        let accept = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.run())
        };
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).unwrap();

        // Injected error and injected panic during the retrain: both come
        // back as a structured 500 and the generation does not advance.
        for kind in ["err", "panic"] {
            let spec = format!("serve.publish.retrain:{kind}:1000:3");
            frote_faults::set_spec(Some(&spec)).unwrap();
            let resp = client.request("POST", "/publish/wine-rf", "").unwrap();
            assert_eq!(resp.status, 500, "{kind}: {}", resp.body);
            assert!(resp.body.contains("injected fault"), "{kind}: {}", resp.body);
            let models = client.models().unwrap();
            assert!(
                models.contains("wine-rf 1 "),
                "{kind}: generation advanced past a failed publish: {models}"
            );
        }
        frote_faults::set_spec(None).unwrap();

        // Cleared: the same publish path succeeds and swaps generation 2.
        let generation = client.publish("wine-rf", None).unwrap();
        assert_eq!(generation, 2);
        let models = client.models().unwrap();
        assert!(models.contains("wine-rf 2 "), "{models}");

        server.trigger_shutdown();
        accept.join().unwrap();
    });
}

#[test]
fn stalled_client_gets_structured_408_within_the_deadline() {
    let ds = mixed_dataset();
    with_spec(None, || {
        let config =
            ServeConfig { read_timeout: Duration::from_millis(150), ..ServeConfig::default() };
        let (server, accept) = start_server(&config, &ds);

        // A slow-loris: headers promise 64 body bytes, then silence.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"POST /score/mixed HTTP/1.1\r\nContent-Length: 64\r\n\r\npartial")
            .unwrap();
        stream.flush().unwrap();
        let started = Instant::now();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let waited = started.elapsed();
        assert!(
            raw.starts_with("HTTP/1.1 408 "),
            "stalled request must be a structured 408, got {raw:?}"
        );
        assert!(
            waited < Duration::from_secs(5),
            "408 took {waited:?}, deadline was 150ms — the connection hung"
        );

        // The worker that hit the deadline still serves other connections.
        let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
        client.health().unwrap();

        server.trigger_shutdown();
        accept.join().unwrap();
    });
}

#[test]
fn admission_control_sheds_connections_with_503_and_retry_after() {
    let ds = mixed_dataset();
    with_spec(Some("serve.accept:err:1000:5"), || {
        let (server, accept) = start_server(&ServeConfig::default(), &ds);
        let addr = server.local_addr().to_string();
        // Every connection is refused at the door: structured 503 with a
        // Retry-After hint, then close.
        let mut client = Client::connect(&addr).unwrap();
        let resp = client.request("GET", "/health", "").unwrap();
        assert_eq!(resp.status, 503, "{}", resp.body);
        assert!(resp.body.contains("overloaded"), "{}", resp.body);
        assert_eq!(resp.retry_after, Some(1), "shed 503 must carry Retry-After");

        // The backoff client rides it out once the fault clears.
        frote_faults::set_spec(None).unwrap();
        let mut backoff = Backoff::new(9, Duration::from_millis(2), Duration::from_millis(50));
        let resp = client.request_with_retry("GET", "/health", "", 8, &mut backoff).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);

        server.trigger_shutdown();
        accept.join().unwrap();
    });
}

#[test]
fn batcher_queue_sheds_score_requests_with_503_and_retry_after() {
    let ds = mixed_dataset();
    let body = render_rows(&ds, &[0, 1, 2, 3]);
    // Queue depth 1 and a 500ms injected drain delay: while the batch
    // worker sleeps, one follow-up request queues and the rest shed.
    with_spec(Some("serve.batch.drain:delay:1000:7:500"), || {
        let config = ServeConfig { workers: 8, max_queue_depth: 1, ..ServeConfig::default() };
        let (server, accept) = start_server(&config, &ds);
        let addr = server.local_addr().to_string();

        let shed = AtomicUsize::new(0);
        let ok = AtomicUsize::new(0);
        let barrier = Barrier::new(6);
        std::thread::scope(|scope| {
            // Occupy the batch worker (sleeps 500ms inside the drain).
            let leader = {
                let addr = addr.clone();
                let body = &body;
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    client.request("POST", "/score/mixed", body).unwrap().status
                })
            };
            std::thread::sleep(Duration::from_millis(100));
            // Six concurrent requests against a depth-1 queue: one queues,
            // the rest are shed with a structured 503 + Retry-After.
            let followers: Vec<_> = (0..6)
                .map(|_| {
                    let addr = addr.clone();
                    let body = &body;
                    let barrier = &barrier;
                    let shed = &shed;
                    let ok = &ok;
                    scope.spawn(move || {
                        let mut client = Client::connect(&addr).unwrap();
                        barrier.wait();
                        let resp = client.request("POST", "/score/mixed", body).unwrap();
                        match resp.status {
                            200 => ok.fetch_add(1, Ordering::Relaxed),
                            503 => {
                                assert_eq!(
                                    resp.retry_after,
                                    Some(1),
                                    "shed score must carry Retry-After: {}",
                                    resp.body
                                );
                                shed.fetch_add(1, Ordering::Relaxed)
                            }
                            other => panic!("unexpected status {other}: {}", resp.body),
                        };
                    })
                })
                .collect();
            assert_eq!(leader.join().unwrap(), 200, "leader request must score");
            for f in followers {
                f.join().unwrap();
            }
        });
        assert!(
            shed.load(Ordering::Relaxed) >= 4,
            "expected most of 6 concurrent requests shed by the depth-1 queue, got {} shed / {} ok",
            shed.load(Ordering::Relaxed),
            ok.load(Ordering::Relaxed)
        );

        server.trigger_shutdown();
        accept.join().unwrap();
    });
}

#[test]
fn graceful_shutdown_answers_in_flight_requests_in_process() {
    let ds = mixed_dataset();
    let model = trainer().train(&ds);
    with_spec(None, || {
        let (server, accept) = start_server(&ServeConfig::default(), &ds);
        let addr = server.local_addr().to_string();
        let successes = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for c in 0..4usize {
                let addr = addr.clone();
                let ds = &ds;
                let model = &model;
                let successes = &successes;
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    for i in 0.. {
                        let start = (c + i) * 4;
                        let indices: Vec<usize> =
                            (0..4).map(|k| (start + k) % ds.n_rows()).collect();
                        let body = render_rows(ds, &indices);
                        match client.request("POST", "/score/mixed", &body) {
                            Ok(resp) if resp.status == 200 => {
                                // Anything answered during the drain must
                                // still be bit-correct.
                                let (generation, labels) = parse_score_body(&resp.body).unwrap();
                                assert_eq!(generation, 1);
                                assert_eq!(labels, expected_labels(&**model, ds, start, 4));
                                successes.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(resp) => {
                                // Shutdown refusals are structured.
                                assert_eq!(resp.status, 503, "{}", resp.body);
                                break;
                            }
                            // Connection closed by the drain: clean end.
                            Err(_) => break,
                        }
                    }
                });
            }
            std::thread::sleep(Duration::from_millis(150));
            server.trigger_shutdown();
        });
        accept.join().unwrap();
        assert!(
            successes.load(Ordering::Relaxed) >= 4,
            "clients should have scored before and during the drain"
        );
    });
}

/// Path of the `frote-serve` binary built alongside this test profile.
fn frote_serve_bin() -> Option<std::path::PathBuf> {
    let mut dir = std::env::current_exe().ok()?;
    dir.pop(); // the test executable
    if dir.ends_with("deps") {
        dir.pop();
    }
    let bin = dir.join(format!("frote-serve{}", std::env::consts::EXE_SUFFIX));
    bin.exists().then_some(bin)
}

#[test]
fn stdin_watch_drains_and_exits_zero_under_concurrent_load() {
    use std::process::{Command, Stdio};

    let Some(bin) = frote_serve_bin() else {
        // Built via `cargo test --test chaos_serve` alone, the binary may
        // not exist yet; the full tier-1 `cargo test` always builds it.
        eprintln!("skipping: frote-serve binary not built");
        return;
    };
    let mut child = Command::new(&bin)
        .args(["--stdin-watch", "--workload", "wine-rf"])
        .env_remove("FROTE_FAULTS")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn frote-serve");
    let mut stdout = std::io::BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    std::io::BufRead::read_line(&mut stdout, &mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
        .to_string();

    let workload = frote_serve::workload::by_name("wine-rf").unwrap();
    let ds = workload.dataset();
    let model = workload.trainer().train(&ds);

    let successes = AtomicUsize::new(0);
    let stdin = child.stdin.take().unwrap();
    std::thread::scope(|scope| {
        for c in 0..4usize {
            let addr = addr.clone();
            let ds = &ds;
            let model = &model;
            let workload = &workload;
            let successes = &successes;
            scope.spawn(move || {
                let mut client =
                    Client::connect_with_retry(&addr, Duration::from_secs(10)).unwrap();
                for i in 0.. {
                    let start = (c + i) * 8;
                    let body = workload.probe_body(ds, start, 8);
                    match client.request("POST", &format!("/score/{}", workload.name()), &body) {
                        Ok(resp) if resp.status == 200 => {
                            let (_, labels) = parse_score_body(&resp.body).unwrap();
                            assert_eq!(
                                labels,
                                expected_labels(&**model, ds, start, 8),
                                "drained response must stay bit-correct"
                            );
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(resp) => {
                            assert_eq!(resp.status, 503, "{}", resp.body);
                            break;
                        }
                        Err(_) => break,
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(200));
        // Closing our end of the pipe is the graceful-stop request.
        drop(stdin);
    });

    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = child.try_wait().unwrap() {
            break status;
        }
        assert!(Instant::now() < deadline, "server did not exit after stdin EOF");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(status.success(), "stdin-watch shutdown must exit 0, got {status:?}");
    assert!(
        successes.load(Ordering::Relaxed) >= 4,
        "clients should have scored before and during the drain"
    );
}
