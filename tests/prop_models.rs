//! Property-based tests over the model substrate: every model family must
//! uphold the `Classifier` contract FROTE depends on (normalized
//! probabilities, argmax consistency, determinism), regardless of the
//! training data drawn.

use frote_data::{Dataset, Schema, Value};
use frote_ml::forest::{ForestParams, RandomForestTrainer};
use frote_ml::gbdt::{GbdtParams, GbdtTrainer};
use frote_ml::logreg::{LogRegParams, LogisticRegressionTrainer};
use frote_ml::naive_bayes::NaiveBayesTrainer;
use frote_ml::tree::{DecisionTreeTrainer, TreeParams};
use frote_ml::validate::fold_assignments;
use frote_ml::TrainAlgorithm;
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::builder("y", vec!["a".into(), "b".into(), "c".into()])
        .numeric("x0")
        .categorical("k", vec!["p".into(), "q".into()])
        .build()
}

prop_compose! {
    fn arb_dataset()(rows in proptest::collection::vec(
        (-20.0..20.0f64, 0u32..2, 0u32..3), 10..40,
    )) -> Dataset {
        let mut ds = Dataset::new(schema());
        for (x, k, y) in rows {
            ds.push_row(&[Value::Num(x), Value::Cat(k)], y).unwrap();
        }
        ds
    }
}

/// Small/fast versions of all five trainers.
fn trainers() -> Vec<(&'static str, Box<dyn TrainAlgorithm>)> {
    vec![
        (
            "LR",
            Box::new(LogisticRegressionTrainer::new(LogRegParams {
                max_iter: 30,
                ..Default::default()
            })),
        ),
        (
            "DT",
            Box::new(DecisionTreeTrainer::new(
                TreeParams { max_depth: 4, ..Default::default() },
                0,
            )),
        ),
        (
            "RF",
            Box::new(RandomForestTrainer::new(
                ForestParams { n_trees: 4, ..Default::default() },
                0,
            )),
        ),
        ("LGBM", Box::new(GbdtTrainer::new(GbdtParams { n_rounds: 4, ..Default::default() }))),
        ("NB", Box::new(NaiveBayesTrainer::default())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Probabilities are a distribution and predict == argmax(proba) for
    /// every family on every dataset.
    #[test]
    fn classifier_contract_holds(ds in arb_dataset()) {
        for (name, trainer) in trainers() {
            let model = trainer.train(&ds);
            prop_assert_eq!(model.n_classes(), 3, "{}", name);
            for i in (0..ds.n_rows()).step_by(3) {
                let row = ds.row(i);
                let p = model.predict_proba(&row);
                prop_assert_eq!(p.len(), 3, "{}", name);
                let sum: f64 = p.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-6, "{name}: proba sums to {sum}");
                prop_assert!(p.iter().all(|&q| (0.0..=1.0 + 1e-9).contains(&q)),
                    "{name}: out-of-range probability {p:?}");
                // predict agrees with the argmax of proba (ties to lowest).
                let argmax = p
                    .iter()
                    .enumerate()
                    .max_by(|(i, a), (j, b)| {
                        a.partial_cmp(b).unwrap().then(j.cmp(i))
                    })
                    .map(|(i, _)| i as u32)
                    .unwrap();
                prop_assert_eq!(model.predict(&row), argmax, "{}", name);
            }
        }
    }

    /// Training twice on the same data yields identical predictions
    /// (FROTE's acceptance test depends on deterministic retraining).
    #[test]
    fn training_is_deterministic(ds in arb_dataset()) {
        for (name, trainer) in trainers() {
            let a = trainer.train(&ds);
            let b = trainer.train(&ds);
            for i in (0..ds.n_rows()).step_by(5) {
                prop_assert_eq!(
                    a.predict(&ds.row(i)),
                    b.predict(&ds.row(i)),
                    "{} not deterministic", name
                );
            }
        }
    }

    /// Fold assignments are a balanced partition for any (n, k, seed).
    #[test]
    fn folds_partition(n in 4usize..200, k in 2usize..6, seed in 0u64..50) {
        prop_assume!(n >= k);
        let a = fold_assignments(n, k, seed);
        prop_assert_eq!(a.len(), n);
        let mut counts = vec![0usize; k];
        for &f in &a {
            prop_assert!(f < k);
            counts[f] += 1;
        }
        let lo = counts.iter().min().unwrap();
        let hi = counts.iter().max().unwrap();
        prop_assert!(hi - lo <= 1, "unbalanced folds: {counts:?}");
    }
}
