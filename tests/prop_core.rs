//! Property-based tests for FROTE's core: generation invariants, objective
//! bounds, mod-strategy semantics, and the selection IP against brute force.

use frote::generate::{Generator, LabelPolicy};
use frote::objective::{empirical_j, ObjectiveWeights};
use frote::preselect::BasePopulation;
use frote::select::BaseInstance;
use frote::ModStrategy;
use frote_data::{Dataset, Schema, Value};
use frote_ml::Classifier;
use frote_opt::SelectionProblem;
use frote_rules::{Clause, FeedbackRule, FeedbackRuleSet, Op, Predicate};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn schema() -> Schema {
    Schema::builder("y", vec!["a".into(), "b".into()])
        .numeric("x0")
        .numeric("x1")
        .categorical("k", vec!["p".into(), "q".into(), "r".into()])
        .build()
}

prop_compose! {
    fn arb_dataset()(rows in proptest::collection::vec(
        (-30.0..30.0f64, -30.0..30.0f64, 0u32..3, 0u32..2), 12..60,
    )) -> Dataset {
        let mut ds = Dataset::new(schema());
        for (x0, x1, k, y) in rows {
            ds.push_row(&[Value::Num(x0), Value::Num(x1), Value::Cat(k)], y).unwrap();
        }
        ds
    }
}

fn arb_rule_clause() -> impl Strategy<Value = Clause> {
    // Mixed windows and categorical constraints, always satisfiable.
    (
        -20.0..0.0f64,
        1.0..20.0f64,
        0u32..3,
        prop_oneof![Just(Op::Eq), Just(Op::Ne)],
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(lo, width, cat, cat_op, use_lo, use_cat)| {
            let mut preds = Vec::new();
            if use_lo {
                preds.push(Predicate::new(0, Op::Gt, Value::Num(lo)));
            }
            preds.push(Predicate::new(0, Op::Le, Value::Num(lo + width)));
            if use_cat {
                preds.push(Predicate::new(2, cat_op, Value::Cat(cat)));
            }
            Clause::new(preds)
        })
}

/// A fixed stub classifier for objective properties.
struct Stub;
impl Classifier for Stub {
    fn n_classes(&self) -> usize {
        2
    }
    fn predict_proba_into(&self, row: &[Value], out: &mut Vec<f64>) {
        out.clear();
        if row[0].expect_num() > 0.0 {
            out.extend_from_slice(&[0.1, 0.9]);
        } else {
            out.extend_from_slice(&[0.9, 0.1]);
        }
    }
}

proptest! {
    /// Every generated instance satisfies its rule's original clause and
    /// carries the rule's class — regardless of how narrow the rule is
    /// relative to the data.
    #[test]
    fn generated_instances_satisfy_rules(
        ds in arb_dataset(),
        clause in arb_rule_clause(),
        seed in 0u64..500,
    ) {
        let frs = FeedbackRuleSet::new(vec![FeedbackRule::deterministic(clause.clone(), 1)]);
        let bp = BasePopulation::pre_select(&ds, &frs, 3);
        prop_assume!(!bp.population(0).members.is_empty());
        let generator = Generator::new(&ds, &frs, &bp, 3, LabelPolicy::FromRule);
        let mut rng = StdRng::seed_from_u64(seed);
        let base: Vec<BaseInstance> = bp.population(0).members
            .iter()
            .take(8)
            .map(|&row| BaseInstance::new(0, row))
            .collect();
        let out = generator.generate(&base, &mut rng);
        for i in 0..out.n_rows() {
            prop_assert!(clause.satisfied_by(&out.row(i)),
                "violating row {:?} for clause {}", out.row(i), clause);
            prop_assert_eq!(out.label(i), 1);
        }
    }

    /// The empirical objective is always within [0, 1] and equals the
    /// weighted average of its parts.
    #[test]
    fn objective_bounds(ds in arb_dataset(), clause in arb_rule_clause()) {
        let frs = FeedbackRuleSet::new(vec![FeedbackRule::deterministic(clause, 1)]);
        let w = ObjectiveWeights::default();
        let v = empirical_j(&Stub, &ds, &frs, &w);
        prop_assert!((0.0..=1.0).contains(&v.j));
        prop_assert!((0.0..=1.0).contains(&v.mra));
        prop_assert!((0.0..=1.0).contains(&v.f1));
        let expected = 0.5 * v.mra + 0.5 * v.f1;
        // When coverage is empty, empirical_j substitutes 0 for the MRA term
        // while reporting the substituted value itself.
        prop_assert!((v.j - expected).abs() < 1e-9);
    }

    /// Relabel and drop leave no disagreeing covered instance behind, and
    /// never touch outside-coverage rows.
    #[test]
    fn mod_strategies_remove_disagreements(ds in arb_dataset(), clause in arb_rule_clause()) {
        let frs = FeedbackRuleSet::new(vec![FeedbackRule::deterministic(clause, 1)]);
        for strategy in [ModStrategy::Relabel, ModStrategy::Drop] {
            let out = strategy.apply(&ds, &frs);
            for (r, rows) in frs.attributed_coverage(&out).iter().enumerate() {
                for &i in rows {
                    prop_assert!(frs.rule(r).label_agrees(out.label(i)),
                        "{} left a disagreement", strategy.name());
                }
            }
        }
        // None is the identity.
        prop_assert_eq!(ModStrategy::None.apply(&ds, &frs), ds);
    }

    /// Drop removes exactly the disagreeing covered rows.
    #[test]
    fn drop_cardinality(ds in arb_dataset(), clause in arb_rule_clause()) {
        let frs = FeedbackRuleSet::new(vec![FeedbackRule::deterministic(clause, 1)]);
        let disagreeing = frs
            .attributed_coverage(&ds)
            .iter()
            .enumerate()
            .map(|(r, rows)| {
                rows.iter().filter(|&&i| !frs.rule(r).label_agrees(ds.label(i))).count()
            })
            .sum::<usize>();
        let out = ModStrategy::Drop.apply(&ds, &frs);
        prop_assert_eq!(out.n_rows(), ds.n_rows() - disagreeing);
    }

    /// The IP heuristic always returns a selection that satisfies the bounds
    /// whenever the exact solver proves the instance feasible.
    #[test]
    fn ip_heuristic_feasible_when_exact_is(
        weights in proptest::collection::vec(0.5..5.0f64, 8..14),
        masks in proptest::collection::vec(0u32..8, 2..4),
        lower in 1usize..3,
        extra in 0usize..4,
    ) {
        let p = weights.len();
        let coverage: Vec<Vec<usize>> = masks
            .iter()
            .map(|&m| (0..p).filter(|i| !(i + m as usize).is_multiple_of(3)).collect())
            .collect();
        let upper = lower + extra;
        let prob = SelectionProblem::new(weights, coverage, lower, upper);
        let exact = prob.solve_exact();
        let heur = prob.solve();
        match exact {
            Some(ex) => {
                prop_assert!(heur.feasible);
                prop_assert!(prob.is_feasible(&heur.selected));
                prop_assert!(heur.weight <= ex.weight + 1e-9);
            }
            None => prop_assert!(!heur.feasible),
        }
    }
}
