//! Property-based tests for the data and ML substrates: dataset/encoder
//! invariants, split partitions, distance metric axioms, SMOTE convexity,
//! ball-tree correctness, metric identities, simplex optimality.

use frote_data::encode::Encoder;
use frote_data::split::{split_indices, stratified_split};
use frote_data::{Dataset, Schema, Value};
use frote_ml::balltree::BallTree;
use frote_ml::distance::{MixedDistance, MixedMetric};
use frote_ml::metrics::{accuracy, macro_f1, ConfusionMatrix};
use frote_opt::{LinearProgram, LpOutcome};
use frote_smote::{Smote, SmoteParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn schema() -> Schema {
    Schema::builder("y", vec!["a".into(), "b".into()])
        .numeric("x0")
        .numeric("x1")
        .categorical("k", vec!["p".into(), "q".into(), "r".into()])
        .build()
}

prop_compose! {
    fn arb_dataset()(rows in proptest::collection::vec(
        (-10.0..10.0f64, -10.0..10.0f64, 0u32..3, 0u32..2), 8..50,
    )) -> Dataset {
        let mut ds = Dataset::new(schema());
        for (x0, x1, k, y) in rows {
            ds.push_row(&[Value::Num(x0), Value::Num(x1), Value::Cat(k)], y).unwrap();
        }
        ds
    }
}

proptest! {
    /// gather + row materialization agree cell-for-cell.
    #[test]
    fn gather_preserves_cells(ds in arb_dataset(), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let idx = ds.bootstrap_indices(ds.n_rows(), &mut rng);
        let g = ds.gather(&idx);
        for (pos, &i) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(pos), ds.row(i));
            prop_assert_eq!(g.label(pos), ds.label(i));
        }
    }

    /// Encoded vectors have the advertised width, z-scored numerics, and
    /// exactly one hot index per categorical block.
    #[test]
    fn encoder_shape_invariants(ds in arb_dataset()) {
        let enc = Encoder::fit(&ds);
        prop_assert_eq!(enc.width(), 2 + 3);
        for i in 0..ds.n_rows() {
            let v = enc.encode(&ds.row(i));
            prop_assert_eq!(v.len(), enc.width());
            let hot: f64 = v[2..].iter().sum();
            prop_assert!((hot - 1.0).abs() < 1e-12);
            prop_assert!(v[2..].iter().all(|&x| x == 0.0 || x == 1.0));
        }
        // Column means of the standardized block are ~0.
        let encoded = enc.encode_dataset(&ds);
        for j in 0..2 {
            let mean: f64 =
                encoded.rows().map(|r| r[j]).sum::<f64>() / encoded.n_rows() as f64;
            prop_assert!(mean.abs() < 1e-9, "column {j} mean {mean}");
        }
    }

    /// The matrix batch encoder agrees cell-for-cell with per-row encoding,
    /// at 1 and 4 threads, and appending encodes exactly the tail rows.
    #[test]
    fn encode_dataset_matches_per_row(ds in arb_dataset()) {
        let enc = Encoder::fit(&ds);
        for t in [1usize, 4] {
            let m = frote_par::test_support::with_threads(t, || enc.encode_dataset(&ds));
            prop_assert_eq!(m.n_rows(), ds.n_rows());
            prop_assert_eq!(m.width(), enc.width());
            for i in 0..ds.n_rows() {
                let per_row = enc.encode(&ds.row(i));
                prop_assert_eq!(m.row(i), per_row.as_slice(), "row {} at {} threads", i, t);
            }
        }
        // Incremental append over a prefix reproduces the full matrix.
        let full = enc.encode_dataset(&ds);
        let prefix_rows: Vec<usize> = (0..ds.n_rows() / 2).collect();
        let prefix = ds.gather(&prefix_rows);
        let mut grown = enc.encode_dataset(&prefix);
        enc.encode_append(&ds, &mut grown);
        prop_assert_eq!(grown, full);
    }

    /// The quantized plane mirrors the encoded one: batch binning is
    /// thread-count-invariant, codes round-trip through `bin_value`, and
    /// binning base rows then appending the tail equals binning the
    /// concatenated dataset when the fitted edges are unchanged.
    #[test]
    fn binned_matrix_batch_and_append_equivalence(
        ds in arb_dataset(),
        max_bins in 2usize..32,
    ) {
        let binner = frote_data::Binner::fit(&ds, max_bins);
        let full = binner.bin_dataset(&ds);
        prop_assert_eq!(full.n_rows(), ds.n_rows());
        for t in [1usize, 4] {
            let m = frote_par::test_support::with_threads(t, || binner.bin_dataset(&ds));
            prop_assert_eq!(&m, &full, "binning drifted at {} threads", t);
        }
        for i in 0..ds.n_rows() {
            for j in 0..ds.n_features() {
                prop_assert_eq!(
                    full.code(i, j),
                    binner.bin_value(j, ds.cell(i, j)) as usize,
                    "cell ({}, {})", i, j
                );
            }
        }
        // Append equivalence over a prefix (the binner was fitted on the
        // full dataset, so its edges are unchanged by construction).
        let prefix_rows: Vec<usize> = (0..ds.n_rows() / 2).collect();
        let prefix = ds.gather(&prefix_rows);
        let mut grown = binner.bin_dataset(&prefix);
        binner.append(&ds, &mut grown);
        prop_assert_eq!(grown, full);
    }

    /// Splits partition the index set with the requested sizes.
    #[test]
    fn split_partition(n in 2usize..200, frac in 0.0..1.0f64, seed in 0u64..100) {
        let idx: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let s = split_indices(&idx, frac, &mut rng);
        prop_assert_eq!(s.train.len(), (frac * n as f64).round() as usize);
        let mut merged = s.train.clone();
        merged.extend(&s.test);
        merged.sort_unstable();
        prop_assert_eq!(merged, idx);
    }

    /// Stratified splits preserve per-class totals.
    #[test]
    fn stratified_totals(ds in arb_dataset(), seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (tr, te) = stratified_split(&ds, 0.7, &mut rng);
        let total = ds.class_counts();
        let merged: Vec<usize> = tr
            .class_counts()
            .iter()
            .zip(te.class_counts())
            .map(|(a, b)| a + b)
            .collect();
        prop_assert_eq!(merged, total);
    }

    /// Distance axioms: identity, symmetry, triangle inequality.
    #[test]
    fn distance_axioms(ds in arb_dataset(), metric_pick in proptest::bool::ANY) {
        let metric = if metric_pick { MixedMetric::SmoteNc } else { MixedMetric::Heom };
        let d = MixedDistance::fit(&ds, metric);
        let n = ds.n_rows().min(8);
        for i in 0..n {
            prop_assert_eq!(d.distance_between(&ds, i, i), 0.0);
            for j in 0..n {
                let dij = d.distance_between(&ds, i, j);
                prop_assert!((dij - d.distance_between(&ds, j, i)).abs() < 1e-12);
                for k in 0..n {
                    let dik = d.distance_between(&ds, i, k);
                    let dkj = d.distance_between(&ds, k, j);
                    prop_assert!(dij <= dik + dkj + 1e-9,
                        "triangle violated: d({i},{j})={dij} > {dik}+{dkj}");
                }
            }
        }
    }

    /// SMOTE points lie inside the axis-aligned bounding box of the minority
    /// class (convex combinations cannot escape it).
    #[test]
    fn smote_convexity(seed in 0u64..200, n_new in 1usize..30) {
        let schema = Schema::builder("y", vec!["maj".into(), "min".into()])
            .numeric("a")
            .numeric("b")
            .build();
        let mut ds = Dataset::new(schema);
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        for _ in 0..20 {
            ds.push_row(&[
                Value::Num(rng.random_range(-5.0..5.0)),
                Value::Num(rng.random_range(-5.0..5.0)),
            ], 0).unwrap();
        }
        let (mut lo_a, mut hi_a) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut lo_b, mut hi_b) = (f64::INFINITY, f64::NEG_INFINITY);
        for _ in 0..10 {
            let a = rng.random_range(10.0..20.0);
            let b = rng.random_range(-20.0..-10.0);
            lo_a = lo_a.min(a); hi_a = hi_a.max(a);
            lo_b = lo_b.min(b); hi_b = hi_b.max(b);
            ds.push_row(&[Value::Num(a), Value::Num(b)], 1).unwrap();
        }
        let out = Smote::new(SmoteParams { k: 3 })
            .generate(&ds, 1, n_new, &mut rng)
            .unwrap();
        for i in 0..out.n_rows() {
            let a = out.value(i, 0).expect_num();
            let b = out.value(i, 1).expect_num();
            prop_assert!((lo_a..=hi_a).contains(&a));
            prop_assert!((lo_b..=hi_b).contains(&b));
        }
    }

    /// Ball-tree k-NN matches brute force on random point sets.
    #[test]
    fn ball_tree_matches_brute(
        points in proptest::collection::vec(
            proptest::collection::vec(-10.0..10.0f64, 3), 2..120,
        ),
        k in 1usize..8,
    ) {
        let tree = BallTree::build(points.clone().into());
        let query = &points[0];
        let got: Vec<usize> = tree.k_nearest(query, k).iter().map(|h| h.index).collect();
        let mut brute: Vec<(f64, usize)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let d: f64 = p.iter().zip(query).map(|(a, b)| (a - b) * (a - b)).sum();
                (d.sqrt(), i)
            })
            .collect();
        brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let expected: Vec<usize> = brute.into_iter().take(k).map(|(_, i)| i).collect();
        prop_assert_eq!(got, expected);
    }

    /// Metric identities: accuracy equals diagonal mass; macro-F1 of perfect
    /// predictions is 1; per-class F1 stays in [0, 1].
    #[test]
    fn metric_identities(labels in proptest::collection::vec(0u32..3, 1..80), shift in 0u32..3) {
        let preds: Vec<u32> = labels.iter().map(|&l| (l + shift) % 3).collect();
        let acc = accuracy(&preds, &labels);
        let m = ConfusionMatrix::new(&preds, &labels, 3);
        let diag: usize = (0..3).map(|c| m.true_positives(c)).sum();
        prop_assert!((acc - diag as f64 / labels.len() as f64).abs() < 1e-12);
        if shift == 0 {
            prop_assert_eq!(macro_f1(&preds, &labels, 3), 1.0);
        }
        for c in 0..3 {
            prop_assert!((0.0..=1.0).contains(&m.f1(c)));
        }
    }

    /// Simplex optimal solutions are feasible and at least as good as any
    /// sampled feasible point (local optimality probe).
    #[test]
    fn simplex_dominates_random_feasible_points(
        c0 in -3.0..3.0f64, c1 in -3.0..3.0f64,
        b0 in 1.0..10.0f64, b1 in 1.0..10.0f64,
        probes in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 10),
    ) {
        // max c.x s.t. x0 + x1 <= b0, 2x0 + x1 <= b1, x in R+^2.
        let lp = LinearProgram::new(vec![c0, c1])
            .constraint(vec![1.0, 1.0], b0)
            .constraint(vec![2.0, 1.0], b1);
        match lp.solve() {
            LpOutcome::Optimal { x, value } => {
                prop_assert!(x[0] + x[1] <= b0 + 1e-7);
                prop_assert!(2.0 * x[0] + x[1] <= b1 + 1e-7);
                prop_assert!(x[0] >= -1e-9 && x[1] >= -1e-9);
                for (u, v) in probes {
                    // Scale the probe into the feasible region.
                    let p0 = u * b0.min(b1 / 2.0);
                    let p1 = v * (b0 - p0).min(b1 - 2.0 * p0).max(0.0);
                    let probe_val = c0 * p0 + c1 * p1;
                    prop_assert!(value >= probe_val - 1e-6,
                        "probe ({p0},{p1}) value {probe_val} beats optimum {value}");
                }
            }
            other => prop_assert!(false, "bounded LP reported {other:?}"),
        }
    }
}
