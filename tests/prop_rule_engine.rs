//! Differential property tests for the compiled columnar rule engine
//! (`frote_rules::engine`) against the row-at-a-time interpreter.
//!
//! The interpreter (`Predicate::eval` / `Clause::satisfied_by` and the
//! `*_interpreted` scans) is the executable specification; the compiled
//! bitmask engine must agree with it on every row of every dataset,
//! including rows holding IEEE NaN cells and thresholds that land exactly
//! on (or one ULP off) quantization bin edges. Thread invariance is pinned
//! separately on a dataset large enough to cross the engine's parallel
//! threshold.

use frote_data::{BinnedCache, Dataset, Schema, Value};
use frote_rules::{
    Clause, CompiledClause, CompiledRuleSet, FeedbackRule, FeedbackRuleSet, Op, Predicate,
    RuleMaskCache,
};
use proptest::prelude::*;

/// Schema used throughout: two numeric, one 4-way categorical feature.
fn schema() -> Schema {
    Schema::builder("y", vec!["a".into(), "b".into(), "c".into()])
        .numeric("x0")
        .numeric("x1")
        .categorical("k", vec!["p".into(), "q".into(), "r".into(), "s".into()])
        .build()
}

/// Numeric values on a coarse grid so row values and thresholds collide
/// often — exact ties are where comparison bugs live.
fn arb_grid_value() -> impl Strategy<Value = f64> {
    (-8i32..=8).prop_map(|i| f64::from(i) * 0.5)
}

/// A grid value, or NaN with ~1/8 probability.
fn arb_cell() -> impl Strategy<Value = f64> {
    (0u8..8, arb_grid_value()).prop_map(|(w, v)| if w == 0 { f64::NAN } else { v })
}

prop_compose! {
    fn arb_row()(x0 in arb_cell(), x1 in arb_cell(), k in 0u32..4) -> Vec<Value> {
        vec![Value::Num(x0), Value::Num(x1), Value::Cat(k)]
    }
}

prop_compose! {
    fn arb_finite_row()(x0 in arb_grid_value(), x1 in arb_grid_value(), k in 0u32..4)
        -> Vec<Value>
    {
        vec![Value::Num(x0), Value::Num(x1), Value::Cat(k)]
    }
}

fn build_dataset(rows: Vec<(Vec<Value>, u32)>) -> Dataset {
    let mut ds = Dataset::new(schema());
    for (row, label) in rows {
        ds.push_row(&row, label).unwrap();
    }
    ds
}

/// Dataset with NaN cells sprinkled in.
fn arb_dataset(max_rows: usize) -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((arb_row(), 0u32..3), 1..max_rows).prop_map(build_dataset)
}

/// Dataset of finite values only (required by the binned plane).
fn arb_finite_dataset(max_rows: usize) -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((arb_finite_row(), 0u32..3), 1..max_rows).prop_map(build_dataset)
}

/// Thresholds sit on the value grid or one ULP to either side of it, so
/// they routinely hit bin edges exactly and straddle them minimally.
fn arb_threshold() -> impl Strategy<Value = f64> {
    (arb_grid_value(), -1i32..=1).prop_map(|(v, shift)| match shift {
        -1 => v.next_down(),
        1 => v.next_up(),
        _ => v,
    })
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (
            0usize..2,
            arb_threshold(),
            prop_oneof![Just(Op::Lt), Just(Op::Le), Just(Op::Gt), Just(Op::Ge), Just(Op::Eq)]
        )
            .prop_map(|(f, v, op)| Predicate::new(f, op, Value::Num(v))),
        (0u32..4, prop_oneof![Just(Op::Eq), Just(Op::Ne)]).prop_map(|(c, op)| Predicate::new(
            2,
            op,
            Value::Cat(c)
        )),
    ]
}

fn arb_clause(max_preds: usize) -> impl Strategy<Value = Clause> {
    proptest::collection::vec(arb_predicate(), 0..max_preds).prop_map(Clause::new)
}

fn arb_ruleset(max_rules: usize) -> impl Strategy<Value = FeedbackRuleSet> {
    proptest::collection::vec((arb_clause(3), 0u32..3), 0..max_rules).prop_map(|rules| {
        FeedbackRuleSet::new(
            rules.into_iter().map(|(c, y)| FeedbackRule::deterministic(c, y)).collect(),
        )
    })
}

proptest! {
    /// The compiled raw-plane mask agrees with the interpreter on every
    /// single row — including rows with NaN cells — and its extracted
    /// index list equals the interpreted coverage scan.
    #[test]
    fn compiled_clause_matches_interpreter_per_row(
        ds in arb_dataset(48),
        clause in arb_clause(4),
    ) {
        let compiled = CompiledClause::compile(&clause, ds.schema()).unwrap();
        let mask = compiled.eval(&ds);
        prop_assert_eq!(mask.len(), ds.n_rows());
        for i in 0..ds.n_rows() {
            prop_assert_eq!(
                mask.get(i),
                clause.satisfied_by(&ds.row(i)),
                "row {} of {}: clause {}", i, ds.n_rows(), clause
            );
        }
        prop_assert_eq!(mask.indices(), clause.coverage_interpreted(&ds));
        prop_assert_eq!(mask.count(), clause.coverage_count_interpreted(&ds));
        prop_assert_eq!(compiled.coverage(&ds), clause.coverage(&ds));
    }

    /// The binned fast path (bin-code comparisons with raw fallback on the
    /// ambiguous bin) returns exactly the raw-plane mask, even when
    /// thresholds sit on — or one ULP off — the fitted bin edges.
    #[test]
    fn binned_plane_matches_raw_plane(
        ds in arb_finite_dataset(48),
        clause in arb_clause(4),
        max_bins in 2usize..6,
    ) {
        let cache = BinnedCache::fit(&ds, max_bins);
        let compiled = CompiledClause::compile(&clause, ds.schema()).unwrap();
        let raw = compiled.eval(&ds);
        let binned = compiled.eval_binned(cache.binner(), cache.codes(), &ds);
        prop_assert_eq!(binned.indices(), raw.indices(),
            "binned/raw disagree: clause {}, max_bins {}", clause, max_bins);
    }

    /// Whole-set scans: the compiled engine's coverage, outside coverage,
    /// and first-match attribution agree with the interpreted references.
    #[test]
    fn compiled_ruleset_matches_interpreted_scans(
        ds in arb_dataset(48),
        frs in arb_ruleset(4),
    ) {
        let compiled = CompiledRuleSet::compile(&frs, ds.schema()).unwrap();
        prop_assert_eq!(compiled.coverage(&ds), frs.coverage_interpreted(&ds));
        prop_assert_eq!(compiled.outside_coverage(&ds), frs.outside_coverage_interpreted(&ds));
        prop_assert_eq!(
            compiled.attributed_coverage(&ds),
            frs.attributed_coverage_interpreted(&ds)
        );
    }

    /// Incremental mask maintenance: syncing a prefix, appending the rest
    /// row by row, truncating back, and re-syncing always matches a fresh
    /// full evaluation — the append/truncate plane never drifts.
    #[test]
    fn mask_cache_incremental_sync_matches_fresh(
        rows in proptest::collection::vec((arb_row(), 0u32..3), 2..40),
        frs in arb_ruleset(4),
        split_num in 0usize..100,
    ) {
        let split = 1 + split_num % (rows.len() - 1);
        let prefix = build_dataset(rows[..split].to_vec());
        let full = build_dataset(rows.clone());

        let mut cache = RuleMaskCache::compile(&frs, full.schema()).unwrap();
        cache.sync(&prefix);
        prop_assert_eq!(cache.rows(), split);
        cache.sync(&full);
        prop_assert_eq!(cache.rows(), full.n_rows());

        let mut fresh = RuleMaskCache::compile(&frs, full.schema()).unwrap();
        fresh.sync(&full);
        prop_assert_eq!(cache.masks(), fresh.masks(), "append drifted from full eval");
        prop_assert_eq!(cache.coverage(), frs.coverage_interpreted(&full));
        prop_assert_eq!(cache.outside_coverage(), frs.outside_coverage_interpreted(&full));
        prop_assert_eq!(cache.attributed_coverage(), frs.attributed_coverage_interpreted(&full));

        // Roll back to the prefix: exact, not approximate.
        cache.truncate(split);
        let mut at_prefix = RuleMaskCache::compile(&frs, prefix.schema()).unwrap();
        at_prefix.sync(&prefix);
        prop_assert_eq!(cache.masks(), at_prefix.masks(), "truncate left stale bits");
    }
}

/// A deterministic dataset large enough to cross the engine's parallel
/// scan threshold (4096 rows), with NaN cells on a fixed stride.
fn large_dataset(n: usize) -> Dataset {
    let mut ds = Dataset::new(schema());
    for i in 0..n {
        let x0 = if i % 97 == 0 { f64::NAN } else { (i % 17) as f64 * 0.5 - 4.0 };
        let x1 = ((i * 7) % 23) as f64 * 0.25 - 2.0;
        ds.push_row(&[Value::Num(x0), Value::Num(x1), Value::Cat((i % 4) as u32)], (i % 3) as u32)
            .unwrap();
    }
    ds
}

/// The parallel block scan is bit-identical to the serial scan — and to
/// the interpreter — at every thread count.
#[test]
fn parallel_scan_is_thread_invariant() {
    use frote_par::test_support::with_threads;
    let ds = large_dataset(10_000);
    let clauses = [
        Clause::new(vec![Predicate::new(0, Op::Le, Value::Num(1.5))]),
        Clause::new(vec![
            Predicate::new(0, Op::Gt, Value::Num(-2.0)),
            Predicate::new(1, Op::Lt, Value::Num(2.25)),
            Predicate::new(2, Op::Eq, Value::Cat(1)),
        ]),
        Clause::new(vec![Predicate::new(1, Op::Ge, Value::Num(f64::NAN))]),
        Clause::new(vec![]),
    ];
    for clause in &clauses {
        let compiled = CompiledClause::compile(clause, ds.schema()).unwrap();
        let reference = with_threads(1, || compiled.eval(&ds));
        assert_eq!(reference.indices(), clause.coverage_interpreted(&ds), "clause {clause}");
        for t in [2, 4, 8] {
            let par = with_threads(t, || compiled.eval(&ds));
            assert_eq!(par, reference, "FROTE_THREADS={t}, clause {clause}");
        }
    }
}

/// Binned evaluation is likewise thread-invariant and raw-identical on a
/// large finite dataset.
#[test]
fn parallel_binned_scan_is_thread_invariant() {
    use frote_par::test_support::with_threads;
    let mut ds = Dataset::new(schema());
    for i in 0..8_192 {
        ds.push_row(
            &[
                Value::Num((i % 31) as f64 * 0.5 - 7.0),
                Value::Num(((i * 5) % 13) as f64 * 0.25),
                Value::Cat((i % 4) as u32),
            ],
            (i % 3) as u32,
        )
        .unwrap();
    }
    let cache = BinnedCache::fit(&ds, 8);
    let clause = Clause::new(vec![
        Predicate::new(0, Op::Le, Value::Num(0.5)),
        Predicate::new(1, Op::Ge, Value::Num(1.0)),
    ]);
    let compiled = CompiledClause::compile(&clause, ds.schema()).unwrap();
    let raw = compiled.eval(&ds);
    let reference = with_threads(1, || compiled.eval_binned(cache.binner(), cache.codes(), &ds));
    assert_eq!(reference, raw, "binned plane disagrees with raw plane");
    for t in [2, 4, 8] {
        let par = with_threads(t, || compiled.eval_binned(cache.binner(), cache.codes(), &ds));
        assert_eq!(par, reference, "FROTE_THREADS={t}");
    }
}
