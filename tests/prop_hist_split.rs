//! Property pin for the quantized training plane: with a bin budget that
//! covers every distinct value (and few enough distinct values that the
//! exact search skips its per-node threshold thinning), the histogram split
//! search reproduces the exact search decision-for-decision — identical
//! node count, identical split features, identical leaf distributions, and
//! identical routing of every training row. Numeric thresholds may differ
//! in *representation* at deeper nodes (both searches cut the same value
//! gap, but the exact search uses the node-local midpoint while the
//! histogram search uses the first global bin edge inside the gap), so the
//! comparison normalizes threshold literals away before asserting the
//! trees' `Debug` renderings are equal.
//!
//! A second property drops the precondition and checks the contract that
//! must hold for *any* budget: histogram-mode training is bit-identical
//! across thread counts (fixed-order block reduction), and cached
//! (incrementally binned) training equals fresh training.

use frote_data::{BinnedCache, Dataset, Schema, Value};
use frote_ml::gbdt::{Gbdt, GbdtParams};
use frote_ml::tree::{DecisionTree, DecisionTreeTrainer, TreeParams};
use frote_ml::{Classifier, SplitMode, TrainAlgorithm, TrainCache};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn schema() -> Schema {
    Schema::builder("y", vec!["a".into(), "b".into(), "c".into()])
        .numeric("x0")
        .numeric("x1")
        .categorical("k", vec!["p".into(), "q".into(), "r".into(), "s".into()])
        .build()
}

prop_compose! {
    /// Rows whose numeric cells take at most 16 distinct values, so the
    /// exact search's MAX_THRESHOLDS thinning never engages and a 64-bin
    /// budget yields one bin per distinct value.
    fn arb_coarse_dataset()(rows in proptest::collection::vec(
        (0u8..16, 0u8..12, 0u32..4, 0u32..3), 12..80,
    )) -> Dataset {
        let mut ds = Dataset::new(schema());
        for (x0, x1, k, y) in rows {
            ds.push_row(
                &[Value::Num(f64::from(x0) * 1.5 - 3.0), Value::Num(f64::from(x1)), Value::Cat(k)],
                y,
            )
            .unwrap();
        }
        ds
    }
}

/// Blanks the numeric value after every `threshold: ` up to the following
/// comma, so tree `Debug` renderings compare structure, split features,
/// and leaf distributions — everything but the in-gap threshold placement.
fn normalize_thresholds(debug: &str) -> String {
    let mut out = String::with_capacity(debug.len());
    let mut rest = debug;
    while let Some(at) = rest.find("threshold: ") {
        let tail = &rest[at + "threshold: ".len()..];
        let cut = tail.find(',').unwrap_or(tail.len());
        out.push_str(&rest[..at]);
        out.push_str("threshold: <gap>");
        rest = &tail[cut..];
    }
    out.push_str(rest);
    out
}

proptest! {
    /// Decision-for-decision equivalence under the coverage precondition.
    #[test]
    fn histogram_reproduces_exact_decisions(ds in arb_coarse_dataset(), depth in 1usize..6) {
        let params = TreeParams { max_depth: depth, ..Default::default() };
        let idx: Vec<usize> = (0..ds.n_rows()).collect();
        let exact = DecisionTree::fit(&ds, &idx, &params, &mut StdRng::seed_from_u64(1));
        let binned = BinnedCache::fit(&ds, 64);
        let hist = DecisionTree::fit_hist(
            &ds,
            binned.binner(),
            binned.codes(),
            &idx,
            &params,
            &mut StdRng::seed_from_u64(1),
        );
        prop_assert_eq!(exact.n_nodes(), hist.n_nodes());
        prop_assert_eq!(exact.feature_split_counts(), hist.feature_split_counts());
        // Identical structure and leaf distributions (thresholds normalized).
        prop_assert_eq!(
            normalize_thresholds(&format!("{exact:?}")),
            normalize_thresholds(&format!("{hist:?}"))
        );
        // Identical routing: every training row reaches a leaf with the
        // same class distribution, bit for bit.
        for i in 0..ds.n_rows() {
            let row = ds.row(i);
            prop_assert_eq!(exact.predict_proba(&row), hist.predict_proba(&row), "row {}", i);
        }
    }

    /// For any budget: thread-count invariance and cache transparency.
    #[test]
    fn histogram_training_is_deterministic_and_cache_transparent(
        ds in arb_coarse_dataset(),
        max_bins in 2usize..32,
    ) {
        let params = TreeParams {
            max_depth: 4,
            split_mode: SplitMode::Histogram { max_bins },
            ..Default::default()
        };
        let trainer = DecisionTreeTrainer::new(params, 3);
        let preds_at = |threads: usize| {
            frote_par::test_support::with_threads(threads, || {
                trainer.train(&ds).predict_dataset(&ds)
            })
        };
        let serial = preds_at(1);
        prop_assert_eq!(&preds_at(2), &serial, "FROTE_THREADS=2 drifted");
        prop_assert_eq!(&preds_at(4), &serial, "FROTE_THREADS=4 drifted");
        let mut cache = TrainCache::new();
        let cached = trainer.train_cached(&ds, &mut cache).predict_dataset(&ds);
        prop_assert_eq!(&cached, &serial, "cached binning drifted");
        // Syncing the same cache against the unchanged dataset is a no-op.
        let resynced = trainer.train_cached(&ds, &mut cache).predict_dataset(&ds);
        prop_assert_eq!(&resynced, &serial, "resynced cache drifted");
    }

    /// GBDT's histogram regression trees share the determinism contract.
    #[test]
    fn histogram_gbdt_is_thread_count_invariant(ds in arb_coarse_dataset()) {
        let params = GbdtParams {
            n_rounds: 3,
            split_mode: SplitMode::histogram(),
            ..Default::default()
        };
        let scores_at = |threads: usize| {
            frote_par::test_support::with_threads(threads, || {
                let model = Gbdt::fit(&ds, &params);
                (0..ds.n_rows()).flat_map(|i| model.predict_proba(&ds.row(i))).collect::<Vec<f64>>()
            })
        };
        let serial = scores_at(1);
        for t in [2usize, 4] {
            let par = scores_at(t);
            let bitwise = serial.iter().zip(&par).all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(bitwise, "GBDT probabilities drifted at FROTE_THREADS={}", t);
        }
    }
}
