//! The numeric-kernel determinism contract, pinned bit-for-bit.
//!
//! Every kernel in `frote_ml::kernels` must equal its naive sequential
//! reference loop **exactly** (`to_bits` equality, not epsilon closeness) on
//! arbitrary finite inputs including the empty and length-1 cases — that is
//! what makes rewiring call sites onto the kernels a no-op for the golden
//! pipeline hashes. On top, the blocked logistic-regression gradient (the
//! one kernel consumer that parallelizes) must be invariant to
//! `FROTE_THREADS` 1/2/4, because its per-block partials are reduced in
//! block order.

use frote_data::{Dataset, Schema, Value};
use frote_ml::kernels;
use frote_ml::logreg::{LogRegParams, LogisticRegression};
use frote_par::test_support::with_threads;
use proptest::prelude::*;

// ---- naive reference loops: the semantics the kernels must reproduce ----

fn naive_dot(init: f64, a: &[f64], b: &[f64]) -> f64 {
    let mut acc = init;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

fn naive_sq_dist(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

fn naive_gather_sum(xs: &[f64], idx: &[usize]) -> f64 {
    let mut acc = 0.0;
    for &i in idx {
        acc += xs[i];
    }
    acc
}

fn naive_softmax(scores: &[f64]) -> Vec<f64> {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut out: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
    let sum: f64 = out.iter().sum();
    for o in &mut out {
        *o /= sum;
    }
    out
}

fn naive_logsumexp(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    max + xs.iter().map(|&x| (x - max).exp()).sum::<f64>().ln()
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// NaN-free values spanning several magnitudes, so reassociation would be
/// caught (`(a + b) + c != a + (b + c)` is the common case here, not the
/// exception).
fn finite() -> impl Strategy<Value = f64> {
    prop_oneof![-1e6..1e6f64, -1.0..1.0f64, -1e-6..1e-6f64]
}

/// A pair of equal-length slices, lengths 0..=65 (covering empty, 1, the
/// 4-lane blocks, and every remainder) — two draws truncated to the shorter.
fn slice_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (proptest::collection::vec(finite(), 0..=65), proptest::collection::vec(finite(), 0..=65))
        .prop_map(|(mut a, mut b)| {
            let len = a.len().min(b.len());
            a.truncate(len);
            b.truncate(len);
            (a, b)
        })
}

proptest! {
    #[test]
    fn dot_equals_naive_bit_for_bit((a, b) in slice_pair(), init in finite()) {
        prop_assert_eq!(kernels::dot(&a, &b).to_bits(), naive_dot(0.0, &a, &b).to_bits());
        prop_assert_eq!(
            kernels::dot_from(init, &a, &b).to_bits(),
            naive_dot(init, &a, &b).to_bits()
        );
    }

    #[test]
    fn sq_dist_equals_naive_bit_for_bit((a, b) in slice_pair()) {
        prop_assert_eq!(kernels::sq_dist(&a, &b).to_bits(), naive_sq_dist(&a, &b).to_bits());
    }

    #[test]
    fn axpy_and_grad_update_equal_naive_bit_for_bit(
        (x, y) in slice_pair(),
        alpha in finite(),
    ) {
        let mut kernel = y.clone();
        kernels::axpy(alpha, &x, &mut kernel);
        let mut naive = y.clone();
        for (yi, &xi) in naive.iter_mut().zip(&x) {
            *yi += alpha * xi;
        }
        prop_assert_eq!(bits(&kernel), bits(&naive));

        // grad_update = axpy over the coefficients + bias accumulate.
        let mut g = y.clone();
        g.push(alpha);
        let mut g_naive = g.clone();
        kernels::grad_update(&mut g, alpha, &x);
        for (gj, &xj) in g_naive.iter_mut().zip(&x) {
            *gj += alpha * xj;
        }
        *g_naive.last_mut().unwrap() += alpha;
        prop_assert_eq!(bits(&g), bits(&g_naive));
    }

    #[test]
    fn add_sub_assign_equal_naive_bit_for_bit((x, y) in slice_pair()) {
        let mut add = y.clone();
        kernels::add_assign(&mut add, &x);
        let mut sub = y.clone();
        kernels::sub_assign(&mut sub, &x);
        let naive_add: Vec<f64> = y.iter().zip(&x).map(|(a, b)| a + b).collect();
        let naive_sub: Vec<f64> = y.iter().zip(&x).map(|(a, b)| a - b).collect();
        prop_assert_eq!(bits(&add), bits(&naive_add));
        prop_assert_eq!(bits(&sub), bits(&naive_sub));
    }

    #[test]
    fn gather_sum_equals_naive_bit_for_bit(
        xs in proptest::collection::vec(finite(), 1..=65),
        idx in proptest::collection::vec(0usize..65, 0..=65),
    ) {
        let idx: Vec<usize> = idx.into_iter().map(|i| i % xs.len()).collect();
        prop_assert_eq!(
            kernels::gather_sum(&xs, &idx).to_bits(),
            naive_gather_sum(&xs, &idx).to_bits()
        );
    }

    #[test]
    fn softmax_and_logsumexp_equal_naive_bit_for_bit(
        scores in proptest::collection::vec(-700.0..700.0f64, 1..=65),
    ) {
        let mut out = vec![0.0; scores.len()];
        kernels::softmax_into(&scores, &mut out);
        prop_assert_eq!(bits(&out), bits(&naive_softmax(&scores)));
        prop_assert_eq!(
            kernels::logsumexp(&scores).to_bits(),
            naive_logsumexp(&scores).to_bits()
        );
    }
}

// ---- blocked-reduction thread invariance ----

/// A numeric dataset large enough to span several LR gradient blocks
/// (512 rows each), so the fixed-order block reduction is actually
/// exercised across thread counts.
fn multi_block_ds() -> Dataset {
    let schema = Schema::builder("y", vec!["a".into(), "b".into(), "c".into()])
        .numeric("x0")
        .numeric("x1")
        .numeric("x2")
        .build();
    let mut ds = Dataset::new(schema);
    for i in 0..1700 {
        let x0 = (i as f64 * 0.37).sin() * 3.0;
        let x1 = (i as f64 * 0.11).cos() * 5.0;
        let x2 = ((i * 7919) % 100) as f64 / 10.0;
        let label = ((x0 + x1 > 0.0) as u32) + ((x2 > 5.0) as u32);
        ds.push_row(&[Value::Num(x0), Value::Num(x1), Value::Num(x2)], label).unwrap();
    }
    ds
}

#[test]
fn lr_blocked_gradient_is_invariant_to_thread_count() {
    let ds = multi_block_ds();
    let params = LogRegParams { max_iter: 40, ..Default::default() };
    let reference = with_threads(1, || LogisticRegression::fit(&ds, &params));
    let encoded = reference.encoder().encode_dataset(&ds);
    let mut expect = Vec::new();
    let mut got = Vec::new();
    for t in [2usize, 4] {
        let model = with_threads(t, || LogisticRegression::fit(&ds, &params));
        for i in (0..ds.n_rows()).step_by(97) {
            reference.predict_proba_encoded(encoded.row(i), &mut expect);
            model.predict_proba_encoded(encoded.row(i), &mut got);
            let same = expect.iter().zip(&got).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "FROTE_THREADS={t} row {i}: {expect:?} vs {got:?}");
        }
    }
}
