//! Batch-vs-single equivalence for every model family: the overridden
//! `predict_dataset` fast paths (encode-once scoring, index-based tree
//! traversal) and the provided `predict_rows` must agree exactly with
//! per-row `predict` over materialized rows, at 1 and 4 threads.

use frote_data::synth::{DatasetKind, SynthConfig};
use frote_ml::forest::{ForestParams, RandomForestTrainer};
use frote_ml::gbdt::{GbdtParams, GbdtTrainer};
use frote_ml::logreg::LogisticRegressionTrainer;
use frote_ml::naive_bayes::NaiveBayesTrainer;
use frote_ml::tree::DecisionTreeTrainer;
use frote_ml::TrainAlgorithm;
use frote_par::test_support::with_threads;

#[test]
fn predict_dataset_matches_per_row_predict_for_all_families() {
    let trainers: Vec<Box<dyn TrainAlgorithm>> = vec![
        Box::new(LogisticRegressionTrainer::default()),
        Box::new(DecisionTreeTrainer::default()),
        Box::new(RandomForestTrainer::new(ForestParams { n_trees: 7, ..Default::default() }, 3)),
        Box::new(GbdtTrainer::new(GbdtParams { n_rounds: 5, ..Default::default() })),
        Box::new(NaiveBayesTrainer::default()),
    ];
    for kind in [DatasetKind::Car, DatasetKind::WineQuality, DatasetKind::Adult] {
        let ds = kind.generate(&SynthConfig { n_rows: 600, ..Default::default() });
        for trainer in &trainers {
            let model = trainer.train(&ds);
            let per_row: Vec<u32> = (0..ds.n_rows()).map(|i| model.predict(&ds.row(i))).collect();
            let subset: Vec<usize> = (0..ds.n_rows()).step_by(3).collect();
            let subset_per_row: Vec<u32> = subset.iter().map(|&i| per_row[i]).collect();
            for t in [1usize, 4] {
                let batch = with_threads(t, || model.predict_dataset(&ds));
                assert_eq!(
                    batch,
                    per_row,
                    "{} on {}: predict_dataset diverged at {t} threads",
                    trainer.name(),
                    kind.name()
                );
                let rows = with_threads(t, || model.predict_rows(&ds, &subset));
                assert_eq!(
                    rows,
                    subset_per_row,
                    "{} on {}: predict_rows diverged at {t} threads",
                    trainer.name(),
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn predict_proba_into_matches_predict_proba() {
    let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 200, ..Default::default() });
    let trainers: Vec<Box<dyn TrainAlgorithm>> = vec![
        Box::new(LogisticRegressionTrainer::default()),
        Box::new(RandomForestTrainer::new(ForestParams { n_trees: 5, ..Default::default() }, 1)),
        Box::new(GbdtTrainer::new(GbdtParams { n_rounds: 3, ..Default::default() })),
        Box::new(NaiveBayesTrainer::default()),
    ];
    for trainer in &trainers {
        let model = trainer.train(&ds);
        let mut scratch = Vec::new();
        for i in (0..ds.n_rows()).step_by(17) {
            let row = ds.row(i);
            model.predict_proba_into(&row, &mut scratch);
            assert_eq!(scratch, model.predict_proba(&row), "{} row {i}", trainer.name());
            assert!((scratch.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
