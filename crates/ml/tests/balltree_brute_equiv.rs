//! Public-API equivalence: [`frote_ml::balltree::BallTree::k_nearest`] must
//! agree with a brute-force scan for every query, k, and point cloud —
//! including ties, duplicates, and degenerate dimensions. The in-module unit
//! tests cover small hand-built cases; this suite sweeps seeded random
//! configurations through the public API only.

use frote_ml::balltree::BallTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(rng: &mut StdRng, n: usize, dim: usize, spread: f64) -> Vec<Vec<f64>> {
    (0..n).map(|_| (0..dim).map(|_| rng.random_range(-spread..spread)).collect()).collect()
}

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Brute-force distances of the k nearest points, ascending.
fn brute_distances(points: &[Vec<f64>], query: &[f64], k: usize) -> Vec<f64> {
    let mut d: Vec<f64> = points.iter().map(|p| euclid(p, query)).collect();
    d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    d.truncate(k);
    d
}

/// The tree must return exactly k hits (or n when k > n) whose distance
/// multiset matches brute force. Ties make index comparison ambiguous, so
/// equivalence is asserted on sorted distances, which is what kNN consumers
/// (SMOTE neighbourhoods, borderline detection) actually depend on.
fn assert_equivalent(points: &[Vec<f64>], query: &[f64], k: usize) {
    let tree = BallTree::build(points.to_vec().into());
    let mut got: Vec<f64> = tree.k_nearest(query, k).iter().map(|n| n.distance).collect();
    got.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let want = brute_distances(points, query, k);
    assert_eq!(got.len(), want.len(), "hit count for k={k}, n={}", points.len());
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert!((g - w).abs() < 1e-9, "hit {i}: tree={g}, brute={w} (k={k})");
    }
}

#[test]
fn random_clouds_match_brute_force() {
    let mut rng = StdRng::seed_from_u64(0xBA11);
    for &(n, dim) in &[(1usize, 1usize), (7, 2), (64, 3), (257, 5), (500, 8)] {
        let points = random_points(&mut rng, n, dim, 10.0);
        for _ in 0..20 {
            let query: Vec<f64> = (0..dim).map(|_| rng.random_range(-12.0..12.0)).collect();
            for &k in &[1usize, 3, 17, n, n + 5] {
                assert_equivalent(&points, &query, k);
            }
        }
    }
}

#[test]
fn tree_indices_agree_with_brute_force_when_distances_are_unique() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    // Spread points far apart so no two distances tie within tolerance.
    let points = random_points(&mut rng, 120, 4, 1000.0);
    for _ in 0..50 {
        let query: Vec<f64> = (0..4).map(|_| rng.random_range(-900.0..900.0)).collect();
        let tree = BallTree::build(points.clone().into());
        let mut got: Vec<usize> = tree.k_nearest(&query, 9).iter().map(|n| n.index).collect();
        got.sort_unstable();
        let mut by_dist: Vec<(f64, usize)> =
            points.iter().enumerate().map(|(i, p)| (euclid(p, &query), i)).collect();
        by_dist.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut want: Vec<usize> = by_dist[..9].iter().map(|&(_, i)| i).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

#[test]
fn clustered_duplicates_and_collinear_points() {
    let mut rng = StdRng::seed_from_u64(0xD0D0);
    // Two tight clusters plus exact duplicates: stresses the splitting
    // heuristic where many points share a centroid projection.
    let mut points = Vec::new();
    for _ in 0..40 {
        points.push(vec![rng.random_range(-0.01..0.01), 5.0]);
        points.push(vec![rng.random_range(-0.01..0.01), -5.0]);
    }
    points.extend(std::iter::repeat_n(vec![0.0, 5.0], 8));
    // Collinear tail along x.
    for i in 0..30 {
        points.push(vec![i as f64, 0.0]);
    }
    for query in [vec![0.0, 4.9], vec![0.0, 0.0], vec![29.0, 0.1], vec![100.0, 100.0]] {
        for k in [1, 8, 25, points.len()] {
            assert_equivalent(&points, &query, k);
        }
    }
}

#[test]
fn query_at_every_training_point_finds_itself_first() {
    let mut rng = StdRng::seed_from_u64(0xF1DE);
    let points = random_points(&mut rng, 80, 3, 50.0);
    let tree = BallTree::build(points.clone().into());
    for (i, p) in points.iter().enumerate() {
        let hits = tree.k_nearest(p, 1);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].distance < 1e-12, "self-distance for point {i}");
    }
}
