//! The black-box training contract FROTE assumes.
//!
//! The [`Classifier`] trait is batch-first: implementations provide the
//! allocation-free [`Classifier::predict_proba_into`], and the provided
//! batch methods ([`Classifier::predict_dataset`],
//! [`Classifier::predict_rows`]) walk the columnar store with reused scratch
//! buffers, in parallel across `frote_par::threads()` threads. Results are
//! bit-identical to a serial per-row loop at any thread count.

use frote_data::{BinnedCache, Dataset, EncodedCache, ShardedCache, Value};

/// Rows per parallel block when batch-predicting. Boundaries only affect the
/// schedule, never the result.
pub(crate) const PREDICT_BLOCK: usize = 256;

/// A trained classifier over raw (mixed-type) rows.
///
/// Implementations must be `Send + Sync` so models can be evaluated from
/// benchmark harnesses without ceremony.
pub trait Classifier: Send + Sync {
    /// Number of classes the model can emit.
    fn n_classes(&self) -> usize;

    /// Class probabilities for one row (sums to 1), written into `out`
    /// (cleared first). The batch paths call this with a reused buffer, so
    /// implementations should not allocate beyond what the model requires.
    fn predict_proba_into(&self, row: &[Value], out: &mut Vec<f64>);

    /// Class probabilities for one row as a fresh vector.
    fn predict_proba(&self, row: &[Value]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_classes());
        self.predict_proba_into(row, &mut out);
        out
    }

    /// Hard prediction: the argmax of [`Classifier::predict_proba`] (ties to
    /// the lowest class). Implementations may override with a faster path.
    fn predict(&self, row: &[Value]) -> u32 {
        let mut p = Vec::with_capacity(self.n_classes());
        self.predict_proba_into(row, &mut p);
        argmax(&p)
    }

    /// Hard predictions for every row of a dataset, computed in parallel
    /// over row blocks with a reused row scratch (no `Dataset::row`
    /// allocation per row). Identical to mapping [`Classifier::predict`]
    /// over materialized rows, at any `FROTE_THREADS`.
    fn predict_dataset(&self, ds: &Dataset) -> Vec<u32> {
        frote_par::par_blocks_map(ds.n_rows(), PREDICT_BLOCK, |_, rows| {
            let mut row = Vec::with_capacity(ds.n_features());
            let mut out = Vec::with_capacity(rows.len());
            for i in rows {
                ds.row_into(i, &mut row);
                out.push(self.predict(&row));
            }
            out
        })
    }

    /// Hard predictions for the dataset rows listed in `rows` (in that
    /// order) — the batch path for coverage-partitioned scoring. Same
    /// scratch-reuse and parallelism guarantees as
    /// [`Classifier::predict_dataset`].
    fn predict_rows(&self, ds: &Dataset, rows: &[usize]) -> Vec<u32> {
        frote_par::par_chunks_map(rows, PREDICT_BLOCK, |_, chunk| {
            let mut row = Vec::with_capacity(ds.n_features());
            let mut out = Vec::with_capacity(chunk.len());
            for &i in chunk {
                ds.row_into(i, &mut row);
                out.push(self.predict(&row));
            }
            out
        })
    }
}

/// Reusable training state shared across repeated [`TrainAlgorithm`] calls
/// on an append-only dataset — FROTE's retrain loop hands each run one of
/// these so histogram-mode tree trainers bin the base rows once and only
/// bin what each iteration appends, and the logistic-regression trainer
/// likewise encodes base rows once and scores straight off the cached
/// [`frote_data::EncodedCache`] matrix. Exact-mode tree trainers ignore it.
#[derive(Debug, Default)]
pub struct TrainCache {
    binned: Option<BinnedCache>,
    encoded: Option<EncodedCache>,
    sharded: Option<ShardedCache>,
}

impl TrainCache {
    /// An empty cache (nothing binned or encoded yet).
    pub fn new() -> Self {
        TrainCache::default()
    }

    /// The binned view of `ds` at the given bin budget — fitted on first
    /// use, then kept in sync incrementally (appended rows are binned;
    /// a changed fit or a different budget re-bins from scratch).
    pub fn binned(&mut self, ds: &Dataset, max_bins: usize) -> &BinnedCache {
        let reusable = self.binned.as_ref().is_some_and(|c| c.binner().max_bins() == max_bins);
        if reusable {
            self.binned.as_mut().expect("checked above").sync(ds);
        } else {
            self.binned = Some(BinnedCache::fit(ds, max_bins));
        }
        self.binned.as_ref().expect("just filled")
    }

    /// The encoded view of `ds` — fitted on first use, then kept in sync
    /// incrementally (appended rows are encoded; a moved encoder fit
    /// re-encodes from scratch). Exact by construction: after this call,
    /// `encoder()` equals `Encoder::fit(ds)` and `matrix()` equals a fresh
    /// `encode_dataset(ds)` bit for bit.
    pub fn encoded(&mut self, ds: &Dataset) -> &EncodedCache {
        match &mut self.encoded {
            Some(cache) => {
                cache.sync(ds);
            }
            slot @ None => *slot = Some(EncodedCache::fit(ds)),
        }
        self.encoded.as_ref().expect("just filled")
    }

    /// The sharded encoded view of `ds` — the out-of-core twin of
    /// [`TrainCache::encoded`]: same encoder, same cell values bit for bit
    /// (`ShardedCache` syncs through the same append/rebuild rules), but
    /// chunked into [`frote_data::sharded::shard_rows`]-row shards that can
    /// be individually spilled to disk and reloaded.
    pub fn sharded(&mut self, ds: &Dataset) -> &ShardedCache {
        match &mut self.sharded {
            Some(cache) => {
                cache.sync(ds);
            }
            slot @ None => *slot = Some(ShardedCache::fit(ds)),
        }
        self.sharded.as_ref().expect("just filled")
    }

    /// Drops cached rows past the first `rows` (a rejected candidate batch
    /// is un-binned and un-encoded without touching the surviving prefix).
    pub fn truncate(&mut self, rows: usize) {
        if let Some(c) = &mut self.binned {
            c.truncate(rows);
        }
        if let Some(c) = &mut self.encoded {
            c.truncate(rows);
        }
        if let Some(c) = &mut self.sharded {
            c.truncate(rows);
        }
    }
}

/// A training algorithm: dataset in, classifier out (paper §3.2 treats it as
/// a black box, possibly proprietary).
pub trait TrainAlgorithm: Send + Sync {
    /// Trains a model on `ds`.
    ///
    /// # Panics
    ///
    /// Implementations panic on empty datasets — FROTE never trains on an
    /// empty `D̂` by construction.
    fn train(&self, ds: &Dataset) -> Box<dyn Classifier>;

    /// Trains on `ds`, reusing `cache` across calls on the same append-only
    /// dataset. The default ignores the cache and defers to
    /// [`TrainAlgorithm::train`]; histogram-mode tree trainers override it
    /// (and implement `train` by calling this with a throwaway cache — an
    /// override must therefore never call the default `train_cached`).
    /// Results are bit-identical to `train` either way.
    fn train_cached(&self, ds: &Dataset, cache: &mut TrainCache) -> Box<dyn Classifier> {
        let _ = cache;
        self.train(ds)
    }

    /// Short display name ("LR", "RF", "LGBM" in the paper's tables).
    fn name(&self) -> &str;
}

/// Argmax with ties to the lowest index.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub(crate) fn argmax(xs: &[f64]) -> u32 {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::{Schema, Value};

    struct Constant(u32, usize);
    impl Classifier for Constant {
        fn n_classes(&self) -> usize {
            self.1
        }
        fn predict_proba_into(&self, _row: &[Value], out: &mut Vec<f64>) {
            out.clear();
            out.resize(self.1, 0.0);
            out[self.0 as usize] = 1.0;
        }
    }

    #[test]
    fn default_predict_is_argmax_of_proba() {
        let c = Constant(2, 4);
        assert_eq!(c.predict(&[]), 2);
        assert_eq!(c.predict_proba(&[]), vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn predict_dataset_maps_rows() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Num(0.0)], 0).unwrap();
        ds.push_row(&[Value::Num(1.0)], 1).unwrap();
        let c = Constant(1, 2);
        assert_eq!(c.predict_dataset(&ds), vec![1, 1]);
        assert_eq!(c.predict_rows(&ds, &[1, 0, 1]), vec![1, 1, 1]);
    }

    #[test]
    fn batch_predictions_match_serial_at_any_thread_count() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema);
        for i in 0..600 {
            ds.push_row(&[Value::Num(i as f64)], (i % 2) as u32).unwrap();
        }
        let c = Constant(0, 2);
        let serial: Vec<u32> = (0..ds.n_rows()).map(|i| c.predict(&ds.row(i))).collect();
        for t in [1usize, 4] {
            let batch = frote_par::test_support::with_threads(t, || c.predict_dataset(&ds));
            assert_eq!(batch, serial, "FROTE_THREADS={t}");
        }
    }

    #[test]
    fn train_cache_sharded_plane_matches_encoded_and_truncates() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema);
        for i in 0..20 {
            ds.push_row(&[Value::Num(i as f64)], (i % 2) as u32).unwrap();
        }
        let mut cache = TrainCache::new();
        let encoded = cache.encoded(&ds).matrix().clone();
        let sharded = cache.sharded(&ds).matrix().to_matrix();
        assert_eq!(encoded, sharded, "sharded plane must mirror the encoded plane");
        ds.push_row(&[Value::Num(99.0)], 0).unwrap();
        cache.sharded(&ds);
        cache.truncate(20);
        assert_eq!(cache.sharded(&ds_prefix(&ds, 20)).matrix().n_rows(), 20);
    }

    fn ds_prefix(ds: &Dataset, rows: usize) -> Dataset {
        let mut out = Dataset::with_shared_schema(ds.schema_handle());
        for i in 0..rows {
            out.push_row(&ds.row(i), ds.label(i)).unwrap();
        }
        out
    }

    #[test]
    fn argmax_ties_low() {
        assert_eq!(argmax(&[0.5, 0.5]), 0);
        assert_eq!(argmax(&[0.1, 0.7, 0.2]), 1);
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn argmax_empty_panics() {
        argmax(&[]);
    }

    #[test]
    fn classifier_is_object_safe() {
        fn _take(_: &dyn Classifier) {}
        fn _take_alg(_: &dyn TrainAlgorithm) {}
    }
}
