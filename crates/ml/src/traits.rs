//! The black-box training contract FROTE assumes.

use frote_data::{Dataset, Value};

/// A trained classifier over raw (mixed-type) rows.
///
/// Implementations must be `Send + Sync` so models can be evaluated from
/// benchmark harnesses without ceremony.
pub trait Classifier: Send + Sync {
    /// Number of classes the model can emit.
    fn n_classes(&self) -> usize;

    /// Class probabilities for one row (sums to 1).
    fn predict_proba(&self, row: &[Value]) -> Vec<f64>;

    /// Hard prediction: the argmax of [`Classifier::predict_proba`] (ties to
    /// the lowest class). Implementations may override with a faster path.
    fn predict(&self, row: &[Value]) -> u32 {
        let p = self.predict_proba(row);
        argmax(&p)
    }

    /// Hard predictions for every row of a dataset.
    fn predict_dataset(&self, ds: &Dataset) -> Vec<u32> {
        (0..ds.n_rows()).map(|i| self.predict(&ds.row(i))).collect()
    }
}

/// A training algorithm: dataset in, classifier out (paper §3.2 treats it as
/// a black box, possibly proprietary).
pub trait TrainAlgorithm: Send + Sync {
    /// Trains a model on `ds`.
    ///
    /// # Panics
    ///
    /// Implementations panic on empty datasets — FROTE never trains on an
    /// empty `D̂` by construction.
    fn train(&self, ds: &Dataset) -> Box<dyn Classifier>;

    /// Short display name ("LR", "RF", "LGBM" in the paper's tables).
    fn name(&self) -> &str;
}

/// Argmax with ties to the lowest index.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub(crate) fn argmax(xs: &[f64]) -> u32 {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::{Schema, Value};

    struct Constant(u32, usize);
    impl Classifier for Constant {
        fn n_classes(&self) -> usize {
            self.1
        }
        fn predict_proba(&self, _row: &[Value]) -> Vec<f64> {
            let mut p = vec![0.0; self.1];
            p[self.0 as usize] = 1.0;
            p
        }
    }

    #[test]
    fn default_predict_is_argmax_of_proba() {
        let c = Constant(2, 4);
        assert_eq!(c.predict(&[]), 2);
    }

    #[test]
    fn predict_dataset_maps_rows() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Num(0.0)], 0).unwrap();
        ds.push_row(&[Value::Num(1.0)], 1).unwrap();
        let c = Constant(1, 2);
        assert_eq!(c.predict_dataset(&ds), vec![1, 1]);
    }

    #[test]
    fn argmax_ties_low() {
        assert_eq!(argmax(&[0.5, 0.5]), 0);
        assert_eq!(argmax(&[0.1, 0.7, 0.2]), 1);
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn argmax_empty_panics() {
        argmax(&[]);
    }

    #[test]
    fn classifier_is_object_safe() {
        fn _take(_: &dyn Classifier) {}
        fn _take_alg(_: &dyn TrainAlgorithm) {}
    }
}
