//! A ball tree for Euclidean k-NN over dense numeric vectors.
//!
//! The paper uses scikit-learn's `NearestNeighbors(algorithm="ball_tree")`;
//! this is the corresponding substrate. It indexes encoded points stored as
//! one flat [`FeatureMatrix`] — mixed-type rows go through
//! `frote_data::encode::Encoder` first — and answers k-nearest queries with
//! branch-and-bound pruning on ball bounds. Points are read as contiguous
//! `&[f64]` row views, so the query scan walks cache lines instead of
//! chasing a pointer per point.
//!
//! ```
//! use frote_ml::balltree::BallTree;
//! let pts = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![5.0, 5.0]];
//! let tree = BallTree::build(pts.into());
//! let hits = tree.k_nearest(&[0.9, 0.1], 2);
//! assert_eq!(hits[0].index, 1);
//! assert_eq!(hits[1].index, 0);
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use frote_data::FeatureMatrix;

use crate::kernels;
use crate::knn::Neighbor;

const LEAF_SIZE: usize = 16;

/// Subtrees at least this large are built as parallel fork-join pairs;
/// below it the spawn overhead outweighs the split work.
const PAR_BUILD_MIN: usize = 1024;

#[derive(Debug, Clone)]
enum NodeKind {
    Leaf {
        /// Range into `order`.
        start: usize,
        end: usize,
    },
    Internal {
        left: usize,
        right: usize,
    },
}

#[derive(Debug, Clone)]
struct Node {
    center: Vec<f64>,
    radius: f64,
    kind: NodeKind,
}

/// An immutable ball tree over owned points (flat row-major storage).
#[derive(Debug, Clone)]
pub struct BallTree {
    points: FeatureMatrix,
    order: Vec<usize>,
    nodes: Vec<Node>,
    root: usize,
}

impl BallTree {
    /// Builds a tree over `points` (`Vec<Vec<f64>>` converts via `.into()`).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn build(points: FeatureMatrix) -> Self {
        assert!(!points.is_empty(), "ball tree needs at least one point");
        let mut order: Vec<usize> = (0..points.n_rows()).collect();
        // Subtrees are built independently (in parallel when large enough)
        // and merged left ++ right ++ parent — exactly the post-order layout
        // the old sequential builder produced, so the tree is identical at
        // any thread count.
        let nodes = build_subtree(&points, &mut order, 0);
        let root = nodes.len() - 1;
        BallTree { points, order, nodes, root }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.n_rows()
    }

    /// Whether the tree is empty (never true post-build; kept for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `k` nearest points to `query`, ascending by distance (ties by
    /// index). Returns fewer than `k` if the tree is smaller.
    ///
    /// # Panics
    ///
    /// Panics if `query`'s dimension differs from the indexed points.
    pub fn k_nearest(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.points.width(), "query dimension mismatch");
        if k == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(k + 1);
        self.search(self.root, query, k, &mut heap);
        let mut out: Vec<Neighbor> = heap.into_iter().map(|h| h.0).collect();
        out.sort_by(|a, b| {
            a.distance.partial_cmp(&b.distance).expect("finite").then_with(|| a.index.cmp(&b.index))
        });
        out
    }

    /// [`BallTree::k_nearest`] for a batch of queries, answered in parallel
    /// across `frote_par::threads()` threads. Per-query results are
    /// identical to serial calls, in query order, at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if any query's dimension differs from the indexed points.
    pub fn k_nearest_batch(&self, queries: &FeatureMatrix, k: usize) -> Vec<Vec<Neighbor>> {
        frote_par::par_blocks_map(queries.n_rows(), 64, |_, rows| {
            rows.map(|i| self.k_nearest(queries.row(i), k)).collect()
        })
    }

    fn search(&self, node: usize, query: &[f64], k: usize, heap: &mut BinaryHeap<HeapItem>) {
        let n = &self.nodes[node];
        // Prune: the closest any point in this ball can be.
        let lower_bound = (euclid(query, &n.center) - n.radius).max(0.0);
        if heap.len() == k {
            if let Some(worst) = heap.peek() {
                if lower_bound >= worst.0.distance {
                    return;
                }
            }
        }
        match n.kind {
            NodeKind::Leaf { start, end } => {
                for &i in &self.order[start..end] {
                    let d = euclid(query, self.points.row(i));
                    heap.push(HeapItem(Neighbor { index: i, distance: d }));
                    if heap.len() > k {
                        heap.pop();
                    }
                }
            }
            NodeKind::Internal { left, right } => {
                // Visit the closer child first for better pruning.
                let dl = euclid(query, &self.nodes[left].center);
                let dr = euclid(query, &self.nodes[right].center);
                let (first, second) = if dl <= dr { (left, right) } else { (right, left) };
                self.search(first, query, k, heap);
                self.search(second, query, k, heap);
            }
        }
    }
}

/// Builds the subtree over `order` (a contiguous slice of the global order
/// array starting at global position `base`) and returns its nodes in
/// post-order: left subtree, right subtree, root last. Large subtrees build
/// their children in parallel via [`frote_par::join`]; the merged layout is
/// the same either way.
fn build_subtree(points: &FeatureMatrix, order: &mut [usize], base: usize) -> Vec<Node> {
    let center = centroid(points, order);
    let radius = order.iter().map(|&i| euclid(points.row(i), &center)).fold(0.0, f64::max);
    if order.len() <= LEAF_SIZE {
        return vec![Node {
            center,
            radius,
            kind: NodeKind::Leaf { start: base, end: base + order.len() },
        }];
    }
    // Split on the dimension with the largest spread, at the median.
    let dim = widest_dimension(points, order);
    let mid = order.len() / 2;
    order.select_nth_unstable_by(mid, |&a, &b| {
        points.row(a)[dim].partial_cmp(&points.row(b)[dim]).unwrap_or(Ordering::Equal)
    });
    let (left_order, right_order) = order.split_at_mut(mid);
    let (mut nodes, right) = if left_order.len().min(right_order.len()) >= PAR_BUILD_MIN {
        frote_par::join(
            || build_subtree(points, left_order, base),
            || build_subtree(points, right_order, base + mid),
        )
    } else {
        (build_subtree(points, left_order, base), build_subtree(points, right_order, base + mid))
    };
    let offset = nodes.len();
    nodes.reserve(right.len() + 1);
    for mut node in right {
        if let NodeKind::Internal { left, right } = &mut node.kind {
            *left += offset;
            *right += offset;
        }
        nodes.push(node);
    }
    let left_root = offset - 1;
    let right_root = nodes.len() - 1;
    nodes.push(Node {
        center,
        radius,
        kind: NodeKind::Internal { left: left_root, right: right_root },
    });
    nodes
}

fn centroid(points: &FeatureMatrix, order: &[usize]) -> Vec<f64> {
    let dim = points.width();
    let mut c = vec![0.0; dim];
    for &i in order {
        kernels::add_assign(&mut c, points.row(i));
    }
    let n = order.len() as f64;
    for x in &mut c {
        *x /= n;
    }
    c
}

fn widest_dimension(points: &FeatureMatrix, order: &[usize]) -> usize {
    let dim = points.width();
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    for &i in order {
        for (d, &x) in points.row(i).iter().enumerate() {
            lo[d] = lo[d].min(x);
            hi[d] = hi[d].max(x);
        }
    }
    let mut best = 0;
    let mut best_spread = f64::NEG_INFINITY;
    for (d, (&l, &h)) in lo.iter().zip(&hi).enumerate() {
        if h - l > best_spread {
            best_spread = h - l;
            best = d;
        }
    }
    best
}

struct HeapItem(Neighbor);

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.0.distance == other.0.distance && self.0.index == other.0.index
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .distance
            .partial_cmp(&other.0.distance)
            .expect("finite distances")
            .then_with(|| self.0.index.cmp(&other.0.index))
    }
}

/// Euclidean distance via the shared squared-distance kernel — both the
/// pruning bounds and the leaf scans run on it. Bit-identical to the naive
/// `Σ (a[i]−b[i])²` fold this file used before the kernel layer existed.
fn euclid(a: &[f64], b: &[f64]) -> f64 {
    kernels::sq_dist(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute(points: &[Vec<f64>], query: &[f64], k: usize) -> Vec<usize> {
        let mut d: Vec<(f64, usize)> =
            points.iter().enumerate().map(|(i, p)| (euclid(query, p), i)).collect();
        d.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        d.into_iter().take(k).map(|(_, i)| i).collect()
    }

    #[test]
    fn matches_brute_force_on_random_points() {
        let mut rng = StdRng::seed_from_u64(11);
        let points: Vec<Vec<f64>> =
            (0..500).map(|_| (0..4).map(|_| rng.random_range(-10.0..10.0)).collect()).collect();
        let tree = BallTree::build(points.clone().into());
        for _ in 0..50 {
            let q: Vec<f64> = (0..4).map(|_| rng.random_range(-10.0..10.0)).collect();
            let got: Vec<usize> = tree.k_nearest(&q, 7).iter().map(|h| h.index).collect();
            assert_eq!(got, brute(&points, &q, 7));
        }
    }

    #[test]
    fn large_tree_exercises_parallel_build_and_matches_brute() {
        // 3000 points crosses PAR_BUILD_MIN, so with FROTE_THREADS > 1 the
        // top splits build via join; results must match brute force either
        // way (the merged node layout is identical).
        let mut rng = StdRng::seed_from_u64(23);
        let points: Vec<Vec<f64>> =
            (0..3000).map(|_| (0..3).map(|_| rng.random_range(-5.0..5.0)).collect()).collect();
        let tree = BallTree::build(points.clone().into());
        for _ in 0..20 {
            let q: Vec<f64> = (0..3).map(|_| rng.random_range(-5.0..5.0)).collect();
            let got: Vec<usize> = tree.k_nearest(&q, 9).iter().map(|h| h.index).collect();
            assert_eq!(got, brute(&points, &q, 9));
        }
    }

    #[test]
    fn batch_queries_match_single_queries() {
        let mut rng = StdRng::seed_from_u64(5);
        let points: Vec<Vec<f64>> =
            (0..300).map(|_| (0..4).map(|_| rng.random_range(-10.0..10.0)).collect()).collect();
        let tree = BallTree::build(points.into());
        let queries: FeatureMatrix = (0..40)
            .map(|_| (0..4).map(|_| rng.random_range(-10.0..10.0)).collect())
            .collect::<Vec<Vec<f64>>>()
            .into();
        let batch = tree.k_nearest_batch(&queries, 5);
        assert_eq!(batch.len(), queries.n_rows());
        for (i, hits) in batch.iter().enumerate() {
            assert_eq!(hits, &tree.k_nearest(queries.row(i), 5));
        }
    }

    #[test]
    fn k_larger_than_tree() {
        let tree = BallTree::build(vec![vec![0.0], vec![1.0]].into());
        assert_eq!(tree.k_nearest(&[0.2], 10).len(), 2);
    }

    #[test]
    fn single_point_tree() {
        let tree = BallTree::build(vec![vec![3.0, 4.0]].into());
        let hits = tree.k_nearest(&[0.0, 0.0], 1);
        assert_eq!(hits[0].index, 0);
        assert!((hits[0].distance - 5.0).abs() < 1e-12);
        assert_eq!(tree.len(), 1);
        assert!(!tree.is_empty());
    }

    #[test]
    fn duplicate_points_all_returned() {
        let tree = BallTree::build(vec![vec![1.0]; 40].into());
        let hits = tree.k_nearest(&[1.0], 5);
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|h| h.distance == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_build_panics() {
        BallTree::build(FeatureMatrix::new(1));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn query_dim_mismatch_panics() {
        let tree = BallTree::build(vec![vec![0.0, 0.0]].into());
        tree.k_nearest(&[0.0], 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn batch_query_dim_mismatch_panics() {
        let tree = BallTree::build(vec![vec![0.0, 0.0]].into());
        tree.k_nearest_batch(&FeatureMatrix::from_rows(vec![vec![0.0]]), 1);
    }

    #[test]
    fn k_zero_returns_empty() {
        let tree = BallTree::build(vec![vec![0.0]].into());
        assert!(tree.k_nearest(&[0.0], 0).is_empty());
    }
}
