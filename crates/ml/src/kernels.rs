//! Blocked, autovectorizer-friendly `f64` kernels over contiguous slices —
//! the numeric inner loops shared by every model family.
//!
//! PR 3 put every hot structure on flat [`frote_data::FeatureMatrix`] rows;
//! this module is the compute half of that bargain: the innermost
//! arithmetic — dot products, squared distances, softmax, gradient
//! accumulation — lives here once, instead of being re-spelled at every
//! call site.
//!
//! ## Determinism contract
//!
//! Every kernel is **bit-identical to its naive sequential reference loop**
//! (pinned by `crates/ml/tests/prop_kernels.rs`), and therefore bit-identical
//! to the scalar code it replaced — rewiring a call site onto a kernel can
//! never move a golden hash. Concretely:
//!
//! - Reductions ([`dot`], [`sq_dist`], [`gather_sum`], [`logsumexp`]) fold
//!   left in element order. The 4-lane block structure applies to the
//!   *products*: the four multiplies of a block are independent (one SIMD
//!   multiply for the autovectorizer, four parallel scalar multiplies for
//!   the scheduler), while the adds keep the single sequential chain —
//!   `f64` addition is not associative, so a 4-accumulator reduction would
//!   reassociate the sum and break the byte-identical contract.
//! - Elementwise kernels ([`axpy`], [`grad_update`], [`add_assign`],
//!   [`sub_assign`], [`softmax_into`]) have no cross-element data flow at
//!   all, so the autovectorizer is free to use full-width SIMD without any
//!   ordering caveat.
//!
//! Parallel callers (the logistic-regression gradient, histogram builds)
//! get thread-count invariance on top by accumulating fixed-size blocks
//! with these kernels and reducing the per-block partials **in block
//! order** via [`add_assign`] — block boundaries depend only on the block
//! size, never on `FROTE_THREADS`.
//!
//! ## Adding a kernel
//!
//! 1. Write the naive scalar loop first; that loop *is* the semantics.
//! 2. Restructure for the autovectorizer (unroll products, keep sum chains)
//!    without reassociating any floating-point reduction.
//! 3. Pin `kernel == naive` bit-for-bit in `tests/prop_kernels.rs`
//!    (including the empty and length-1 cases) before rewiring call sites.

/// Elements per unrolled block. Four `f64`s fill one AVX2 register; the
/// value is a structural constant, not a tuning knob — changing it must not
/// (and cannot) change any kernel's result.
const LANES: usize = 4;

/// Dot product `Σ a[i]·b[i]`, folding left from `0.0` in element order.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    dot_from(0.0, a, b)
}

/// Dot product accumulated onto `init` — `init + Σ a[i]·b[i]` with the adds
/// folding left in element order, exactly like the naive loop
/// `let mut acc = init; for i { acc += a[i] * b[i]; }`. Scoring kernels use
/// this to fold a bias term into the chain without an extra reassociation.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
pub fn dot_from(init: f64, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot operands must share a length");
    let mut acc = init;
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (x, y) in ca.by_ref().zip(cb.by_ref()) {
        // Independent products, sequential adds: see the module docs.
        let p0 = x[0] * y[0];
        let p1 = x[1] * y[1];
        let p2 = x[2] * y[2];
        let p3 = x[3] * y[3];
        acc = acc + p0 + p1 + p2 + p3;
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        acc += x * y;
    }
    acc
}

/// Squared Euclidean distance `Σ (a[i] − b[i])²`, folding left from `0.0`
/// in element order.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_dist operands must share a length");
    let mut acc = 0.0;
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (x, y) in ca.by_ref().zip(cb.by_ref()) {
        let d0 = x[0] - y[0];
        let d1 = x[1] - y[1];
        let d2 = x[2] - y[2];
        let d3 = x[3] - y[3];
        acc = acc + d0 * d0 + d1 * d1 + d2 * d2 + d3 * d3;
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// `y[i] += alpha · x[i]` — the BLAS `axpy`. Purely elementwise, so the
/// autovectorizer emits full-width SIMD with no ordering caveat.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy operands must share a length");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Fused softmax-gradient accumulate: `g[j] += err · x[j]` for the feature
/// coefficients plus `g[last] += err` for the trailing bias slot, where
/// `err = p_c − 1[y = c]` at the call site. One call per class per row is
/// the whole inner loop of the logistic-regression fit.
///
/// # Panics
///
/// Panics unless `g.len() == x.len() + 1` (the bias slot).
pub fn grad_update(g: &mut [f64], err: f64, x: &[f64]) {
    assert_eq!(g.len(), x.len() + 1, "gradient row carries a trailing bias slot");
    let (coef, bias) = g.split_at_mut(x.len());
    axpy(err, x, coef);
    bias[0] += err;
}

/// `acc[i] += x[i]` — the fixed-order block reduction primitive: parallel
/// partials are merged by folding them into the accumulator in block order.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
pub fn add_assign(acc: &mut [f64], x: &[f64]) {
    assert_eq!(acc.len(), x.len(), "add_assign operands must share a length");
    for (a, &v) in acc.iter_mut().zip(x) {
        *a += v;
    }
}

/// `acc[i] -= x[i]` — sibling-histogram subtraction and friends.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
pub fn sub_assign(acc: &mut [f64], x: &[f64]) {
    assert_eq!(acc.len(), x.len(), "sub_assign operands must share a length");
    for (a, &v) in acc.iter_mut().zip(x) {
        *a -= v;
    }
}

/// Gather-sum `Σ xs[idx[i]]`, folding left from `0.0` in index order — the
/// residual/hessian sums of tree leaf values.
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn gather_sum(xs: &[f64], idx: &[usize]) -> f64 {
    let mut acc = 0.0;
    let mut ci = idx.chunks_exact(LANES);
    for c in ci.by_ref() {
        // Independent gathers, sequential adds.
        let g0 = xs[c[0]];
        let g1 = xs[c[1]];
        let g2 = xs[c[2]];
        let g3 = xs[c[3]];
        acc = acc + g0 + g1 + g2 + g3;
    }
    for &i in ci.remainder() {
        acc += xs[i];
    }
    acc
}

/// In-place numerically-stable softmax: subtract the max, exponentiate,
/// normalize. The op order (max fold, then one exp-and-sum pass, then one
/// divide pass) matches the scalar implementations this kernel replaced in
/// `logreg`, `gbdt`, and `naive_bayes` exactly.
pub fn softmax_in_place(out: &mut [f64]) {
    let max = out.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for o in out.iter_mut() {
        *o = (*o - max).exp();
        sum += *o;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
}

/// [`softmax_in_place`] of `scores`, written into `out`.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
pub fn softmax_into(scores: &[f64], out: &mut [f64]) {
    out.copy_from_slice(scores);
    softmax_in_place(out);
}

/// Numerically-stable `ln Σ exp(x[i])`: `max + ln Σ exp(x[i] − max)`, with
/// the sum folding left in element order. Returns `-inf` for an empty slice
/// (the sum of zero exponentials).
pub fn logsumexp(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max; // empty, or every term is -inf (exp underflows to 0)
    }
    let mut sum = 0.0;
    for &x in xs {
        sum += (x - max).exp();
    }
    max + sum.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known_values() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0, 4.0, 5.0], &[1.0; 5]), 15.0);
        assert_eq!(dot_from(10.0, &[1.0, 2.0], &[3.0, 4.0]), 21.0);
    }

    #[test]
    fn sq_dist_known_values() {
        assert_eq!(sq_dist(&[], &[]), 0.0);
        assert_eq!(sq_dist(&[0.0, 3.0], &[4.0, 0.0]), 25.0);
        assert_eq!(sq_dist(&[1.0; 9], &[1.0; 9]), 0.0);
    }

    #[test]
    fn axpy_and_grad_update() {
        let mut y = vec![1.0, 2.0, 3.0];
        axpy(2.0, &[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 4.0, 5.0]);
        let mut g = vec![0.0; 4];
        grad_update(&mut g, 0.5, &[2.0, 4.0, 6.0]);
        assert_eq!(g, vec![1.0, 2.0, 3.0, 0.5], "bias slot last");
    }

    #[test]
    fn add_sub_assign_round_trip() {
        let mut acc = vec![1.0, 2.0];
        add_assign(&mut acc, &[3.0, 4.0]);
        assert_eq!(acc, vec![4.0, 6.0]);
        sub_assign(&mut acc, &[3.0, 4.0]);
        assert_eq!(acc, vec![1.0, 2.0]);
    }

    #[test]
    fn gather_sum_follows_index_order() {
        let xs = [1.0, 10.0, 100.0, 1000.0, 10000.0];
        assert_eq!(gather_sum(&xs, &[]), 0.0);
        assert_eq!(gather_sum(&xs, &[4, 0, 2, 1, 3]), 11111.0);
        assert_eq!(gather_sum(&xs, &[1, 1, 1]), 30.0, "duplicates count");
    }

    #[test]
    fn softmax_normalizes_and_is_shift_invariant() {
        let mut out = vec![0.0; 3];
        softmax_into(&[1.0, 2.0, 3.0], &mut out);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(out[2] > out[1] && out[1] > out[0]);
        let mut shifted = vec![0.0; 3];
        softmax_into(&[1001.0, 1002.0, 1003.0], &mut shifted);
        for (a, b) in out.iter().zip(&shifted) {
            assert_eq!(a.to_bits(), b.to_bits(), "max subtraction makes shifts exact");
        }
    }

    #[test]
    fn logsumexp_stable_and_edge_cases() {
        assert_eq!(logsumexp(&[]), f64::NEG_INFINITY);
        assert_eq!(logsumexp(&[f64::NEG_INFINITY; 3]), f64::NEG_INFINITY);
        assert!((logsumexp(&[0.0, 0.0]) - 2.0f64.ln()).abs() < 1e-12);
        // Stability: inputs far outside exp's range still finite.
        let l = logsumexp(&[1000.0, 1000.0]);
        assert!((l - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "share a length")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "trailing bias slot")]
    fn grad_update_without_bias_slot_panics() {
        grad_update(&mut [0.0; 3], 1.0, &[1.0; 3]);
    }
}
