//! Mixed-type distances for nearest-neighbour search.
//!
//! SMOTE-NC (Chawla et al. 2002, §6.1) measures distance on mixed data as
//! Euclidean over numeric features with a constant penalty — the *median of
//! the standard deviations of the numeric features* — for every differing
//! nominal feature. [`MixedDistance`] implements exactly that, plus a
//! HEOM-style variant that range-normalizes numeric differences, which is
//! better behaved on all-nominal datasets (where the SMOTE-NC median-std
//! penalty degenerates to 0).

use frote_data::stats::DatasetStats;
use frote_data::{Dataset, Value};

/// Which mixed-distance formula to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MixedMetric {
    /// SMOTE-NC: raw numeric differences, median-numeric-std penalty per
    /// nominal mismatch. Falls back to penalty `1.0` when the dataset has no
    /// numeric features.
    #[default]
    SmoteNc,
    /// HEOM: range-normalized numeric differences, penalty `1.0` per nominal
    /// mismatch.
    Heom,
}

/// A fitted mixed-type distance.
#[derive(Debug, Clone)]
pub struct MixedDistance {
    metric: MixedMetric,
    /// Per-feature scale: numeric features get `Some(scale)` (divisor for
    /// differences under HEOM, 1.0 under SMOTE-NC), categorical get `None`.
    numeric_scale: Vec<Option<f64>>,
    nominal_penalty: f64,
}

impl MixedDistance {
    /// Fits the distance to `ds` under `metric`.
    pub fn fit(ds: &Dataset, metric: MixedMetric) -> Self {
        let stats = DatasetStats::of(ds);
        let mut numeric_scale = Vec::with_capacity(ds.n_features());
        for j in 0..ds.n_features() {
            numeric_scale.push(stats.numeric(j).map(|s| match metric {
                MixedMetric::SmoteNc => 1.0,
                MixedMetric::Heom => {
                    if s.range() > 0.0 {
                        s.range()
                    } else {
                        1.0
                    }
                }
            }));
        }
        let nominal_penalty = match metric {
            MixedMetric::SmoteNc => {
                let m = stats.median_numeric_std();
                if m > 0.0 {
                    m
                } else {
                    1.0
                }
            }
            MixedMetric::Heom => 1.0,
        };
        MixedDistance { metric, numeric_scale, nominal_penalty }
    }

    /// The metric this instance was fitted with.
    pub fn metric(&self) -> MixedMetric {
        self.metric
    }

    /// The per-nominal-mismatch penalty in use.
    pub fn nominal_penalty(&self) -> f64 {
        self.nominal_penalty
    }

    /// Distance between two rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows' arity or kinds do not match the fitted dataset.
    pub fn distance(&self, a: &[Value], b: &[Value]) -> f64 {
        assert_eq!(a.len(), self.numeric_scale.len(), "row arity mismatch");
        assert_eq!(b.len(), self.numeric_scale.len(), "row arity mismatch");
        let mut acc = 0.0;
        for (j, scale) in self.numeric_scale.iter().enumerate() {
            match (scale, a[j], b[j]) {
                (Some(s), Value::Num(x), Value::Num(y)) => {
                    let d = (x - y) / s;
                    acc += d * d;
                }
                (None, Value::Cat(x), Value::Cat(y)) => {
                    if x != y {
                        acc += self.nominal_penalty * self.nominal_penalty;
                    }
                }
                _ => panic!("row kind mismatch at feature {j}"),
            }
        }
        acc.sqrt()
    }

    /// Distance between a materialized `query` row and row `i` of `ds`,
    /// read straight from the columnar store (avoids materializing the
    /// dataset row). Bit-identical to `distance(query, &ds.row(i))`.
    ///
    /// # Panics
    ///
    /// Panics if `query`'s arity or kinds do not match the fitted dataset.
    pub fn distance_to_row(&self, query: &[Value], ds: &Dataset, i: usize) -> f64 {
        assert_eq!(query.len(), self.numeric_scale.len(), "row arity mismatch");
        let mut acc = 0.0;
        for (j, scale) in self.numeric_scale.iter().enumerate() {
            match (scale, query[j], ds.cell(i, j)) {
                (Some(s), Value::Num(x), Value::Num(y)) => {
                    let d = (x - y) / s;
                    acc += d * d;
                }
                (None, Value::Cat(x), Value::Cat(y)) => {
                    if x != y {
                        acc += self.nominal_penalty * self.nominal_penalty;
                    }
                }
                _ => panic!("row kind mismatch at feature {j}"),
            }
        }
        acc.sqrt()
    }

    /// Distance between two rows of `ds` by index (avoids materializing
    /// rows).
    pub fn distance_between(&self, ds: &Dataset, i: usize, j: usize) -> f64 {
        let mut acc = 0.0;
        for (f, scale) in self.numeric_scale.iter().enumerate() {
            match (scale, ds.value(i, f), ds.value(j, f)) {
                (Some(s), Value::Num(x), Value::Num(y)) => {
                    let d = (x - y) / s;
                    acc += d * d;
                }
                (None, Value::Cat(x), Value::Cat(y)) => {
                    if x != y {
                        acc += self.nominal_penalty * self.nominal_penalty;
                    }
                }
                _ => unreachable!("dataset columns are internally consistent"),
            }
        }
        acc.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::{Schema, Value};

    fn mixed_ds() -> Dataset {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .numeric("x")
            .categorical("k", vec!["p".into(), "q".into()])
            .build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Num(0.0), Value::Cat(0)], 0).unwrap();
        ds.push_row(&[Value::Num(2.0), Value::Cat(0)], 0).unwrap();
        ds.push_row(&[Value::Num(4.0), Value::Cat(1)], 1).unwrap();
        ds
    }

    #[test]
    fn smotenc_penalty_is_median_std() {
        let ds = mixed_ds();
        let d = MixedDistance::fit(&ds, MixedMetric::SmoteNc);
        // std of [0,2,4] is sqrt(8/3)
        let expected = (8.0f64 / 3.0).sqrt();
        assert!((d.nominal_penalty() - expected).abs() < 1e-12);
        // distance rows 0 and 2: numeric diff 4, nominal mismatch
        let got = d.distance_between(&ds, 0, 2);
        assert!((got - (16.0 + expected * expected).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn heom_normalizes_by_range() {
        let ds = mixed_ds();
        let d = MixedDistance::fit(&ds, MixedMetric::Heom);
        assert_eq!(d.nominal_penalty(), 1.0);
        // rows 0,2: numeric diff 4 / range 4 = 1; nominal mismatch 1.
        assert!((d.distance_between(&ds, 0, 2) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn identity_and_symmetry() {
        let ds = mixed_ds();
        for metric in [MixedMetric::SmoteNc, MixedMetric::Heom] {
            let d = MixedDistance::fit(&ds, metric);
            for i in 0..3 {
                assert_eq!(d.distance_between(&ds, i, i), 0.0);
                for j in 0..3 {
                    let a = d.distance_between(&ds, i, j);
                    let b = d.distance_between(&ds, j, i);
                    assert!((a - b).abs() < 1e-15);
                }
            }
        }
    }

    #[test]
    fn all_nominal_falls_back_to_unit_penalty() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .categorical("k", vec!["p".into(), "q".into()])
            .build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Cat(0)], 0).unwrap();
        ds.push_row(&[Value::Cat(1)], 1).unwrap();
        let d = MixedDistance::fit(&ds, MixedMetric::SmoteNc);
        assert_eq!(d.nominal_penalty(), 1.0);
        assert_eq!(d.distance_between(&ds, 0, 1), 1.0);
    }

    #[test]
    fn distance_on_materialized_rows_matches_indexed() {
        let ds = mixed_ds();
        let d = MixedDistance::fit(&ds, MixedMetric::SmoteNc);
        let a = ds.row(0);
        let b = ds.row(2);
        assert!((d.distance(&a, &b) - d.distance_between(&ds, 0, 2)).abs() < 1e-15);
        assert_eq!(
            d.distance(&a, &b),
            d.distance_to_row(&a, &ds, 2),
            "query-vs-index must be exact"
        );
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let ds = mixed_ds();
        let d = MixedDistance::fit(&ds, MixedMetric::Heom);
        d.distance(&[Value::Num(0.0)], &[Value::Num(1.0)]);
    }
}
