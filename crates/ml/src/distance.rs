//! Mixed-type distances for nearest-neighbour search.
//!
//! SMOTE-NC (Chawla et al. 2002, §6.1) measures distance on mixed data as
//! Euclidean over numeric features with a constant penalty — the *median of
//! the standard deviations of the numeric features* — for every differing
//! nominal feature. [`MixedDistance`] implements exactly that, plus a
//! HEOM-style variant that range-normalizes numeric differences, which is
//! better behaved on all-nominal datasets (where the SMOTE-NC median-std
//! penalty degenerates to 0).

use frote_data::stats::DatasetStats;
use frote_data::{Column, Dataset, Value};

/// Which mixed-distance formula to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MixedMetric {
    /// SMOTE-NC: raw numeric differences, median-numeric-std penalty per
    /// nominal mismatch. Falls back to penalty `1.0` when the dataset has no
    /// numeric features.
    #[default]
    SmoteNc,
    /// HEOM: range-normalized numeric differences, penalty `1.0` per nominal
    /// mismatch.
    Heom,
}

/// One feature's step of the fitted distance plan, in schema order.
/// Splitting the plan by kind at fit time lets the hot loops read typed
/// column slices directly instead of matching a [`Value`] per cell.
#[derive(Debug, Clone, Copy)]
enum FeatStep {
    /// Numeric feature: accumulate `((x − y) / scale)²`.
    Num { feature: usize, scale: f64 },
    /// Categorical feature: accumulate `penalty²` on mismatch.
    Cat { feature: usize },
}

/// A fitted mixed-type distance.
#[derive(Debug, Clone)]
pub struct MixedDistance {
    metric: MixedMetric,
    /// Per-feature steps in schema order — the accumulation order is part
    /// of the byte-identical contract, so the plan never reorders features.
    plan: Vec<FeatStep>,
    nominal_penalty: f64,
}

impl MixedDistance {
    /// Fits the distance to `ds` under `metric`.
    pub fn fit(ds: &Dataset, metric: MixedMetric) -> Self {
        let stats = DatasetStats::of(ds);
        let mut plan = Vec::with_capacity(ds.n_features());
        for j in 0..ds.n_features() {
            plan.push(match stats.numeric(j) {
                Some(s) => {
                    let scale = match metric {
                        MixedMetric::SmoteNc => 1.0,
                        MixedMetric::Heom => {
                            if s.range() > 0.0 {
                                s.range()
                            } else {
                                1.0
                            }
                        }
                    };
                    FeatStep::Num { feature: j, scale }
                }
                None => FeatStep::Cat { feature: j },
            });
        }
        let nominal_penalty = match metric {
            MixedMetric::SmoteNc => {
                let m = stats.median_numeric_std();
                if m > 0.0 {
                    m
                } else {
                    1.0
                }
            }
            MixedMetric::Heom => 1.0,
        };
        MixedDistance { metric, plan, nominal_penalty }
    }

    /// The metric this instance was fitted with.
    pub fn metric(&self) -> MixedMetric {
        self.metric
    }

    /// The per-nominal-mismatch penalty in use.
    pub fn nominal_penalty(&self) -> f64 {
        self.nominal_penalty
    }

    /// Distance between two rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows' arity or kinds do not match the fitted dataset.
    pub fn distance(&self, a: &[Value], b: &[Value]) -> f64 {
        assert_eq!(a.len(), self.plan.len(), "row arity mismatch");
        assert_eq!(b.len(), self.plan.len(), "row arity mismatch");
        let pp = self.nominal_penalty * self.nominal_penalty;
        let mut acc = 0.0;
        for step in &self.plan {
            match *step {
                FeatStep::Num { feature, scale } => match (a[feature], b[feature]) {
                    (Value::Num(x), Value::Num(y)) => {
                        let d = (x - y) / scale;
                        acc += d * d;
                    }
                    _ => panic!("row kind mismatch at feature {feature}"),
                },
                FeatStep::Cat { feature } => match (a[feature], b[feature]) {
                    (Value::Cat(x), Value::Cat(y)) => {
                        if x != y {
                            acc += pp;
                        }
                    }
                    _ => panic!("row kind mismatch at feature {feature}"),
                },
            }
        }
        acc.sqrt()
    }

    /// Distance between a materialized `query` row and row `i` of `ds`,
    /// read straight from the columnar store (avoids materializing the
    /// dataset row). Bit-identical to `distance(query, &ds.row(i))`.
    ///
    /// # Panics
    ///
    /// Panics if `query`'s arity or kinds do not match the fitted dataset.
    pub fn distance_to_row(&self, query: &[Value], ds: &Dataset, i: usize) -> f64 {
        assert_eq!(query.len(), self.plan.len(), "row arity mismatch");
        let pp = self.nominal_penalty * self.nominal_penalty;
        let mut acc = 0.0;
        for step in &self.plan {
            match *step {
                FeatStep::Num { feature, scale } => {
                    let (Value::Num(x), Column::Numeric(col)) =
                        (query[feature], ds.column(feature))
                    else {
                        panic!("row kind mismatch at feature {feature}");
                    };
                    let d = (x - col[i]) / scale;
                    acc += d * d;
                }
                FeatStep::Cat { feature } => {
                    let (Value::Cat(x), Column::Categorical(col)) =
                        (query[feature], ds.column(feature))
                    else {
                        panic!("row kind mismatch at feature {feature}");
                    };
                    if x != col[i] {
                        acc += pp;
                    }
                }
            }
        }
        acc.sqrt()
    }

    /// Distance between two rows of `ds` by index (avoids materializing
    /// rows).
    pub fn distance_between(&self, ds: &Dataset, i: usize, j: usize) -> f64 {
        let pp = self.nominal_penalty * self.nominal_penalty;
        let mut acc = 0.0;
        for step in &self.plan {
            match *step {
                FeatStep::Num { feature, scale } => match ds.column(feature) {
                    Column::Numeric(col) => {
                        let d = (col[i] - col[j]) / scale;
                        acc += d * d;
                    }
                    Column::Categorical(_) => {
                        unreachable!("dataset columns are internally consistent")
                    }
                },
                FeatStep::Cat { feature } => match ds.column(feature) {
                    Column::Categorical(col) => {
                        if col[i] != col[j] {
                            acc += pp;
                        }
                    }
                    Column::Numeric(_) => {
                        unreachable!("dataset columns are internally consistent")
                    }
                },
            }
        }
        acc.sqrt()
    }

    /// Squared distances from `query` to every candidate row, written into
    /// `out` (`out[p]` for `candidates[p]`) — the block form of
    /// [`MixedDistance::distance_to_row`] the kNN scans run on. One pass per
    /// feature streams the typed column while the candidate accumulators
    /// stay contiguous, so the numeric passes autovectorize; categorical
    /// passes compare codes scalar-wise. Each accumulator folds features in
    /// schema order, making every `out[p]` bit-identical to
    /// `distance_to_row(query, ds, candidates[p])²` before its square root.
    ///
    /// # Panics
    ///
    /// Panics if `query`'s arity or kinds do not match the fitted dataset.
    pub fn mixed_sq_dist_block(
        &self,
        ds: &Dataset,
        query: &[Value],
        candidates: &[usize],
        out: &mut Vec<f64>,
    ) {
        assert_eq!(query.len(), self.plan.len(), "row arity mismatch");
        let pp = self.nominal_penalty * self.nominal_penalty;
        out.clear();
        out.resize(candidates.len(), 0.0);
        for step in &self.plan {
            match *step {
                FeatStep::Num { feature, scale } => {
                    let (Value::Num(x), Column::Numeric(col)) =
                        (query[feature], ds.column(feature))
                    else {
                        panic!("row kind mismatch at feature {feature}");
                    };
                    for (acc, &c) in out.iter_mut().zip(candidates) {
                        let d = (x - col[c]) / scale;
                        *acc += d * d;
                    }
                }
                FeatStep::Cat { feature } => {
                    let (Value::Cat(x), Column::Categorical(col)) =
                        (query[feature], ds.column(feature))
                    else {
                        panic!("row kind mismatch at feature {feature}");
                    };
                    for (acc, &c) in out.iter_mut().zip(candidates) {
                        if x != col[c] {
                            *acc += pp;
                        }
                    }
                }
            }
        }
    }

    /// [`MixedDistance::mixed_sq_dist_block`] with row `i` of `ds` as the
    /// query — the block form of [`MixedDistance::distance_between`].
    pub fn mixed_sq_dist_block_rows(
        &self,
        ds: &Dataset,
        i: usize,
        candidates: &[usize],
        out: &mut Vec<f64>,
    ) {
        let pp = self.nominal_penalty * self.nominal_penalty;
        out.clear();
        out.resize(candidates.len(), 0.0);
        for step in &self.plan {
            match *step {
                FeatStep::Num { feature, scale } => match ds.column(feature) {
                    Column::Numeric(col) => {
                        let x = col[i];
                        for (acc, &c) in out.iter_mut().zip(candidates) {
                            let d = (x - col[c]) / scale;
                            *acc += d * d;
                        }
                    }
                    Column::Categorical(_) => {
                        unreachable!("dataset columns are internally consistent")
                    }
                },
                FeatStep::Cat { feature } => match ds.column(feature) {
                    Column::Categorical(col) => {
                        let x = col[i];
                        for (acc, &c) in out.iter_mut().zip(candidates) {
                            if x != col[c] {
                                *acc += pp;
                            }
                        }
                    }
                    Column::Numeric(_) => {
                        unreachable!("dataset columns are internally consistent")
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::{Schema, Value};

    fn mixed_ds() -> Dataset {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .numeric("x")
            .categorical("k", vec!["p".into(), "q".into()])
            .build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Num(0.0), Value::Cat(0)], 0).unwrap();
        ds.push_row(&[Value::Num(2.0), Value::Cat(0)], 0).unwrap();
        ds.push_row(&[Value::Num(4.0), Value::Cat(1)], 1).unwrap();
        ds
    }

    #[test]
    fn smotenc_penalty_is_median_std() {
        let ds = mixed_ds();
        let d = MixedDistance::fit(&ds, MixedMetric::SmoteNc);
        // std of [0,2,4] is sqrt(8/3)
        let expected = (8.0f64 / 3.0).sqrt();
        assert!((d.nominal_penalty() - expected).abs() < 1e-12);
        // distance rows 0 and 2: numeric diff 4, nominal mismatch
        let got = d.distance_between(&ds, 0, 2);
        assert!((got - (16.0 + expected * expected).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn heom_normalizes_by_range() {
        let ds = mixed_ds();
        let d = MixedDistance::fit(&ds, MixedMetric::Heom);
        assert_eq!(d.nominal_penalty(), 1.0);
        // rows 0,2: numeric diff 4 / range 4 = 1; nominal mismatch 1.
        assert!((d.distance_between(&ds, 0, 2) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn identity_and_symmetry() {
        let ds = mixed_ds();
        for metric in [MixedMetric::SmoteNc, MixedMetric::Heom] {
            let d = MixedDistance::fit(&ds, metric);
            for i in 0..3 {
                assert_eq!(d.distance_between(&ds, i, i), 0.0);
                for j in 0..3 {
                    let a = d.distance_between(&ds, i, j);
                    let b = d.distance_between(&ds, j, i);
                    assert!((a - b).abs() < 1e-15);
                }
            }
        }
    }

    #[test]
    fn all_nominal_falls_back_to_unit_penalty() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .categorical("k", vec!["p".into(), "q".into()])
            .build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Cat(0)], 0).unwrap();
        ds.push_row(&[Value::Cat(1)], 1).unwrap();
        let d = MixedDistance::fit(&ds, MixedMetric::SmoteNc);
        assert_eq!(d.nominal_penalty(), 1.0);
        assert_eq!(d.distance_between(&ds, 0, 1), 1.0);
    }

    #[test]
    fn distance_on_materialized_rows_matches_indexed() {
        let ds = mixed_ds();
        let d = MixedDistance::fit(&ds, MixedMetric::SmoteNc);
        let a = ds.row(0);
        let b = ds.row(2);
        assert!((d.distance(&a, &b) - d.distance_between(&ds, 0, 2)).abs() < 1e-15);
        assert_eq!(
            d.distance(&a, &b),
            d.distance_to_row(&a, &ds, 2),
            "query-vs-index must be exact"
        );
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let ds = mixed_ds();
        let d = MixedDistance::fit(&ds, MixedMetric::Heom);
        d.distance(&[Value::Num(0.0)], &[Value::Num(1.0)]);
    }

    #[test]
    fn block_kernels_match_per_pair_distances_bit_for_bit() {
        let ds = mixed_ds();
        let all: Vec<usize> = (0..ds.n_rows()).collect();
        let mut sq = Vec::new();
        for metric in [MixedMetric::SmoteNc, MixedMetric::Heom] {
            let d = MixedDistance::fit(&ds, metric);
            for i in 0..ds.n_rows() {
                d.mixed_sq_dist_block_rows(&ds, i, &all, &mut sq);
                for (&j, &dd) in all.iter().zip(&sq) {
                    let single = d.distance_between(&ds, i, j);
                    assert_eq!(dd.sqrt().to_bits(), single.to_bits(), "rows {i},{j} {metric:?}");
                }
                let query = ds.row(i);
                d.mixed_sq_dist_block(&ds, &query, &all, &mut sq);
                for (&j, &dd) in all.iter().zip(&sq) {
                    let single = d.distance_to_row(&query, &ds, j);
                    assert_eq!(dd.sqrt().to_bits(), single.to_bits(), "query {i} row {j}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "kind mismatch at feature 0")]
    fn block_query_kind_mismatch_panics() {
        let ds = mixed_ds();
        let d = MixedDistance::fit(&ds, MixedMetric::SmoteNc);
        let mut out = Vec::new();
        d.mixed_sq_dist_block(&ds, &[Value::Cat(0), Value::Cat(0)], &[0], &mut out);
    }
}
