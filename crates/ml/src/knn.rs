//! Brute-force k-nearest-neighbour search over mixed-type rows.
//!
//! FROTE's generator looks up neighbours *within a rule's base population*
//! (not the whole dataset), so candidate sets are typically small and a
//! linear scan with a bounded max-heap is both simple and fast. For large
//! all-numeric candidate sets, [`crate::balltree::BallTree`] provides a
//! sublinear alternative.
//!
//! When the sharded data plane is active (see [`frote_data::sharded`]),
//! candidate lists are partitioned into shard runs, each run scanned for a
//! local top-`k` in parallel, and the locals merged globally. Every
//! candidate's distance is computed independently and the `(distance,
//! index)` ordering is total, so the global top-`k` is
//! selection-order-independent — per-shard results are bitwise identical to
//! the flat scan at any shard size and thread count.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use frote_data::{Dataset, Value};

use crate::distance::MixedDistance;
use crate::histogram::SHARD_MERGES;

/// One neighbour hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row index (into the dataset the query ran over).
    pub index: usize,
    /// Distance to the query.
    pub distance: f64,
}

/// Max-heap entry ordered by distance.
struct HeapItem(Neighbor);

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.0.distance == other.0.distance
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .distance
            .partial_cmp(&other.0.distance)
            .expect("distances are finite")
            .then_with(|| self.0.index.cmp(&other.0.index))
    }
}

/// Candidates per distance block: squared distances for a whole block are
/// computed feature-major by [`MixedDistance::mixed_sq_dist_block`] before
/// any heap bookkeeping. Block boundaries never affect results — every
/// candidate's accumulator folds features in the same order regardless.
const SCAN_BLOCK: usize = 256;

/// Finds the `k` nearest rows to `query` among `candidates` (row indices of
/// `ds`), excluding any candidate equal to `exclude` (pass `usize::MAX` to
/// keep all).
///
/// Results are sorted by ascending distance, ties by ascending index.
/// Returns fewer than `k` when there are fewer candidates.
pub fn k_nearest(
    ds: &Dataset,
    query: &[Value],
    candidates: &[usize],
    k: usize,
    exclude: usize,
    dist: &MixedDistance,
) -> Vec<Neighbor> {
    // Candidate rows are read straight from the columnar store by the block
    // kernel; neither side of the comparison materializes a row.
    scan(candidates, k, exclude, |chunk, out| dist.mixed_sq_dist_block(ds, query, chunk, out))
}

/// Convenience: neighbours of row `i` of `ds` among `candidates`, excluding
/// itself. Fully index-based — no row is ever materialized.
pub fn k_nearest_of_row(
    ds: &Dataset,
    i: usize,
    candidates: &[usize],
    k: usize,
    dist: &MixedDistance,
) -> Vec<Neighbor> {
    scan(candidates, k, i, |chunk, out| dist.mixed_sq_dist_block_rows(ds, i, chunk, out))
}

/// The shared scan entry: flat bounded-heap scan for a single shard run,
/// or per-shard local scans merged globally when candidates span shards.
fn scan(
    candidates: &[usize],
    k: usize,
    exclude: usize,
    block_sq_dists: impl Fn(&[usize], &mut Vec<f64>) + Sync,
) -> Vec<Neighbor> {
    let runs = frote_data::sharded::shard_runs(candidates, frote_data::sharded::shard_rows());
    if runs.len() <= 1 {
        return scan_run(candidates, k, exclude, &block_sq_dists);
    }
    // Each run's local top-k keeps every candidate that could make the
    // global top-k; the merge then just re-ranks under the same total
    // `(distance, index)` order the flat scan uses.
    let per_run = frote_par::par_map(&runs, |(_, range)| {
        scan_run(&candidates[range.clone()], k, exclude, &block_sq_dists)
    });
    let mut per_run = per_run.into_iter();
    let mut all = per_run.next().unwrap_or_default();
    for hits in per_run {
        SHARD_MERGES.inc();
        all.extend(hits);
    }
    all.sort_by(|a, b| {
        a.distance.partial_cmp(&b.distance).expect("finite").then_with(|| a.index.cmp(&b.index))
    });
    all.truncate(k);
    all
}

/// One shard run's bounded-heap scan: squared distances arrive per block
/// from the mixed-distance kernel, take their square root (so ordering and
/// ties match the historical per-candidate scan bit for bit), and feed the
/// max-heap in candidate order.
fn scan_run(
    candidates: &[usize],
    k: usize,
    exclude: usize,
    block_sq_dists: impl Fn(&[usize], &mut Vec<f64>),
) -> Vec<Neighbor> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(k + 1);
    let mut sq = Vec::with_capacity(SCAN_BLOCK.min(candidates.len()));
    for chunk in candidates.chunks(SCAN_BLOCK) {
        block_sq_dists(chunk, &mut sq);
        for (&c, &dd) in chunk.iter().zip(&sq) {
            if c == exclude {
                continue;
            }
            heap.push(HeapItem(Neighbor { index: c, distance: dd.sqrt() }));
            if heap.len() > k {
                heap.pop();
            }
        }
    }
    let mut out: Vec<Neighbor> = heap.into_iter().map(|h| h.0).collect();
    out.sort_by(|a, b| {
        a.distance.partial_cmp(&b.distance).expect("finite").then_with(|| a.index.cmp(&b.index))
    });
    out
}

/// [`k_nearest_of_row`] for a batch of query rows, scanned in parallel
/// across `frote_par::threads()` threads. Per-row results are identical to
/// serial calls, in `rows` order, at any thread count.
pub fn k_nearest_of_rows(
    ds: &Dataset,
    rows: &[usize],
    candidates: &[usize],
    k: usize,
    dist: &MixedDistance,
) -> Vec<Vec<Neighbor>> {
    frote_par::par_map(rows, |&i| k_nearest_of_row(ds, i, candidates, k, dist))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::MixedMetric;
    use frote_data::{Schema, Value};

    fn line_ds(n: usize) -> Dataset {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema);
        for i in 0..n {
            ds.push_row(&[Value::Num(i as f64)], (i % 2) as u32).unwrap();
        }
        ds
    }

    #[test]
    fn finds_closest_on_a_line() {
        let ds = line_ds(10);
        let dist = MixedDistance::fit(&ds, MixedMetric::SmoteNc);
        let all: Vec<usize> = (0..10).collect();
        let hits = k_nearest_of_row(&ds, 5, &all, 3, &dist);
        let idx: Vec<usize> = hits.iter().map(|h| h.index).collect();
        assert_eq!(idx, vec![4, 6, 3]); // dist 1,1,2 — tie 4/6 broken by index
        assert!(hits[0].distance <= hits[1].distance);
        assert!(hits[1].distance <= hits[2].distance);
    }

    #[test]
    fn respects_candidate_subset() {
        let ds = line_ds(10);
        let dist = MixedDistance::fit(&ds, MixedMetric::SmoteNc);
        let cands = vec![0, 9];
        let hits = k_nearest_of_row(&ds, 5, &cands, 5, &dist);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].index, 9); // |5-9|=4 < |5-0|=5
    }

    #[test]
    fn excludes_self() {
        let ds = line_ds(5);
        let dist = MixedDistance::fit(&ds, MixedMetric::SmoteNc);
        let all: Vec<usize> = (0..5).collect();
        let hits = k_nearest_of_row(&ds, 2, &all, 10, &dist);
        assert_eq!(hits.len(), 4);
        assert!(hits.iter().all(|h| h.index != 2));
    }

    #[test]
    fn k_zero_and_empty_candidates() {
        let ds = line_ds(5);
        let dist = MixedDistance::fit(&ds, MixedMetric::SmoteNc);
        assert!(k_nearest_of_row(&ds, 0, &[1, 2], 0, &dist).is_empty());
        assert!(k_nearest_of_row(&ds, 0, &[], 3, &dist).is_empty());
    }

    #[test]
    fn batch_rows_match_single_rows() {
        let ds = line_ds(30);
        let dist = MixedDistance::fit(&ds, MixedMetric::SmoteNc);
        let all: Vec<usize> = (0..30).collect();
        let rows: Vec<usize> = vec![0, 7, 15, 29];
        let batch = k_nearest_of_rows(&ds, &rows, &all, 4, &dist);
        assert_eq!(batch.len(), rows.len());
        for (&i, hits) in rows.iter().zip(&batch) {
            assert_eq!(hits, &k_nearest_of_row(&ds, i, &all, 4, &dist));
        }
    }

    #[test]
    fn sharded_scan_matches_flat_scan() {
        let ds = line_ds(200);
        let dist = MixedDistance::fit(&ds, MixedMetric::SmoteNc);
        // Unsorted candidates with duplicates across shard boundaries.
        let cands: Vec<usize> = (0..200).rev().chain(0..50).collect();
        for (query, k) in [(0usize, 5), (100, 7), (199, 200)] {
            let flat = k_nearest_of_row(&ds, query, &cands, k, &dist);
            for shard_rows in [64usize, 4096] {
                for threads in [1usize, 2, 4] {
                    let sharded = frote_par::test_support::with_threads(threads, || {
                        frote_data::sharded::test_support::with_shard_rows(shard_rows, || {
                            k_nearest_of_row(&ds, query, &cands, k, &dist)
                        })
                    });
                    assert_eq!(
                        sharded, flat,
                        "kNN drifted: query={query} k={k} shard_rows={shard_rows} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn query_row_not_in_dataset() {
        let ds = line_ds(4);
        let dist = MixedDistance::fit(&ds, MixedMetric::SmoteNc);
        let all: Vec<usize> = (0..4).collect();
        let hits = k_nearest(&ds, &[Value::Num(1.4)], &all, 2, usize::MAX, &dist);
        assert_eq!(hits[0].index, 1);
        assert_eq!(hits[1].index, 2);
    }
}
