//! # frote-ml
//!
//! Hand-rolled classification substrate for the FROTE (MLSys 2022)
//! reproduction. The paper evaluates FROTE with scikit-learn's Logistic
//! Regression and Random Forest plus LightGBM; this crate provides faithful
//! Rust stand-ins (see DESIGN.md §3) together with the nearest-neighbour
//! machinery SMOTE-style generation needs and the metrics the evaluation
//! reports:
//!
//! - [`Classifier`] / [`TrainAlgorithm`] — the black-box training contract
//!   FROTE assumes (§3.2: "any classification algorithm that takes training
//!   data as input and produces a classifier as output"),
//! - [`logreg`] — multinomial logistic regression (paper setting:
//!   `max_iter = 500`),
//! - [`tree`] / [`forest`] — CART decision trees and random forests (paper
//!   setting: `max_depth = 3`),
//! - [`gbdt`] — gradient-boosted trees, the LightGBM stand-in,
//! - [`histogram`] — the quantized histogram split search shared by the
//!   tree families (opt-in per trainer via [`SplitMode`]),
//! - [`kernels`] — the blocked, autovectorizer-friendly `f64` kernels every
//!   numeric inner loop (distances, softmax, gradients) runs on,
//! - [`knn`] / [`balltree`] / [`distance`] — mixed-type nearest neighbours
//!   (scikit-learn `ball_tree` stand-in),
//! - [`metrics`] — accuracy, confusion matrices, and F1 scores.
//!
//! ```
//! use frote_data::synth::{DatasetKind, SynthConfig};
//! use frote_ml::{forest::RandomForestTrainer, metrics, TrainAlgorithm};
//!
//! let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 300, ..Default::default() });
//! let model = RandomForestTrainer::default().train(&ds);
//! let preds: Vec<u32> = (0..ds.n_rows()).map(|i| model.predict(&ds.row(i))).collect();
//! let acc = frote_ml::metrics::accuracy(&preds, ds.labels());
//! assert!(acc > 0.5);
//! ```

#![warn(missing_docs)]

pub mod balltree;
pub mod distance;
mod error;
pub mod forest;
pub mod gbdt;
pub mod histogram;
pub mod kernels;
pub mod knn;
pub mod logreg;
pub mod metrics;
pub mod naive_bayes;
mod traits;
pub mod tree;
pub mod validate;

pub use error::MlError;
pub use histogram::{default_split_mode, set_default_split_mode, GossParams, SplitMode};
pub use traits::{Classifier, TrainAlgorithm, TrainCache};
