//! Gradient-boosted decision trees — the LightGBM stand-in.
//!
//! Boosting runs multiclass softmax: each round fits one shallow regression
//! tree per class to the softmax gradient residuals, with Newton leaf values
//! (`sum(residual) / sum(p * (1 - p))`) and shrinkage, which is the same
//! additive-model formulation LightGBM uses. [`SplitMode::Histogram`] opts
//! into LightGBM's histogram engineering too: the dataset is quantized once
//! per fit and every tree of every round searches splits over gradient
//! histograms (see [`crate::histogram`]) instead of per-node sorts.

use frote_data::{BinnedCache, BinnedMatrix, Binner, Column, Dataset, FeatureMatrix, Value};
use frote_par::SeedSplit;
use rand::Rng;

use crate::histogram::{GossParams, HistContext, SplitMode};
use crate::kernels;
use crate::traits::{argmax, Classifier, TrainAlgorithm, TrainCache, PREDICT_BLOCK};
use crate::tree::SplitTest;

/// GBDT hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbdtParams {
    /// Boosting rounds.
    pub n_rounds: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f64,
    /// Depth of each regression tree.
    pub max_depth: usize,
    /// Minimum rows per leaf.
    pub min_samples_leaf: usize,
    /// How splits are searched: exact per-node sorts (default) or the
    /// quantized histogram engine.
    pub split_mode: SplitMode,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_rounds: 50,
            learning_rate: 0.2,
            max_depth: 3,
            min_samples_leaf: 5,
            // Exact unless the process-wide `--split-mode` override is set.
            split_mode: crate::histogram::default_split_mode(),
        }
    }
}

#[derive(Debug, Clone)]
enum RegNode {
    Leaf { value: f64 },
    Split { test: SplitTest, left: usize, right: usize },
}

/// A regression tree fitted to gradient residuals.
#[derive(Debug, Clone)]
struct RegressionTree {
    nodes: Vec<RegNode>,
}

impl RegressionTree {
    /// Fits on rows `indices` of `ds` with per-row `targets` (residuals) and
    /// `hessians` (for Newton leaf values), both indexed by *dataset row*.
    fn fit(
        ds: &Dataset,
        indices: &mut [usize],
        targets: &[f64],
        hessians: &[f64],
        params: &GbdtParams,
    ) -> Self {
        let mut tree = RegressionTree { nodes: Vec::new() };
        tree.grow(ds, indices, targets, hessians, 0, params);
        tree
    }

    fn grow(
        &mut self,
        ds: &Dataset,
        indices: &mut [usize],
        targets: &[f64],
        hessians: &[f64],
        depth: usize,
        params: &GbdtParams,
    ) -> usize {
        if depth >= params.max_depth || indices.len() < 2 * params.min_samples_leaf {
            self.nodes
                .push(RegNode::Leaf { value: newton_value(indices, targets, hessians, None) });
            return self.nodes.len() - 1;
        }
        match best_regression_split(ds, indices, targets, params.min_samples_leaf) {
            None => {
                self.nodes
                    .push(RegNode::Leaf { value: newton_value(indices, targets, hessians, None) });
                self.nodes.len() - 1
            }
            Some(test) => {
                let mut mid = 0;
                for i in 0..indices.len() {
                    let goes_left = match test {
                        SplitTest::NumLe { feature, threshold } => {
                            ds.value(indices[i], feature).expect_num() <= threshold
                        }
                        SplitTest::CatEq { feature, category } => {
                            ds.value(indices[i], feature).expect_cat() == category
                        }
                    };
                    if goes_left {
                        indices.swap(i, mid);
                        mid += 1;
                    }
                }
                if mid == 0 || mid == indices.len() {
                    self.nodes.push(RegNode::Leaf {
                        value: newton_value(indices, targets, hessians, None),
                    });
                    return self.nodes.len() - 1;
                }
                let (li, ri) = indices.split_at_mut(mid);
                let left = self.grow(ds, li, targets, hessians, depth + 1, params);
                let right = self.grow(ds, ri, targets, hessians, depth + 1, params);
                self.nodes.push(RegNode::Split { test, left, right });
                self.nodes.len() - 1
            }
        }
    }

    /// Histogram-mode twin of [`RegressionTree::fit`]: gradient/count
    /// histograms per node, sibling subtraction, raw-value thresholds from
    /// the bin edges. Regression trees never subsample features, so
    /// subtraction always applies.
    fn fit_hist(
        ctx: &HistContext,
        indices: &mut [usize],
        targets: &[f64],
        hessians: &[f64],
        params: &GbdtParams,
    ) -> Self {
        let mut tree = RegressionTree { nodes: Vec::new() };
        tree.grow_hist(ctx, indices, targets, hessians, None, 0, params, None);
        tree
    }

    /// [`RegressionTree::fit_hist`] over a GOSS-sampled row subset with a
    /// per-row weight plane: histogram counts/sums, node totals, and Newton
    /// leaf values all accumulate `w`-weighted quantities, so the sampled
    /// small-gradient rows stand in for the rows GOSS dropped.
    fn fit_hist_weighted(
        ctx: &HistContext,
        indices: &mut [usize],
        targets: &[f64],
        hessians: &[f64],
        weights: &[f64],
        params: &GbdtParams,
    ) -> Self {
        let mut tree = RegressionTree { nodes: Vec::new() };
        tree.grow_hist(ctx, indices, targets, hessians, Some(weights), 0, params, None);
        tree
    }

    #[allow(clippy::too_many_arguments)] // mirrors `grow` plus the carried histogram
    fn grow_hist(
        &mut self,
        ctx: &HistContext,
        indices: &mut [usize],
        targets: &[f64],
        hessians: &[f64],
        weights: Option<&[f64]>,
        depth: usize,
        params: &GbdtParams,
        hist: Option<Vec<f64>>,
    ) -> usize {
        if depth >= params.max_depth || indices.len() < 2 * params.min_samples_leaf {
            self.nodes
                .push(RegNode::Leaf { value: newton_value(indices, targets, hessians, weights) });
            return self.nodes.len() - 1;
        }
        let hist = hist.unwrap_or_else(|| match weights {
            None => ctx.reg_hist(targets, indices),
            Some(w) => ctx.reg_hist_weighted(targets, w, indices),
        });
        // Weighted fits score against the weighted row mass so node totals
        // agree with the histogram's weighted counts.
        let n = match weights {
            None => indices.len() as f64,
            Some(w) => indices.iter().map(|&i| w[i]).sum(),
        };
        let total = weighted_sum(targets, weights, indices);
        let best = ctx.find_best_regression_split(&hist, n, total, params.min_samples_leaf);
        match best {
            None => {
                self.nodes.push(RegNode::Leaf {
                    value: newton_value(indices, targets, hessians, weights),
                });
                self.nodes.len() - 1
            }
            Some(split) => {
                let mut mid = 0;
                for i in 0..indices.len() {
                    if ctx.goes_left(indices[i], split) {
                        indices.swap(i, mid);
                        mid += 1;
                    }
                }
                if mid == 0 || mid == indices.len() {
                    self.nodes.push(RegNode::Leaf {
                        value: newton_value(indices, targets, hessians, weights),
                    });
                    return self.nodes.len() - 1;
                }
                let test = ctx.to_split_test(split);
                let (li, ri) = indices.split_at_mut(mid);
                // Build the smaller child's histogram directly; derive the
                // larger sibling's by subtraction from the parent's — but
                // only when the children can still split (`depth + 1` below
                // the cap), else they leaf out without reading a histogram.
                let (lh, rh) = if depth + 1 < params.max_depth {
                    let build = |idx: &[usize]| match weights {
                        None => ctx.reg_hist(targets, idx),
                        Some(w) => ctx.reg_hist_weighted(targets, w, idx),
                    };
                    let mut sibling = hist;
                    if li.len() <= ri.len() {
                        let lh = build(li);
                        HistContext::subtract_hist(&mut sibling, &lh);
                        (Some(lh), Some(sibling))
                    } else {
                        let rh = build(ri);
                        HistContext::subtract_hist(&mut sibling, &rh);
                        (Some(sibling), Some(rh))
                    }
                } else {
                    (None, None)
                };
                let left =
                    self.grow_hist(ctx, li, targets, hessians, weights, depth + 1, params, lh);
                let right =
                    self.grow_hist(ctx, ri, targets, hessians, weights, depth + 1, params, rh);
                self.nodes.push(RegNode::Split { test, left, right });
                self.nodes.len() - 1
            }
        }
    }

    fn predict(&self, row: &[Value]) -> f64 {
        let mut node = self.nodes.len() - 1;
        loop {
            match &self.nodes[node] {
                RegNode::Leaf { value } => return *value,
                RegNode::Split { test, left, right } => {
                    node = if test.goes_left(row) { *left } else { *right };
                }
            }
        }
    }
}

fn newton_value(
    indices: &[usize],
    targets: &[f64],
    hessians: &[f64],
    weights: Option<&[f64]>,
) -> f64 {
    let g = weighted_sum(targets, weights, indices);
    let h = weighted_sum(hessians, weights, indices);
    if h.abs() < 1e-12 {
        0.0
    } else {
        (g / h).clamp(-4.0, 4.0)
    }
}

/// `Σ values[i]` over `indices`, `w`-weighted when a GOSS weight plane is
/// present. The unweighted arm stays on [`kernels::gather_sum`] so non-GOSS
/// fits keep their exact historical accumulation order.
fn weighted_sum(values: &[f64], weights: Option<&[f64]>, indices: &[usize]) -> f64 {
    match weights {
        None => kernels::gather_sum(values, indices),
        Some(w) => indices.iter().map(|&i| w[i] * values[i]).sum(),
    }
}

/// GOSS row selection for one `(round, class)` tree: keep the `a·N` rows
/// with the largest `|gradient|` (ties broken by row index), then sample
/// `b` of the remaining rows with one `SeedSplit` stream **per shard**
/// (shard = row ÷ [`frote_data::sharded::shard_rows`]), weighting the
/// sampled rows by `(1 - a) / b`. Per-shard streams make the selection
/// independent of `FROTE_THREADS` and reproducible out-of-core; the chosen
/// subset does depend on the shard size, which the GOSS goldens pin.
fn goss_select(gradients: &[f64], goss: GossParams, stream: u64) -> (Vec<usize>, Vec<f64>) {
    let n = gradients.len();
    let top_k = ((n as f64) * goss.top_fraction()).round().min(n as f64) as usize;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| {
        gradients[b].abs().total_cmp(&gradients[a].abs()).then(a.cmp(&b))
    });
    let mut selected = vec![false; n];
    let mut weights = vec![1.0; n];
    for &i in &order[..top_k] {
        selected[i] = true;
    }
    let amplify = goss.amplify();
    let shard_rows = frote_data::sharded::shard_rows();
    let shard_split = SeedSplit::new(SeedSplit::new(goss.seed).seed(stream));
    let b = goss.rest_fraction();
    let mut shard = usize::MAX;
    let mut rng = shard_split.stream(0);
    for i in 0..n {
        if selected[i] {
            continue;
        }
        if i / shard_rows != shard {
            shard = i / shard_rows;
            rng = shard_split.stream(shard as u64);
        }
        if rng.random::<f64>() < b {
            selected[i] = true;
            weights[i] = amplify;
        }
    }
    let indices: Vec<usize> = (0..n).filter(|&i| selected[i]).collect();
    (indices, weights)
}

/// Variance-reduction split search (numeric `<=` and categorical one-vs-rest,
/// as in the classification tree).
fn best_regression_split(
    ds: &Dataset,
    indices: &[usize],
    targets: &[f64],
    min_leaf: usize,
) -> Option<SplitTest> {
    let n = indices.len() as f64;
    let total = kernels::gather_sum(targets, indices);
    let mut best: Option<(f64, SplitTest)> = None;
    for f in 0..ds.n_features() {
        match ds.column(f) {
            Column::Numeric(_) => {
                let mut pairs: Vec<(f64, f64)> =
                    indices.iter().map(|&i| (ds.value(i, f).expect_num(), targets[i])).collect();
                pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
                let mut left_sum = 0.0;
                for b in 1..pairs.len() {
                    left_sum += pairs[b - 1].1;
                    if pairs[b].0 <= pairs[b - 1].0 || b < min_leaf || pairs.len() - b < min_leaf {
                        continue;
                    }
                    // Maximizing sum-of-squares gain == minimizing SSE.
                    let right_sum = total - left_sum;
                    let score =
                        left_sum * left_sum / b as f64 + right_sum * right_sum / (n - b as f64);
                    if best.as_ref().is_none_or(|(s, _)| score > *s) {
                        let threshold = 0.5 * (pairs[b - 1].0 + pairs[b].0);
                        best = Some((score, SplitTest::NumLe { feature: f, threshold }));
                    }
                }
            }
            Column::Categorical(_) => {
                let card = ds
                    .schema()
                    .feature(f)
                    .kind()
                    .cardinality()
                    .expect("categorical has cardinality");
                let mut sums = vec![0.0; card];
                let mut counts = vec![0usize; card];
                for &i in indices {
                    let c = ds.value(i, f).expect_cat() as usize;
                    sums[c] += targets[i];
                    counts[c] += 1;
                }
                for c in 0..card {
                    if counts[c] < min_leaf || indices.len() - counts[c] < min_leaf {
                        continue;
                    }
                    let right_sum = total - sums[c];
                    let score = sums[c] * sums[c] / counts[c] as f64
                        + right_sum * right_sum / (n - counts[c] as f64);
                    if best.as_ref().is_none_or(|(s, _)| score > *s) {
                        best = Some((score, SplitTest::CatEq { feature: f, category: c as u32 }));
                    }
                }
            }
        }
    }
    // Require real improvement over the no-split score.
    let base = total * total / n;
    best.filter(|(s, _)| *s > base + 1e-9).map(|(_, t)| t)
}

/// A trained gradient-boosted model.
#[derive(Debug, Clone)]
pub struct Gbdt {
    /// `rounds[r][class]` trees.
    rounds: Vec<Vec<RegressionTree>>,
    base_score: Vec<f64>,
    learning_rate: f64,
    n_classes: usize,
}

impl Gbdt {
    /// Fits a boosted model to `ds`. In [`SplitMode::Histogram`] the dataset
    /// is quantized once and every tree of every round shares the codes —
    /// the biggest win of the mode, since boosting fits
    /// `n_rounds × n_classes` trees over one fixed dataset.
    ///
    /// # Panics
    ///
    /// Panics if `ds` is empty.
    pub fn fit(ds: &Dataset, params: &GbdtParams) -> Self {
        // `SplitMode::Goss` quantizes exactly like `Histogram`; the row
        // sampling happens per round inside `fit_impl`.
        match params.split_mode.max_bins() {
            None => Self::fit_impl(ds, params, None),
            Some(max_bins) => {
                let binned = BinnedCache::fit(ds, max_bins);
                Self::fit_impl(ds, params, Some((binned.binner(), binned.codes())))
            }
        }
    }

    /// [`Gbdt::fit`] with the binning reused from a caller-held
    /// [`TrainCache`] (FROTE's retrain loop bins only the appended rows).
    pub fn fit_cached(ds: &Dataset, params: &GbdtParams, cache: &mut TrainCache) -> Self {
        match params.split_mode.max_bins() {
            None => Self::fit_impl(ds, params, None),
            Some(max_bins) => {
                let binned = cache.binned(ds, max_bins);
                Self::fit_impl(ds, params, Some((binned.binner(), binned.codes())))
            }
        }
    }

    fn fit_impl(
        ds: &Dataset,
        params: &GbdtParams,
        binned: Option<(&Binner, &BinnedMatrix)>,
    ) -> Self {
        assert!(!ds.is_empty(), "cannot train on an empty dataset");
        let ctx = binned.map(|(binner, codes)| HistContext::new(binner, codes));
        let goss = match params.split_mode {
            SplitMode::Goss { goss, .. } => Some(goss),
            _ => None,
        };
        let n = ds.n_rows();
        let k = ds.n_classes();
        // Base score: log prior per class.
        let counts = ds.class_counts();
        let base_score: Vec<f64> =
            counts.iter().map(|&c| (((c as f64) + 1.0) / ((n + k) as f64)).ln()).collect();
        // One flat matrix per quantity: `scores` is row-per-instance
        // (width k); `residuals`/`hessians` are row-per-class (width n) so
        // each regression tree borrows its class's row as a plain slice.
        let mut scores = FeatureMatrix::from_raw(k, base_score.repeat(n));
        let mut rounds = Vec::with_capacity(params.n_rounds);
        let mut probs = vec![0.0; k];
        let mut residuals = FeatureMatrix::from_raw(n, vec![0.0; n * k]);
        let mut hessians = FeatureMatrix::from_raw(n, vec![0.0; n * k]);
        for round in 0..params.n_rounds {
            for i in 0..n {
                kernels::softmax_into(scores.row(i), &mut probs);
                let y = ds.label(i) as usize;
                for (c, &p) in probs.iter().enumerate() {
                    residuals.row_mut(c)[i] = f64::from(c == y) - p;
                    hessians.row_mut(c)[i] = (p * (1.0 - p)).max(1e-6);
                }
            }
            // Within a round the per-class trees depend only on the
            // residuals computed above, so they fit in parallel; the score
            // updates are applied afterwards (class columns are disjoint,
            // so the result is identical to the interleaved serial order).
            let classes: Vec<usize> = (0..k).collect();
            let round_trees = frote_par::par_map(&classes, |&c| {
                match (&ctx, goss) {
                    (Some(ctx), Some(goss)) => {
                        // One decorrelated GOSS stream per (round, class).
                        let stream = (round * k + c) as u64;
                        let (mut idx, weights) = goss_select(residuals.row(c), goss, stream);
                        RegressionTree::fit_hist_weighted(
                            ctx,
                            &mut idx,
                            residuals.row(c),
                            hessians.row(c),
                            &weights,
                            params,
                        )
                    }
                    (Some(ctx), None) => {
                        let mut idx: Vec<usize> = (0..n).collect();
                        RegressionTree::fit_hist(
                            ctx,
                            &mut idx,
                            residuals.row(c),
                            hessians.row(c),
                            params,
                        )
                    }
                    (None, _) => {
                        let mut idx: Vec<usize> = (0..n).collect();
                        RegressionTree::fit(ds, &mut idx, residuals.row(c), hessians.row(c), params)
                    }
                }
            });
            for (c, tree) in round_trees.iter().enumerate() {
                for i in 0..n {
                    scores.row_mut(i)[c] += params.learning_rate * tree.predict_in(ds, i);
                }
            }
            rounds.push(round_trees);
        }
        Gbdt { rounds, base_score, learning_rate: params.learning_rate, n_classes: k }
    }

    /// Number of boosting rounds performed.
    pub fn n_rounds(&self) -> usize {
        self.rounds.len()
    }

    fn raw_scores_into(&self, row: &[Value], out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.base_score);
        for round in &self.rounds {
            for (c, tree) in round.iter().enumerate() {
                out[c] += self.learning_rate * tree.predict(row);
            }
        }
    }

    /// [`Gbdt::raw_scores_into`] for a row already in `ds`, traversed
    /// straight off the columnar store.
    fn raw_scores_in_into(&self, ds: &Dataset, i: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.base_score);
        for round in &self.rounds {
            for (c, tree) in round.iter().enumerate() {
                out[c] += self.learning_rate * tree.predict_in(ds, i);
            }
        }
    }
}

impl RegressionTree {
    /// Prediction for a row already in `ds` (avoids materializing it).
    fn predict_in(&self, ds: &Dataset, i: usize) -> f64 {
        let mut node = self.nodes.len() - 1;
        loop {
            match &self.nodes[node] {
                RegNode::Leaf { value } => return *value,
                RegNode::Split { test, left, right } => {
                    let goes_left = match *test {
                        SplitTest::NumLe { feature, threshold } => {
                            ds.value(i, feature).expect_num() <= threshold
                        }
                        SplitTest::CatEq { feature, category } => {
                            ds.value(i, feature).expect_cat() == category
                        }
                    };
                    node = if goes_left { *left } else { *right };
                }
            }
        }
    }
}

impl Classifier for Gbdt {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba_into(&self, row: &[Value], out: &mut Vec<f64>) {
        let mut s = Vec::with_capacity(self.n_classes);
        self.raw_scores_into(row, &mut s);
        out.clear();
        out.resize(self.n_classes, 0.0);
        kernels::softmax_into(&s, out);
    }

    fn predict(&self, row: &[Value]) -> u32 {
        let mut s = Vec::with_capacity(self.n_classes);
        self.raw_scores_into(row, &mut s);
        argmax(&s)
    }

    /// Index-based ensemble traversal in parallel over row blocks — no
    /// `Dataset::row` allocation per row.
    fn predict_dataset(&self, ds: &Dataset) -> Vec<u32> {
        frote_par::par_blocks_map(ds.n_rows(), PREDICT_BLOCK, |_, rows| {
            let mut s = Vec::with_capacity(self.n_classes);
            let mut out = Vec::with_capacity(rows.len());
            for i in rows {
                self.raw_scores_in_into(ds, i, &mut s);
                out.push(argmax(&s));
            }
            out
        })
    }

    fn predict_rows(&self, ds: &Dataset, rows: &[usize]) -> Vec<u32> {
        frote_par::par_chunks_map(rows, PREDICT_BLOCK, |_, chunk| {
            let mut s = Vec::with_capacity(self.n_classes);
            let mut out = Vec::with_capacity(chunk.len());
            for &i in chunk {
                self.raw_scores_in_into(ds, i, &mut s);
                out.push(argmax(&s));
            }
            out
        })
    }
}

/// Trainer wrapper implementing [`TrainAlgorithm`]. The paper's "LGBM".
#[derive(Debug, Clone, Default)]
pub struct GbdtTrainer {
    params: GbdtParams,
}

impl GbdtTrainer {
    /// Creates a trainer with explicit parameters.
    pub fn new(params: GbdtParams) -> Self {
        GbdtTrainer { params }
    }

    /// The parameters.
    pub fn params(&self) -> &GbdtParams {
        &self.params
    }
}

impl TrainAlgorithm for GbdtTrainer {
    fn train(&self, ds: &Dataset) -> Box<dyn Classifier> {
        Box::new(Gbdt::fit(ds, &self.params))
    }

    fn train_cached(&self, ds: &Dataset, cache: &mut TrainCache) -> Box<dyn Classifier> {
        Box::new(Gbdt::fit_cached(ds, &self.params, cache))
    }

    fn name(&self) -> &str {
        "LGBM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use frote_data::synth::{DatasetKind, SynthConfig};
    use frote_data::Schema;

    #[test]
    fn fits_nonlinear_planted_concepts() {
        for kind in [DatasetKind::Car, DatasetKind::Mushroom] {
            let ds = kind.generate(&SynthConfig { n_rows: 600, ..Default::default() });
            let model = GbdtTrainer::default().train(&ds);
            let acc = accuracy(&model.predict_dataset(&ds), ds.labels());
            assert!(acc > 0.8, "{}: accuracy {acc}", kind.name());
        }
    }

    #[test]
    fn fits_numeric_xor() {
        let schema =
            Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x1").numeric("x2").build();
        let mut ds = Dataset::new(schema);
        for i in 0..400 {
            let x = f64::from(i % 2 == 0) * 2.0 - 1.0;
            let y = f64::from((i / 2) % 2 == 0) * 2.0 - 1.0;
            let jitter = (i as f64) * 1e-5;
            let label = u32::from((x > 0.0) != (y > 0.0));
            ds.push_row(&[Value::Num(x + jitter), Value::Num(y - jitter)], label).unwrap();
        }
        let model = Gbdt::fit(&ds, &GbdtParams::default());
        let acc = accuracy(&model.predict_dataset(&ds), ds.labels());
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn proba_normalized() {
        let ds = DatasetKind::Nursery.generate(&SynthConfig { n_rows: 300, ..Default::default() });
        let model = GbdtTrainer::default().train(&ds);
        for i in 0..10 {
            let p = model.predict_proba(&ds.row(i));
            assert_eq!(p.len(), 4);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&q| q >= 0.0));
        }
    }

    #[test]
    fn more_rounds_do_not_hurt_train_accuracy() {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 400, ..Default::default() });
        let small = Gbdt::fit(&ds, &GbdtParams { n_rounds: 3, ..Default::default() });
        let large = Gbdt::fit(&ds, &GbdtParams { n_rounds: 40, ..Default::default() });
        let a_small = accuracy(&small.predict_dataset(&ds), ds.labels());
        let a_large = accuracy(&large.predict_dataset(&ds), ds.labels());
        assert!(a_large + 1e-9 >= a_small, "{a_small} -> {a_large}");
        assert_eq!(large.n_rounds(), 40);
    }

    #[test]
    fn histogram_mode_matches_exact_quality() {
        for kind in [DatasetKind::Car, DatasetKind::WineQuality] {
            let ds = kind.generate(&SynthConfig { n_rows: 500, ..Default::default() });
            let hist_params = GbdtParams {
                n_rounds: 10,
                split_mode: SplitMode::histogram(),
                ..Default::default()
            };
            let exact_params = GbdtParams { n_rounds: 10, ..Default::default() };
            let hist = Gbdt::fit(&ds, &hist_params);
            let exact = Gbdt::fit(&ds, &exact_params);
            let acc_hist = accuracy(&hist.predict_dataset(&ds), ds.labels());
            let acc_exact = accuracy(&exact.predict_dataset(&ds), ds.labels());
            assert!(
                acc_hist + 0.05 >= acc_exact,
                "{}: histogram {acc_hist} vs exact {acc_exact}",
                kind.name()
            );
        }
    }

    #[test]
    fn histogram_mode_cached_matches_fresh() {
        let ds =
            DatasetKind::WineQuality.generate(&SynthConfig { n_rows: 300, ..Default::default() });
        let params =
            GbdtParams { n_rounds: 5, split_mode: SplitMode::histogram(), ..Default::default() };
        let mut cache = crate::traits::TrainCache::new();
        let cached = Gbdt::fit_cached(&ds, &params, &mut cache);
        let fresh = Gbdt::fit(&ds, &params);
        assert_eq!(cached.predict_dataset(&ds), fresh.predict_dataset(&ds));
    }

    #[test]
    fn goss_select_keeps_top_gradients_and_amplifies_the_rest() {
        let gradients: Vec<f64> = (0..100).map(|i| (i as f64) / 100.0 - 0.5).collect();
        let goss = GossParams { top_permille: 200, rest_permille: 500, seed: 11 };
        let (indices, weights) = goss_select(&gradients, goss, 0);
        // The 20 largest |gradient| rows are always in, at weight 1.
        let top: Vec<usize> = {
            let mut order: Vec<usize> = (0..100).collect();
            order.sort_unstable_by(|&a, &b| {
                gradients[b].abs().total_cmp(&gradients[a].abs()).then(a.cmp(&b))
            });
            order[..20].to_vec()
        };
        for &i in &top {
            assert!(indices.contains(&i), "top row {i} dropped");
            assert_eq!(weights[i], 1.0);
        }
        // Sampled remainder rows carry the (1 - a) / b amplifier.
        let amp = goss.amplify();
        for &i in indices.iter().filter(|i| !top.contains(i)) {
            assert_eq!(weights[i], amp);
        }
        assert!(indices.len() > 20, "sampling kept nothing at b = 0.5");
        assert!(indices.len() < 100, "sampling kept everything");
        assert!(indices.windows(2).all(|w| w[0] < w[1]), "indices ascend");
        // Same inputs, same subset; different stream, different subset.
        assert_eq!(goss_select(&gradients, goss, 0).0, indices);
        assert_ne!(goss_select(&gradients, goss, 1).0, indices);
    }

    #[test]
    fn goss_mode_is_thread_invariant_and_learns() {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 600, ..Default::default() });
        let params =
            GbdtParams { n_rounds: 12, split_mode: SplitMode::goss(7), ..Default::default() };
        // `with_threads` outermost, shard pin inside (the documented lock
        // order); GOSS subsets depend on the shard size, so pin it.
        let fit_at = |threads: usize| {
            frote_par::test_support::with_threads(threads, || {
                frote_data::sharded::test_support::with_shard_rows(256, || {
                    Gbdt::fit(&ds, &params).predict_dataset(&ds)
                })
            })
        };
        let base = fit_at(1);
        for t in [2usize, 4] {
            assert_eq!(fit_at(t), base, "GOSS fit drifted at FROTE_THREADS={t}");
        }
        let acc = accuracy(&base, ds.labels());
        assert!(acc > 0.7, "GOSS accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_train_panics() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        Gbdt::fit(&Dataset::new(schema), &GbdtParams::default());
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(GbdtTrainer::default().name(), "LGBM");
    }
}
