//! Random forests: bagged CART trees with feature subsampling.
//!
//! Stand-in for scikit-learn's `RandomForestClassifier`; the paper trains it
//! with default settings except `max_depth = 3`, which
//! [`RandomForestTrainer::default`] mirrors (100 trees, sqrt-features).

use frote_data::{BinnedCache, BinnedMatrix, Binner, Dataset, Value};
use frote_par::SeedSplit;

#[allow(unused_imports)] // doc links
use crate::histogram::SplitMode;
use crate::traits::{Classifier, TrainAlgorithm, TrainCache};
use crate::tree::{DecisionTree, TreeParams};

/// Random forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters. `max_features = None` here means "sqrt of the
    /// feature count", resolved at train time (scikit-learn's default).
    pub tree: TreeParams,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams { n_trees: 100, tree: TreeParams { max_depth: 3, ..Default::default() } }
    }
}

/// A trained random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Fits a forest on `ds`. In [`SplitMode::Histogram`] the dataset is
    /// quantized once and every tree trains over the shared codes.
    ///
    /// # Panics
    ///
    /// Panics if `ds` is empty or `params.n_trees == 0`.
    pub fn fit(ds: &Dataset, params: &ForestParams, seed: u64) -> Self {
        // GOSS degenerates to plain histogram mode here (no gradients).
        match params.tree.split_mode.max_bins() {
            None => Self::fit_impl(ds, params, seed, None),
            Some(max_bins) => {
                let binned = BinnedCache::fit(ds, max_bins);
                Self::fit_impl(ds, params, seed, Some((binned.binner(), binned.codes())))
            }
        }
    }

    /// [`RandomForest::fit`] with the binning reused from a caller-held
    /// [`TrainCache`] (FROTE's retrain loop bins only the appended rows).
    pub fn fit_cached(
        ds: &Dataset,
        params: &ForestParams,
        seed: u64,
        cache: &mut TrainCache,
    ) -> Self {
        match params.tree.split_mode.max_bins() {
            None => Self::fit_impl(ds, params, seed, None),
            Some(max_bins) => {
                let binned = cache.binned(ds, max_bins);
                Self::fit_impl(ds, params, seed, Some((binned.binner(), binned.codes())))
            }
        }
    }

    fn fit_impl(
        ds: &Dataset,
        params: &ForestParams,
        seed: u64,
        binned: Option<(&Binner, &BinnedMatrix)>,
    ) -> Self {
        assert!(!ds.is_empty(), "cannot train on an empty dataset");
        assert!(params.n_trees > 0, "forest needs at least one tree");
        let mut tree_params = params.tree;
        if tree_params.max_features.is_none() {
            let m = (ds.n_features() as f64).sqrt().round().max(1.0) as usize;
            tree_params.max_features = Some(m);
        }
        // Each tree owns an independent RNG stream derived from the forest
        // seed, so trees can be fitted in parallel while the ensemble stays
        // bit-identical at any `FROTE_THREADS`.
        let split = SeedSplit::new(seed);
        let tree_ids: Vec<u64> = (0..params.n_trees as u64).collect();
        let trees = frote_par::par_map(&tree_ids, |&t| {
            let mut rng = split.stream(t);
            let sample = ds.bootstrap_indices(ds.n_rows(), &mut rng);
            match binned {
                None => DecisionTree::fit(ds, &sample, &tree_params, &mut rng),
                Some((binner, codes)) => {
                    DecisionTree::fit_hist(ds, binner, codes, &sample, &tree_params, &mut rng)
                }
            }
        });
        RandomForest { trees, n_classes: ds.n_classes() }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Averaged-vote prediction for a row already in `ds`, accumulated into
    /// the caller's scratch.
    fn vote_in(&self, ds: &Dataset, i: usize, acc: &mut [f64]) -> u32 {
        acc.fill(0.0);
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.leaf_dist_in(ds, i)) {
                *a += p;
            }
        }
        let n = self.trees.len() as f64;
        for a in acc.iter_mut() {
            *a /= n;
        }
        crate::traits::argmax(acc)
    }

    /// Normalized split-frequency feature importances: the fraction of all
    /// splits across the forest taken on each feature. Sums to 1 when the
    /// forest contains at least one split; all-zero for stump forests.
    pub fn feature_importances(&self, n_features: usize) -> Vec<f64> {
        let mut counts = vec![0usize; n_features];
        for tree in &self.trees {
            for (f, c) in tree.feature_split_counts().iter().enumerate() {
                counts[f] += c;
            }
        }
        let total: usize = counts.iter().sum();
        if total == 0 {
            return vec![0.0; n_features];
        }
        counts.into_iter().map(|c| c as f64 / total as f64).collect()
    }
}

impl Classifier for RandomForest {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba_into(&self, row: &[Value], out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.n_classes, 0.0);
        for tree in &self.trees {
            for (a, p) in out.iter_mut().zip(tree.leaf_dist(row)) {
                *a += p;
            }
        }
        let n = self.trees.len() as f64;
        for a in out.iter_mut() {
            *a /= n;
        }
    }

    /// Accumulates per-tree leaf distributions straight off the columnar
    /// store, in parallel over row blocks — no per-row or per-tree
    /// allocation.
    fn predict_dataset(&self, ds: &Dataset) -> Vec<u32> {
        frote_par::par_blocks_map(ds.n_rows(), crate::traits::PREDICT_BLOCK, |_, rows| {
            let mut acc = vec![0.0; self.n_classes];
            let mut out = Vec::with_capacity(rows.len());
            for i in rows {
                out.push(self.vote_in(ds, i, &mut acc));
            }
            out
        })
    }

    fn predict_rows(&self, ds: &Dataset, rows: &[usize]) -> Vec<u32> {
        frote_par::par_chunks_map(rows, crate::traits::PREDICT_BLOCK, |_, chunk| {
            let mut acc = vec![0.0; self.n_classes];
            let mut out = Vec::with_capacity(chunk.len());
            for &i in chunk {
                out.push(self.vote_in(ds, i, &mut acc));
            }
            out
        })
    }
}

/// Trainer wrapper implementing [`TrainAlgorithm`]. The paper's "RF".
#[derive(Debug, Clone)]
pub struct RandomForestTrainer {
    params: ForestParams,
    seed: u64,
}

impl RandomForestTrainer {
    /// Creates a trainer with explicit parameters and seed.
    pub fn new(params: ForestParams, seed: u64) -> Self {
        RandomForestTrainer { params, seed }
    }

    /// The forest parameters.
    pub fn params(&self) -> &ForestParams {
        &self.params
    }
}

impl Default for RandomForestTrainer {
    fn default() -> Self {
        // 30 trees rather than scikit-learn's 100 keeps FROTE's inner
        // retraining loop tractable at reproduction scale while preserving
        // the ensemble behaviour; the paper's headline setting (max_depth=3)
        // is kept.
        RandomForestTrainer { params: ForestParams { n_trees: 30, ..Default::default() }, seed: 42 }
    }
}

impl TrainAlgorithm for RandomForestTrainer {
    fn train(&self, ds: &Dataset) -> Box<dyn Classifier> {
        Box::new(RandomForest::fit(ds, &self.params, self.seed))
    }

    fn train_cached(&self, ds: &Dataset, cache: &mut TrainCache) -> Box<dyn Classifier> {
        Box::new(RandomForest::fit_cached(ds, &self.params, self.seed, cache))
    }

    fn name(&self) -> &str {
        "RF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use frote_data::synth::{DatasetKind, SynthConfig};

    #[test]
    fn beats_chance_on_planted_concepts() {
        for kind in [DatasetKind::Car, DatasetKind::Mushroom] {
            let ds = kind.generate(&SynthConfig { n_rows: 600, ..Default::default() });
            let model = RandomForestTrainer::default().train(&ds);
            let acc = accuracy(&model.predict_dataset(&ds), ds.labels());
            // Depth-3 forests (the paper's setting) cap fit quality on the
            // 4-class Car concept; chance is ~0.25 (Car) / ~0.5 (Mushroom).
            assert!(acc > 0.6, "{}: accuracy {acc}", kind.name());
        }
    }

    #[test]
    fn proba_is_normalized_average() {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 200, ..Default::default() });
        let forest = RandomForest::fit(&ds, &ForestParams { n_trees: 5, ..Default::default() }, 7);
        assert_eq!(forest.n_trees(), 5);
        for i in 0..10 {
            let p = forest.predict_proba(&ds.row(i));
            assert_eq!(p.len(), 4);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 150, ..Default::default() });
        let a = RandomForest::fit(&ds, &ForestParams { n_trees: 3, ..Default::default() }, 9);
        let b = RandomForest::fit(&ds, &ForestParams { n_trees: 3, ..Default::default() }, 9);
        let pa = a.predict_dataset(&ds);
        let pb = b.predict_dataset(&ds);
        assert_eq!(pa, pb);
    }

    #[test]
    fn histogram_forest_is_deterministic_and_learns() {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 400, ..Default::default() });
        let params = ForestParams {
            n_trees: 10,
            tree: TreeParams {
                max_depth: 3,
                split_mode: crate::histogram::SplitMode::histogram(),
                ..Default::default()
            },
        };
        let a = RandomForest::fit(&ds, &params, 5);
        let mut cache = crate::traits::TrainCache::new();
        let b = RandomForest::fit_cached(&ds, &params, 5, &mut cache);
        let pa = a.predict_dataset(&ds);
        assert_eq!(pa, b.predict_dataset(&ds), "cached and fresh binning agree");
        let acc = accuracy(&pa, ds.labels());
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 50, ..Default::default() });
        RandomForest::fit(&ds, &ForestParams { n_trees: 0, ..Default::default() }, 0);
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(RandomForestTrainer::default().name(), "RF");
    }

    #[test]
    fn importances_concentrate_on_the_signal_feature() {
        use frote_data::{Schema, Value};
        // Feature 0 fully determines the label; feature 1 is noise.
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .numeric("signal")
            .numeric("noise")
            .build();
        let mut ds = Dataset::new(schema);
        for i in 0..200 {
            let x = i as f64;
            let noise = ((i * 7919) % 100) as f64;
            ds.push_row(&[Value::Num(x), Value::Num(noise)], u32::from(x >= 100.0)).unwrap();
        }
        let forest = RandomForest::fit(
            &ds,
            &ForestParams {
                n_trees: 15,
                tree: TreeParams { max_depth: 3, max_features: Some(2), ..Default::default() },
            },
            3,
        );
        let imp = forest.feature_importances(2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.8, "signal importance {imp:?}");
    }

    #[test]
    fn stump_forest_has_zero_importances() {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 100, ..Default::default() });
        let forest = RandomForest::fit(
            &ds,
            &ForestParams { n_trees: 3, tree: TreeParams { max_depth: 0, ..Default::default() } },
            0,
        );
        assert_eq!(forest.feature_importances(6), vec![0.0; 6]);
    }
}
