//! Classification metrics: accuracy, confusion matrices, F1 scores.
//!
//! The paper's objective combines model-rule agreement (MRA, a 0-1 loss
//! complement computed in `frote`) with an F1 score on the outside-coverage
//! population. Multiclass datasets use macro-F1; binary comparisons use the
//! positive-class F1 where noted.

/// Fraction of predictions equal to the labels.
///
/// Returns 1.0 for empty inputs (vacuous truth — callers treat an empty
/// population's term as satisfied, matching the paper's weighting by coverage
/// probability which is then zero).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(predictions: &[u32], labels: &[u32]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "prediction/label length mismatch");
    if predictions.is_empty() {
        return 1.0;
    }
    let correct = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / predictions.len() as f64
}

/// A confusion matrix: `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the matrix for `n_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or a label/prediction `>= n_classes`.
    pub fn new(predictions: &[u32], labels: &[u32], n_classes: usize) -> Self {
        assert_eq!(predictions.len(), labels.len(), "prediction/label length mismatch");
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for (&p, &l) in predictions.iter().zip(labels) {
            counts[l as usize][p as usize] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Count of rows with actual class `actual` predicted as `predicted`.
    pub fn count(&self, actual: u32, predicted: u32) -> usize {
        self.counts[actual as usize][predicted as usize]
    }

    /// True positives for `class`.
    pub fn true_positives(&self, class: u32) -> usize {
        self.count(class, class)
    }

    /// False positives for `class` (predicted as `class`, actually other).
    pub fn false_positives(&self, class: u32) -> usize {
        (0..self.n_classes() as u32).filter(|&a| a != class).map(|a| self.count(a, class)).sum()
    }

    /// False negatives for `class` (actually `class`, predicted other).
    pub fn false_negatives(&self, class: u32) -> usize {
        (0..self.n_classes() as u32).filter(|&p| p != class).map(|p| self.count(class, p)).sum()
    }

    /// Precision for `class`; 0 when the class was never predicted.
    pub fn precision(&self, class: u32) -> f64 {
        let tp = self.true_positives(class);
        let denom = tp + self.false_positives(class);
        if denom == 0 {
            0.0
        } else {
            tp as f64 / denom as f64
        }
    }

    /// Recall for `class`; 0 when the class never occurs.
    pub fn recall(&self, class: u32) -> f64 {
        let tp = self.true_positives(class);
        let denom = tp + self.false_negatives(class);
        if denom == 0 {
            0.0
        } else {
            tp as f64 / denom as f64
        }
    }

    /// F1 for `class`: harmonic mean of precision and recall (0 when both
    /// are 0).
    pub fn f1(&self, class: u32) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged F1 over classes that occur in the labels (classes with
    /// zero support are skipped, as scikit-learn does for its default
    /// averaging of observed labels).
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0;
        for c in 0..self.n_classes() as u32 {
            let support = self.true_positives(c) + self.false_negatives(c);
            if support > 0 {
                sum += self.f1(c);
                n += 1;
            }
        }
        if n == 0 {
            1.0
        } else {
            sum / n as f64
        }
    }

    /// Support-weighted F1.
    pub fn weighted_f1(&self) -> f64 {
        let mut sum = 0.0;
        let mut total = 0usize;
        for c in 0..self.n_classes() as u32 {
            let support = self.true_positives(c) + self.false_negatives(c);
            sum += self.f1(c) * support as f64;
            total += support;
        }
        if total == 0 {
            1.0
        } else {
            sum / total as f64
        }
    }
}

/// Macro-F1 convenience over raw slices. Empty inputs score 1.0 (vacuous).
///
/// # Panics
///
/// Panics on length mismatch.
pub fn macro_f1(predictions: &[u32], labels: &[u32], n_classes: usize) -> f64 {
    if predictions.is_empty() {
        return 1.0;
    }
    ConfusionMatrix::new(predictions, labels, n_classes).macro_f1()
}

/// Binary F1 for the positive class `1`. Empty inputs score 1.0.
///
/// # Panics
///
/// Panics on length mismatch or non-binary labels.
pub fn binary_f1(predictions: &[u32], labels: &[u32]) -> f64 {
    if predictions.is_empty() {
        return 1.0;
    }
    ConfusionMatrix::new(predictions, labels, 2).f1(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 0, 1], &[1, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_mismatch_panics() {
        accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn confusion_counts() {
        let m = ConfusionMatrix::new(&[0, 1, 1, 0], &[0, 1, 0, 1], 2);
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(1, 0), 1);
        assert_eq!(m.count(1, 1), 1);
        assert_eq!(m.true_positives(1), 1);
        assert_eq!(m.false_positives(1), 1);
        assert_eq!(m.false_negatives(1), 1);
    }

    #[test]
    fn perfect_scores() {
        let m = ConfusionMatrix::new(&[0, 1, 2], &[0, 1, 2], 3);
        assert_eq!(m.macro_f1(), 1.0);
        assert_eq!(m.weighted_f1(), 1.0);
        for c in 0..3 {
            assert_eq!(m.precision(c), 1.0);
            assert_eq!(m.recall(c), 1.0);
            assert_eq!(m.f1(c), 1.0);
        }
    }

    #[test]
    fn zero_support_class_skipped_in_macro() {
        // Class 2 never occurs in labels; macro-F1 averages classes 0 and 1.
        let m = ConfusionMatrix::new(&[0, 1], &[0, 1], 3);
        assert_eq!(m.macro_f1(), 1.0);
    }

    #[test]
    fn binary_f1_known_value() {
        // tp=2, fp=1, fn=1 -> p=2/3, r=2/3, f1=2/3
        let preds = [1, 1, 1, 0, 0];
        let labels = [1, 1, 0, 1, 0];
        let f = binary_f1(&preds, &labels);
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_never_predicted_class() {
        let m = ConfusionMatrix::new(&[0, 0], &[1, 1], 2);
        assert_eq!(m.precision(1), 0.0);
        assert_eq!(m.recall(1), 0.0);
        assert_eq!(m.f1(1), 0.0);
        assert_eq!(m.macro_f1(), 0.0);
    }

    #[test]
    fn weighted_f1_weights_by_support() {
        // class 0: support 3 all correct (f1=1); class 1: support 1 wrong (f1=0).
        let m = ConfusionMatrix::new(&[0, 0, 0, 0], &[0, 0, 0, 1], 2);
        assert!((m.weighted_f1() - (3.0 * m.f1(0)) / 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_conveniences() {
        assert_eq!(macro_f1(&[], &[], 3), 1.0);
        assert_eq!(binary_f1(&[], &[]), 1.0);
    }
}
