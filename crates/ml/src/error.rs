//! Error type for the ml crate.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by model training and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlError {
    /// Training was attempted on an empty dataset.
    EmptyTrainingSet,
    /// A hyper-parameter was out of its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// Prediction arity mismatch (row length vs. trained feature count).
    ArityMismatch {
        /// Expected feature count.
        expected: usize,
        /// Row length received.
        got: usize,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyTrainingSet => write!(f, "cannot train on an empty dataset"),
            MlError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter {name}: {detail}")
            }
            MlError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} features, model expects {expected}")
            }
        }
    }
}

impl StdError for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(MlError::EmptyTrainingSet.to_string(), "cannot train on an empty dataset");
        assert_eq!(
            MlError::ArityMismatch { expected: 3, got: 1 }.to_string(),
            "row has 1 features, model expects 3"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<MlError>();
    }
}
