//! Naive Bayes for mixed tabular data.
//!
//! A fourth model family beyond the paper's three, exercising FROTE's
//! black-box contract with a *generative* classifier: numeric features get
//! per-class Gaussians, categorical features get Laplace-smoothed
//! multinomials. Included because probabilistic models respond to
//! oversampling very differently from margin/tree learners (every synthetic
//! instance shifts the class priors and likelihoods directly), which makes
//! NB a useful ablation subject for data-editing methods.

use frote_data::{Column, Dataset, FeatureMatrix, Value};

use crate::traits::{argmax, Classifier, TrainAlgorithm, PREDICT_BLOCK};

/// Naive Bayes hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaiveBayesParams {
    /// Laplace smoothing for categorical likelihoods and class priors.
    pub alpha: f64,
    /// Variance floor for the Gaussian likelihoods (guards constant
    /// features).
    pub var_floor: f64,
}

impl Default for NaiveBayesParams {
    fn default() -> Self {
        NaiveBayesParams { alpha: 1.0, var_floor: 1e-9 }
    }
}

/// One class's Gaussian likelihood parameters with the normalization
/// constant `−½·ln(2πσ²)` folded in at fit time, so the scoring loop does a
/// multiply-add per class instead of recomputing a logarithm per cell.
/// `log_norm` is the exact negation of the term the scorer used to subtract,
/// so precomputing it cannot move a single bit.
#[derive(Debug, Clone, Copy)]
struct GaussParams {
    mean: f64,
    var: f64,
    log_norm: f64,
}

impl GaussParams {
    fn new(mean: f64, var: f64) -> Self {
        GaussParams { mean, var, log_norm: -0.5 * (2.0 * std::f64::consts::PI * var).ln() }
    }
}

#[derive(Debug, Clone)]
enum FeatureModel {
    /// Per-class Gaussian parameters.
    Gaussian(Vec<GaussParams>),
    /// Per-class log-probabilities per category: one flat matrix row per
    /// class, one column per category.
    Multinomial(FeatureMatrix),
}

/// A trained Naive Bayes model.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    log_priors: Vec<f64>,
    features: Vec<FeatureModel>,
    n_classes: usize,
}

impl NaiveBayes {
    /// Fits the model to `ds`.
    ///
    /// # Panics
    ///
    /// Panics if `ds` is empty.
    pub fn fit(ds: &Dataset, params: &NaiveBayesParams) -> Self {
        assert!(!ds.is_empty(), "cannot train on an empty dataset");
        let k = ds.n_classes();
        let n = ds.n_rows() as f64;
        let counts = ds.class_counts();
        let log_priors: Vec<f64> = counts
            .iter()
            .map(|&c| ((c as f64 + params.alpha) / (n + params.alpha * k as f64)).ln())
            .collect();
        let per_class_rows: Vec<Vec<usize>> =
            (0..k as u32).map(|c| ds.indices_of_class(c)).collect();
        // Each feature's likelihood parameters read only that feature's
        // column, so the fit is feature-parallel; `par_map` returns models
        // in feature order, making the result bit-identical to the old
        // serial loop at any `FROTE_THREADS`.
        let feature_ids: Vec<usize> = (0..ds.n_features()).collect();
        let features = frote_par::par_map(&feature_ids, |&j| match ds.column(j) {
            Column::Numeric(v) => {
                let stats = per_class_rows
                    .iter()
                    .map(|rows| {
                        if rows.is_empty() {
                            // Unit Gaussian for absent classes.
                            return GaussParams::new(0.0, 1.0);
                        }
                        let m = rows.iter().map(|&i| v[i]).sum::<f64>() / rows.len() as f64;
                        let var = rows.iter().map(|&i| (v[i] - m) * (v[i] - m)).sum::<f64>()
                            / rows.len() as f64;
                        GaussParams::new(m, var.max(params.var_floor))
                    })
                    .collect();
                FeatureModel::Gaussian(stats)
            }
            Column::Categorical(v) => {
                let card = ds
                    .schema()
                    .feature(j)
                    .kind()
                    .cardinality()
                    .expect("categorical column has cardinality");
                let mut log_probs = FeatureMatrix::with_capacity(card, per_class_rows.len());
                for rows in &per_class_rows {
                    let mut c = vec![params.alpha; card];
                    for &i in rows {
                        c[v[i] as usize] += 1.0;
                    }
                    let total: f64 = c.iter().sum();
                    log_probs.push_row_with(|buf| {
                        buf.extend(c.iter().map(|x| (x / total).ln()));
                    });
                }
                FeatureModel::Multinomial(log_probs)
            }
        });
        NaiveBayes { log_priors, features, n_classes: k }
    }

    fn log_joint_into(&self, row: &[Value], scores: &mut Vec<f64>) {
        assert_eq!(row.len(), self.features.len(), "row arity mismatch");
        scores.clear();
        scores.extend_from_slice(&self.log_priors);
        for (fm, &cell) in self.features.iter().zip(row) {
            match (fm, cell) {
                (FeatureModel::Gaussian(stats), Value::Num(x)) => {
                    for (s, g) in scores.iter_mut().zip(stats) {
                        let d = x - g.mean;
                        *s += -0.5 * (d * d / g.var) + g.log_norm;
                    }
                }
                (FeatureModel::Multinomial(lp), Value::Cat(c)) => {
                    for (s, class_lp) in scores.iter_mut().zip(lp.rows()) {
                        *s += class_lp[c as usize];
                    }
                }
                _ => panic!("row cell kind does not match the trained schema"),
            }
        }
    }

    /// Log-joint scores for a block of dataset rows, computed column-major:
    /// one pass per feature streams the typed column into the block's
    /// contiguous score rows (no [`Value`] is ever materialized). Every
    /// score cell folds its terms in the same order as
    /// [`NaiveBayes::log_joint_into`] — priors first, then features in
    /// schema order — so the block path is bit-identical to per-row scoring.
    fn log_joint_block(&self, ds: &Dataset, rows: &[usize], scores: &mut FeatureMatrix) {
        assert_eq!(ds.n_features(), self.features.len(), "row arity mismatch");
        scores.clear();
        for _ in rows {
            scores.push_row(&self.log_priors);
        }
        for (j, fm) in self.features.iter().enumerate() {
            match (fm, ds.column(j)) {
                (FeatureModel::Gaussian(stats), Column::Numeric(col)) => {
                    for (r, &i) in rows.iter().enumerate() {
                        let x = col[i];
                        for (s, g) in scores.row_mut(r).iter_mut().zip(stats) {
                            let d = x - g.mean;
                            *s += -0.5 * (d * d / g.var) + g.log_norm;
                        }
                    }
                }
                (FeatureModel::Multinomial(lp), Column::Categorical(col)) => {
                    for (r, &i) in rows.iter().enumerate() {
                        let c = col[i] as usize;
                        for (s, class_lp) in scores.row_mut(r).iter_mut().zip(lp.rows()) {
                            *s += class_lp[c];
                        }
                    }
                }
                _ => panic!("row cell kind does not match the trained schema"),
            }
        }
    }

    /// Argmax labels for a block of row indices through
    /// [`NaiveBayes::log_joint_block`], with caller-owned scratch.
    fn predict_block(&self, ds: &Dataset, rows: &[usize], scores: &mut FeatureMatrix) -> Vec<u32> {
        self.log_joint_block(ds, rows, scores);
        scores.rows().map(argmax).collect()
    }
}

impl Classifier for NaiveBayes {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba_into(&self, row: &[Value], out: &mut Vec<f64>) {
        self.log_joint_into(row, out);
        crate::kernels::softmax_in_place(out);
    }

    fn predict(&self, row: &[Value]) -> u32 {
        let mut scores = Vec::with_capacity(self.n_classes);
        self.log_joint_into(row, &mut scores);
        argmax(&scores)
    }

    /// Column-major batch scoring in parallel over row blocks — streams the
    /// typed columns instead of materializing a `Vec<Value>` per row.
    fn predict_dataset(&self, ds: &Dataset) -> Vec<u32> {
        frote_par::par_blocks_map(ds.n_rows(), PREDICT_BLOCK, |_, rows| {
            let mut scores = FeatureMatrix::with_capacity(self.n_classes, PREDICT_BLOCK);
            let idx: Vec<usize> = rows.collect();
            self.predict_block(ds, &idx, &mut scores)
        })
    }

    fn predict_rows(&self, ds: &Dataset, rows: &[usize]) -> Vec<u32> {
        frote_par::par_chunks_map(rows, PREDICT_BLOCK, |_, chunk| {
            let mut scores = FeatureMatrix::with_capacity(self.n_classes, chunk.len());
            self.predict_block(ds, chunk, &mut scores)
        })
    }
}

/// Trainer wrapper implementing [`TrainAlgorithm`].
#[derive(Debug, Clone, Default)]
pub struct NaiveBayesTrainer {
    params: NaiveBayesParams,
}

impl NaiveBayesTrainer {
    /// Creates a trainer with explicit parameters.
    pub fn new(params: NaiveBayesParams) -> Self {
        NaiveBayesTrainer { params }
    }

    /// The parameters.
    pub fn params(&self) -> &NaiveBayesParams {
        &self.params
    }
}

impl TrainAlgorithm for NaiveBayesTrainer {
    fn train(&self, ds: &Dataset) -> Box<dyn Classifier> {
        Box::new(NaiveBayes::fit(ds, &self.params))
    }

    fn name(&self) -> &str {
        "NB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use frote_data::synth::{DatasetKind, SynthConfig};
    use frote_data::Schema;

    #[test]
    fn separates_gaussian_clusters() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema);
        for i in 0..50 {
            ds.push_row(&[Value::Num(i as f64 * 0.1)], 0).unwrap();
            ds.push_row(&[Value::Num(10.0 + i as f64 * 0.1)], 1).unwrap();
        }
        let model = NaiveBayes::fit(&ds, &NaiveBayesParams::default());
        assert_eq!(model.predict(&[Value::Num(1.0)]), 0);
        assert_eq!(model.predict(&[Value::Num(12.0)]), 1);
        let p = model.predict_proba(&[Value::Num(12.0)]);
        assert!(p[1] > 0.99);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn handles_mixed_planted_concepts() {
        for kind in [DatasetKind::Mushroom, DatasetKind::Contraceptive] {
            let ds = kind.generate(&SynthConfig { n_rows: 600, ..Default::default() });
            let model = NaiveBayesTrainer::default().train(&ds);
            let acc = accuracy(&model.predict_dataset(&ds), ds.labels());
            assert!(acc > 0.5, "{}: accuracy {acc}", kind.name());
        }
    }

    #[test]
    fn constant_feature_is_safe() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema);
        for i in 0..10 {
            ds.push_row(&[Value::Num(5.0)], (i % 2) as u32).unwrap();
        }
        let model = NaiveBayes::fit(&ds, &NaiveBayesParams::default());
        let p = model.predict_proba(&[Value::Num(5.0)]);
        assert!((p[0] - 0.5).abs() < 1e-6, "{p:?}");
    }

    #[test]
    fn absent_class_gets_prior_only() {
        // Class 2 exists in the schema but not the data; smoothing keeps it
        // representable without NaNs.
        let schema =
            Schema::builder("y", vec!["a".into(), "b".into(), "c".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema);
        for i in 0..10 {
            ds.push_row(&[Value::Num(i as f64)], (i % 2) as u32).unwrap();
        }
        let model = NaiveBayes::fit(&ds, &NaiveBayesParams::default());
        let p = model.predict_proba(&[Value::Num(3.0)]);
        assert!(p.iter().all(|q| q.is_finite()));
        assert!(p[2] < p[0].max(p[1]));
    }

    #[test]
    fn smoothing_avoids_zero_probabilities() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .categorical("k", vec!["p".into(), "q".into()])
            .build();
        let mut ds = Dataset::new(schema);
        // Category q never occurs with class 0.
        for _ in 0..5 {
            ds.push_row(&[Value::Cat(0)], 0).unwrap();
            ds.push_row(&[Value::Cat(1)], 1).unwrap();
        }
        let model = NaiveBayes::fit(&ds, &NaiveBayesParams::default());
        let p = model.predict_proba(&[Value::Cat(1)]);
        assert!(p[0] > 0.0 && p[0] < 0.5);
    }

    #[test]
    fn fit_is_thread_count_invariant() {
        let ds = DatasetKind::Adult.generate(&SynthConfig { n_rows: 800, ..Default::default() });
        let proba_bits = |model: &NaiveBayes| -> Vec<u64> {
            (0..50).flat_map(|i| model.predict_proba(&ds.row(i))).map(f64::to_bits).collect()
        };
        let baseline = frote_par::test_support::with_threads(1, || {
            proba_bits(&NaiveBayes::fit(&ds, &NaiveBayesParams::default()))
        });
        for t in [2usize, 4] {
            let par = frote_par::test_support::with_threads(t, || {
                proba_bits(&NaiveBayes::fit(&ds, &NaiveBayesParams::default()))
            });
            assert_eq!(par, baseline, "NB fit drifted at FROTE_THREADS={t}");
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_train_panics() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        NaiveBayes::fit(&Dataset::new(schema), &NaiveBayesParams::default());
    }

    #[test]
    fn name() {
        assert_eq!(NaiveBayesTrainer::default().name(), "NB");
    }
}
