//! k-fold cross-validation utilities.
//!
//! The paper contrasts its randomized draw-per-run protocol with "fixing a
//! rule set and performing cross-validation with it" (§5.1); this module
//! provides the cross-validation half so downstream users can run either
//! protocol, and it doubles as the model-selection tool for the hand-rolled
//! learners in this crate.

use frote_data::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::metrics;
use crate::traits::TrainAlgorithm;

/// One fold's held-out scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldScore {
    /// Fold index.
    pub fold: usize,
    /// Held-out accuracy.
    pub accuracy: f64,
    /// Held-out macro-F1.
    pub macro_f1: f64,
}

/// Aggregated cross-validation result.
#[derive(Debug, Clone, PartialEq)]
pub struct CvResult {
    /// Per-fold scores.
    pub folds: Vec<FoldScore>,
}

impl CvResult {
    /// Mean held-out accuracy across folds.
    pub fn mean_accuracy(&self) -> f64 {
        self.folds.iter().map(|f| f.accuracy).sum::<f64>() / self.folds.len().max(1) as f64
    }

    /// Mean held-out macro-F1 across folds.
    pub fn mean_macro_f1(&self) -> f64 {
        self.folds.iter().map(|f| f.macro_f1).sum::<f64>() / self.folds.len().max(1) as f64
    }
}

/// The fold index assignments for `n` rows into `k` folds, shuffled by
/// `seed`. Fold sizes differ by at most one.
pub fn fold_assignments(n: usize, k: usize, seed: u64) -> Vec<usize> {
    assert!(k >= 2, "cross-validation needs at least 2 folds");
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut assignment = vec![0usize; n];
    for (pos, &row) in order.iter().enumerate() {
        assignment[row] = pos % k;
    }
    assignment
}

/// Runs `k`-fold cross-validation of `algorithm` on `ds`.
///
/// # Panics
///
/// Panics if `k < 2`, `ds` has fewer rows than folds, or a training fold
/// ends up lacking every class entirely (pathological tiny inputs).
pub fn cross_validate(
    algorithm: &dyn TrainAlgorithm,
    ds: &Dataset,
    k: usize,
    seed: u64,
) -> CvResult {
    assert!(ds.n_rows() >= k, "need at least one row per fold");
    let assignment = fold_assignments(ds.n_rows(), k, seed);
    // Folds are independent once the assignment is fixed, so they train and
    // score in parallel; results keep fold order and are identical to the
    // serial loop at any `FROTE_THREADS`.
    let fold_ids: Vec<usize> = (0..k).collect();
    let folds = frote_par::par_map(&fold_ids, |&fold| {
        let train_idx: Vec<usize> = (0..ds.n_rows()).filter(|&i| assignment[i] != fold).collect();
        let test_idx: Vec<usize> = (0..ds.n_rows()).filter(|&i| assignment[i] == fold).collect();
        let train = ds.gather(&train_idx);
        let test = ds.gather(&test_idx);
        let model = algorithm.train(&train);
        let preds = model.predict_dataset(&test);
        FoldScore {
            fold,
            accuracy: metrics::accuracy(&preds, test.labels()),
            macro_f1: metrics::macro_f1(&preds, test.labels(), ds.n_classes()),
        }
    });
    CvResult { folds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForestTrainer;
    use frote_data::synth::{DatasetKind, SynthConfig};

    #[test]
    fn fold_assignments_are_balanced() {
        let a = fold_assignments(103, 5, 42);
        assert_eq!(a.len(), 103);
        let mut counts = [0usize; 5];
        for &f in &a {
            counts[f] += 1;
        }
        assert!(counts.iter().all(|&c| c == 20 || c == 21), "{counts:?}");
    }

    #[test]
    fn fold_assignments_deterministic() {
        assert_eq!(fold_assignments(50, 4, 7), fold_assignments(50, 4, 7));
        assert_ne!(fold_assignments(50, 4, 7), fold_assignments(50, 4, 8));
    }

    #[test]
    fn cv_scores_reasonable_model() {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 400, ..Default::default() });
        let result = cross_validate(&RandomForestTrainer::default(), &ds, 4, 42);
        assert_eq!(result.folds.len(), 4);
        assert!(result.mean_accuracy() > 0.5, "{}", result.mean_accuracy());
        assert!((0.0..=1.0).contains(&result.mean_macro_f1()));
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn one_fold_rejected() {
        fold_assignments(10, 1, 0);
    }

    #[test]
    #[should_panic(expected = "one row per fold")]
    fn too_few_rows_rejected() {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 3, ..Default::default() });
        cross_validate(&RandomForestTrainer::default(), &ds, 5, 0);
    }
}
