//! Multinomial logistic regression on one-hot encoded features.
//!
//! Stand-in for scikit-learn's `LogisticRegression`; the paper trains it with
//! default settings except `max_iter = 500`, mirrored by
//! [`LogisticRegressionTrainer::default`]. Training is full-batch gradient
//! descent on the softmax cross-entropy with L2 regularization; features are
//! z-scored and one-hot encoded by `frote_data::encode::Encoder`, so a fixed
//! step size is well behaved.

use frote_data::encode::Encoder;
use frote_data::{Dataset, Value};

use crate::traits::{argmax, Classifier, TrainAlgorithm};

/// Logistic regression hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogRegParams {
    /// Gradient-descent iterations (paper: 500).
    pub max_iter: usize,
    /// Step size.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Early-stop when the gradient's infinity norm falls below this.
    pub tol: f64,
}

impl Default for LogRegParams {
    fn default() -> Self {
        LogRegParams { max_iter: 500, learning_rate: 0.5, l2: 1e-4, tol: 1e-6 }
    }
}

/// A trained multinomial logistic regression model.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    encoder: Encoder,
    /// Row-major weights: `weights[class][feature]`, with the bias last.
    weights: Vec<Vec<f64>>,
    n_classes: usize,
}

impl LogisticRegression {
    /// Fits the model to `ds`.
    ///
    /// # Panics
    ///
    /// Panics if `ds` is empty.
    pub fn fit(ds: &Dataset, params: &LogRegParams) -> Self {
        assert!(!ds.is_empty(), "cannot train on an empty dataset");
        let encoder = Encoder::fit(ds);
        let x = encoder.encode_dataset(ds);
        let n = x.len();
        let d = encoder.width();
        let k = ds.n_classes();
        let mut weights = vec![vec![0.0; d + 1]; k];
        let mut probs = vec![0.0; k];
        let mut grads = vec![vec![0.0; d + 1]; k];
        for _ in 0..params.max_iter {
            for g in grads.iter_mut() {
                g.iter_mut().for_each(|v| *v = 0.0);
            }
            for (xi, &yi) in x.iter().zip(ds.labels()) {
                softmax_scores(&weights, xi, &mut probs);
                for (c, g) in grads.iter_mut().enumerate() {
                    let err = probs[c] - f64::from(c as u32 == yi);
                    for (gj, &xj) in g.iter_mut().zip(xi) {
                        *gj += err * xj;
                    }
                    g[d] += err; // bias
                }
            }
            let inv_n = 1.0 / n as f64;
            let mut max_grad: f64 = 0.0;
            for (w, g) in weights.iter_mut().zip(&grads) {
                for (j, (wj, &gj)) in w.iter_mut().zip(g).enumerate() {
                    let reg = if j < d { params.l2 * *wj } else { 0.0 };
                    let step = gj * inv_n + reg;
                    max_grad = max_grad.max(step.abs());
                    *wj -= params.learning_rate * step;
                }
            }
            if max_grad < params.tol {
                break;
            }
        }
        LogisticRegression { encoder, weights, n_classes: k }
    }

    fn scores(&self, row: &[Value]) -> Vec<f64> {
        let x = self.encoder.encode(row);
        let mut probs = vec![0.0; self.n_classes];
        softmax_scores(&self.weights, &x, &mut probs);
        probs
    }
}

fn softmax_scores(weights: &[Vec<f64>], x: &[f64], out: &mut [f64]) {
    let d = x.len();
    for (o, w) in out.iter_mut().zip(weights) {
        let mut z = w[d]; // bias
        for (wj, xj) in w[..d].iter().zip(x) {
            z += wj * xj;
        }
        *o = z;
    }
    let max = out.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for o in out.iter_mut() {
        *o = (*o - max).exp();
        sum += *o;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
}

impl Classifier for LogisticRegression {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, row: &[Value]) -> Vec<f64> {
        self.scores(row)
    }

    fn predict(&self, row: &[Value]) -> u32 {
        argmax(&self.scores(row))
    }
}

/// Trainer wrapper implementing [`TrainAlgorithm`]. The paper's "LR".
#[derive(Debug, Clone, Default)]
pub struct LogisticRegressionTrainer {
    params: LogRegParams,
}

impl LogisticRegressionTrainer {
    /// Creates a trainer with explicit parameters.
    pub fn new(params: LogRegParams) -> Self {
        LogisticRegressionTrainer { params }
    }

    /// The parameters.
    pub fn params(&self) -> &LogRegParams {
        &self.params
    }
}

impl TrainAlgorithm for LogisticRegressionTrainer {
    fn train(&self, ds: &Dataset) -> Box<dyn Classifier> {
        Box::new(LogisticRegression::fit(ds, &self.params))
    }

    fn name(&self) -> &str {
        "LR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use frote_data::synth::{DatasetKind, SynthConfig};
    use frote_data::{Schema, Value};

    fn separable() -> Dataset {
        let schema = Schema::builder("y", vec!["neg".into(), "pos".into()])
            .numeric("x1")
            .numeric("x2")
            .build();
        let mut ds = Dataset::new(schema);
        for i in 0..100 {
            let t = i as f64 / 10.0;
            ds.push_row(&[Value::Num(t), Value::Num(t + 1.0)], 1).unwrap();
            ds.push_row(&[Value::Num(t), Value::Num(t - 1.0)], 0).unwrap();
        }
        ds
    }

    #[test]
    fn separates_linear_data() {
        let ds = separable();
        let model = LogisticRegressionTrainer::default().train(&ds);
        let acc = accuracy(&model.predict_dataset(&ds), ds.labels());
        assert!(acc > 0.98, "accuracy {acc}");
    }

    #[test]
    fn multiclass_on_planted_concept() {
        let ds =
            DatasetKind::Contraceptive.generate(&SynthConfig { n_rows: 800, ..Default::default() });
        let model = LogisticRegressionTrainer::default().train(&ds);
        let acc = accuracy(&model.predict_dataset(&ds), ds.labels());
        // Concept is partly non-linear; LR should still clearly beat chance (1/3).
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn probabilities_normalized_and_monotone() {
        let ds = separable();
        let model = LogisticRegression::fit(&ds, &LogRegParams::default());
        let p_pos = model.predict_proba(&[Value::Num(5.0), Value::Num(9.0)]);
        let p_neg = model.predict_proba(&[Value::Num(5.0), Value::Num(1.0)]);
        assert!((p_pos.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p_pos[1] > p_neg[1]);
    }

    #[test]
    fn early_stopping_on_converged_problem() {
        // A constant-label dataset converges immediately: bias dominates.
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema);
        for i in 0..20 {
            ds.push_row(&[Value::Num(i as f64)], 1).unwrap();
        }
        let model = LogisticRegression::fit(&ds, &LogRegParams::default());
        assert_eq!(model.predict(&[Value::Num(3.0)]), 1);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_train_panics() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        LogisticRegression::fit(&Dataset::new(schema), &LogRegParams::default());
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(LogisticRegressionTrainer::default().name(), "LR");
    }
}
