//! Multinomial logistic regression on one-hot encoded features.
//!
//! Stand-in for scikit-learn's `LogisticRegression`; the paper trains it with
//! default settings except `max_iter = 500`, mirrored by
//! [`LogisticRegressionTrainer::default`]. Training is full-batch gradient
//! descent on the softmax cross-entropy with L2 regularization; features are
//! z-scored and one-hot encoded by `frote_data::encode::Encoder`, so a fixed
//! step size is well behaved.

use frote_data::encode::Encoder;
use frote_data::{Dataset, FeatureMatrix, Value};

use crate::kernels;
use crate::traits::{argmax, Classifier, TrainAlgorithm, TrainCache, PREDICT_BLOCK};

/// Rows per parallel block of the full-batch gradient pass. The per-block
/// partial gradients are reduced in block order, so the block size — never
/// the thread count — defines the summation structure: results are
/// bit-identical at any `FROTE_THREADS`, and fits of at most one block
/// reproduce the pre-kernel sequential accumulation exactly.
const LR_BLOCK: usize = 512;

/// Logistic regression hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogRegParams {
    /// Gradient-descent iterations (paper: 500).
    pub max_iter: usize,
    /// Step size.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Early-stop when the gradient's infinity norm falls below this.
    pub tol: f64,
}

impl Default for LogRegParams {
    fn default() -> Self {
        LogRegParams { max_iter: 500, learning_rate: 0.5, l2: 1e-4, tol: 1e-6 }
    }
}

/// A trained multinomial logistic regression model.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    encoder: Encoder,
    /// Flat row-major weights: row `class`, columns `0..width` features with
    /// the bias last (stride `width + 1`).
    weights: FeatureMatrix,
    n_classes: usize,
}

impl LogisticRegression {
    /// Fits the model to `ds`: encodes once into a [`FeatureMatrix`] and
    /// runs full-batch gradient descent over its row views.
    ///
    /// # Panics
    ///
    /// Panics if `ds` is empty.
    pub fn fit(ds: &Dataset, params: &LogRegParams) -> Self {
        assert!(!ds.is_empty(), "cannot train on an empty dataset");
        let encoder = Encoder::fit(ds);
        let x = encoder.encode_dataset(ds);
        Self::fit_encoded(encoder, &x, ds.labels(), ds.n_classes(), params)
    }

    /// Fits from a pre-encoded matrix (the FROTE loop's incremental cache
    /// path). `encoder` must be the fit that produced `x`; given that, the
    /// result is bit-identical to [`LogisticRegression::fit`].
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or `labels.len() != x.n_rows()`.
    pub fn fit_encoded(
        encoder: Encoder,
        x: &FeatureMatrix,
        labels: &[u32],
        n_classes: usize,
        params: &LogRegParams,
    ) -> Self {
        assert!(!x.is_empty(), "cannot train on an empty dataset");
        assert_eq!(x.width(), encoder.width(), "matrix width must equal the encoder width");
        assert_eq!(labels.len(), x.n_rows(), "one label per encoded row");
        let n = x.n_rows();
        let d = encoder.width();
        let k = n_classes;
        let mut weights = FeatureMatrix::from_raw(d + 1, vec![0.0; (d + 1) * k]);
        let mut grads = FeatureMatrix::from_raw(d + 1, vec![0.0; (d + 1) * k]);
        for _ in 0..params.max_iter {
            // Per-block partial gradients over fixed LR_BLOCK row blocks,
            // reduced in block order below — the PR 4 histogram pattern, so
            // the fit is bit-identical at any `FROTE_THREADS`.
            let parts = frote_par::par_blocks_map(n, LR_BLOCK, |_, rows| {
                let mut part = vec![0.0; (d + 1) * k];
                let mut probs = vec![0.0; k];
                for i in rows {
                    let xi = x.row(i);
                    softmax_scores(&weights, xi, &mut probs);
                    let yi = labels[i];
                    for (c, &p) in probs.iter().enumerate() {
                        let err = p - f64::from(c as u32 == yi);
                        kernels::grad_update(&mut part[c * (d + 1)..(c + 1) * (d + 1)], err, xi);
                    }
                }
                vec![part]
            });
            grads.as_mut_slice().fill(0.0);
            for part in &parts {
                kernels::add_assign(grads.as_mut_slice(), part);
            }
            let inv_n = 1.0 / n as f64;
            let mut max_grad: f64 = 0.0;
            for c in 0..k {
                let (w, g) = (weights.row_mut(c), grads.row(c));
                for (j, (wj, &gj)) in w.iter_mut().zip(g).enumerate() {
                    let reg = if j < d { params.l2 * *wj } else { 0.0 };
                    let step = gj * inv_n + reg;
                    max_grad = max_grad.max(step.abs());
                    *wj -= params.learning_rate * step;
                }
            }
            if max_grad < params.tol {
                break;
            }
        }
        LogisticRegression { encoder, weights, n_classes: k }
    }

    /// The encoder fitted alongside the weights.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// [`Classifier::predict_proba_into`] with a caller-provided encode
    /// scratch, for tight loops that score many rows (no allocation per
    /// call).
    pub fn predict_proba_scratch(&self, row: &[Value], scratch: &mut Vec<f64>, out: &mut Vec<f64>) {
        self.scores_into(row, scratch, out);
    }

    /// Class probabilities for one **pre-encoded** feature row (e.g. a
    /// [`FeatureMatrix`] view from the encoder that fitted this model).
    /// Bit-identical to encoding the raw row and calling
    /// [`Classifier::predict_proba_into`].
    ///
    /// # Panics
    ///
    /// Panics if `x`'s length differs from the fitted encoder width.
    pub fn predict_proba_encoded(&self, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.encoder.width(), "encoded row width mismatch");
        out.clear();
        out.resize(self.n_classes, 0.0);
        softmax_scores(&self.weights, x, out);
    }

    fn scores_into(&self, row: &[Value], scratch: &mut Vec<f64>, out: &mut Vec<f64>) {
        self.encoder.encode_into(row, scratch);
        out.clear();
        out.resize(self.n_classes, 0.0);
        softmax_scores(&self.weights, scratch, out);
    }
}

fn softmax_scores(weights: &FeatureMatrix, x: &[f64], out: &mut [f64]) {
    let d = x.len();
    for (o, w) in out.iter_mut().zip(weights.rows()) {
        // Fold the bias in as the accumulator's initial value — the same
        // chain the scalar loop used (`z = w[d]; z += wj * xj; ...`).
        *o = kernels::dot_from(w[d], &w[..d], x);
    }
    kernels::softmax_in_place(out);
}

impl Classifier for LogisticRegression {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba_into(&self, row: &[Value], out: &mut Vec<f64>) {
        let mut scratch = Vec::with_capacity(self.encoder.width());
        self.scores_into(row, &mut scratch, out);
    }

    fn predict(&self, row: &[Value]) -> u32 {
        let mut scratch = Vec::with_capacity(self.encoder.width());
        let mut probs = Vec::with_capacity(self.n_classes);
        self.scores_into(row, &mut scratch, &mut probs);
        argmax(&probs)
    }

    /// Scratch-reusing subset scoring: one row buffer, one encode buffer,
    /// and one probability buffer per parallel chunk.
    fn predict_rows(&self, ds: &Dataset, rows: &[usize]) -> Vec<u32> {
        frote_par::par_chunks_map(rows, PREDICT_BLOCK, |_, chunk| {
            let mut row = Vec::with_capacity(ds.n_features());
            let mut scratch = Vec::with_capacity(self.encoder.width());
            let mut probs = Vec::with_capacity(self.n_classes);
            let mut out = Vec::with_capacity(chunk.len());
            for &i in chunk {
                ds.row_into(i, &mut row);
                self.scores_into(&row, &mut scratch, &mut probs);
                out.push(argmax(&probs));
            }
            out
        })
    }

    /// Encodes the dataset once and scores matrix row views in parallel —
    /// no per-row encode or `Dataset::row` allocation.
    fn predict_dataset(&self, ds: &Dataset) -> Vec<u32> {
        let x = self.encoder.encode_dataset(ds);
        frote_par::par_blocks_map(x.n_rows(), PREDICT_BLOCK, |_, rows| {
            let mut probs = vec![0.0; self.n_classes];
            let mut out = Vec::with_capacity(rows.len());
            for i in rows {
                softmax_scores(&self.weights, x.row(i), &mut probs);
                out.push(argmax(&probs));
            }
            out
        })
    }
}

/// Trainer wrapper implementing [`TrainAlgorithm`]. The paper's "LR".
#[derive(Debug, Clone, Default)]
pub struct LogisticRegressionTrainer {
    params: LogRegParams,
}

impl LogisticRegressionTrainer {
    /// Creates a trainer with explicit parameters.
    pub fn new(params: LogRegParams) -> Self {
        LogisticRegressionTrainer { params }
    }

    /// The parameters.
    pub fn params(&self) -> &LogRegParams {
        &self.params
    }
}

impl TrainAlgorithm for LogisticRegressionTrainer {
    fn train(&self, ds: &Dataset) -> Box<dyn Classifier> {
        Box::new(LogisticRegression::fit(ds, &self.params))
    }

    /// Retrains off the loop's [`TrainCache`]: base rows are encoded once
    /// into the cache's [`frote_data::EncodedCache`] and only appended rows
    /// are encoded per iteration (a moved numeric fit re-encodes, keeping
    /// the cache exact by construction) — bit-identical to
    /// [`LogisticRegressionTrainer::train`] either way.
    fn train_cached(&self, ds: &Dataset, cache: &mut TrainCache) -> Box<dyn Classifier> {
        assert!(!ds.is_empty(), "cannot train on an empty dataset");
        let encoded = cache.encoded(ds);
        Box::new(LogisticRegression::fit_encoded(
            encoded.encoder().clone(),
            encoded.matrix(),
            ds.labels(),
            ds.n_classes(),
            &self.params,
        ))
    }

    fn name(&self) -> &str {
        "LR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use frote_data::synth::{DatasetKind, SynthConfig};
    use frote_data::{Schema, Value};

    fn separable() -> Dataset {
        let schema = Schema::builder("y", vec!["neg".into(), "pos".into()])
            .numeric("x1")
            .numeric("x2")
            .build();
        let mut ds = Dataset::new(schema);
        for i in 0..100 {
            let t = i as f64 / 10.0;
            ds.push_row(&[Value::Num(t), Value::Num(t + 1.0)], 1).unwrap();
            ds.push_row(&[Value::Num(t), Value::Num(t - 1.0)], 0).unwrap();
        }
        ds
    }

    #[test]
    fn separates_linear_data() {
        let ds = separable();
        let model = LogisticRegressionTrainer::default().train(&ds);
        let acc = accuracy(&model.predict_dataset(&ds), ds.labels());
        assert!(acc > 0.98, "accuracy {acc}");
    }

    #[test]
    fn multiclass_on_planted_concept() {
        let ds =
            DatasetKind::Contraceptive.generate(&SynthConfig { n_rows: 800, ..Default::default() });
        let model = LogisticRegressionTrainer::default().train(&ds);
        let acc = accuracy(&model.predict_dataset(&ds), ds.labels());
        // Concept is partly non-linear; LR should still clearly beat chance (1/3).
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn probabilities_normalized_and_monotone() {
        let ds = separable();
        let model = LogisticRegression::fit(&ds, &LogRegParams::default());
        let p_pos = model.predict_proba(&[Value::Num(5.0), Value::Num(9.0)]);
        let p_neg = model.predict_proba(&[Value::Num(5.0), Value::Num(1.0)]);
        assert!((p_pos.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p_pos[1] > p_neg[1]);
    }

    #[test]
    fn early_stopping_on_converged_problem() {
        // A constant-label dataset converges immediately: bias dominates.
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema);
        for i in 0..20 {
            ds.push_row(&[Value::Num(i as f64)], 1).unwrap();
        }
        let model = LogisticRegression::fit(&ds, &LogRegParams::default());
        assert_eq!(model.predict(&[Value::Num(3.0)]), 1);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_train_panics() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        LogisticRegression::fit(&Dataset::new(schema), &LogRegParams::default());
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(LogisticRegressionTrainer::default().name(), "LR");
    }

    #[test]
    fn cached_training_matches_uncached_across_appends() {
        use crate::traits::TrainCache;
        let mut ds = separable();
        let trainer = LogisticRegressionTrainer::default();
        let mut cache = TrainCache::new();
        for round in 0..3 {
            let cached = trainer.train_cached(&ds, &mut cache);
            let fresh = trainer.train(&ds);
            assert_eq!(cached.predict_dataset(&ds), fresh.predict_dataset(&ds), "round {round}");
            // Probabilities must match bit for bit, not just argmax.
            for i in (0..ds.n_rows()).step_by(37) {
                let (a, b) = (cached.predict_proba(&ds.row(i)), fresh.predict_proba(&ds.row(i)));
                let same = a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits());
                assert!(same, "round {round} row {i}: {a:?} vs {b:?}");
            }
            // Grow the dataset: numeric stats move, so the cache re-encodes.
            for i in 0..15 {
                ds.push_row(&[Value::Num(20.0 + i as f64), Value::Num(i as f64)], i % 2).unwrap();
            }
        }
    }

    #[test]
    fn cached_training_rolls_back_rejected_rows() {
        use crate::traits::TrainCache;
        let ds = separable();
        let trainer = LogisticRegressionTrainer::default();
        let mut cache = TrainCache::new();
        let _ = trainer.train_cached(&ds, &mut cache);
        // Candidate rows appear, get encoded, then are rejected (the FROTE
        // loop trains on a clone and truncates the cache on rejection).
        let mut candidate = ds.clone();
        candidate.push_row(&[Value::Num(50.0), Value::Num(50.0)], 1).unwrap();
        let _ = trainer.train_cached(&candidate, &mut cache);
        cache.truncate(ds.n_rows());
        let cached = trainer.train_cached(&ds, &mut cache);
        let fresh = trainer.train(&ds);
        assert_eq!(cached.predict_dataset(&ds), fresh.predict_dataset(&ds));
    }
}
