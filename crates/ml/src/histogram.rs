//! Histogram split search over quantized bin codes.
//!
//! The training-side counterpart of [`frote_data::binned`]: instead of
//! sorting raw `f64` columns at every node, trees in
//! [`SplitMode::Histogram`] build per-feature class/gradient histograms with
//! one linear pass over the node's rows (in parallel over fixed row blocks,
//! reduced in block order so results are bit-identical at any
//! `FROTE_THREADS`), scan bin boundaries for the best split, and derive each
//! larger sibling's histogram by subtraction from its parent. Split tests
//! are emitted as raw-value [`SplitTest`]s (bin edges double as thresholds),
//! so histogram-trained models predict on unbinned rows exactly like
//! exact-mode models.
//!
//! With a bin budget at least as large as the number of distinct values,
//! the histogram search evaluates the same candidate partitions in the same
//! order as the exact search and therefore reproduces its decisions node for
//! node (pinned by `tests/prop_hist_split.rs`).
//!
//! # Shard-aware builds
//!
//! Class histograms are built per row shard (the
//! [`frote_data::sharded::shard_rows`] resolver partitions node index lists
//! into shard runs) and merged in fixed shard order. Class counts are
//! integers held exactly in `f64`, so the per-shard regrouping is bitwise
//! identical to the unsharded build at **any** shard size and any
//! `FROTE_THREADS` (pinned by `tests/prop_sharded.rs`). Gradient histograms
//! accumulate true `f64` sums, where regrouping would move bits, so
//! `HistContext::reg_hist` keeps the shard-agnostic fixed `HIST_BLOCK`
//! reduction — the existing GBDT goldens hold at every
//! shard size by construction. Wide schemas additionally build
//! feature-parallel (each parallel task owns a block of features and its
//! whole bin slice — zero shared writes), which preserves the per-slot
//! reduction order exactly and is therefore bit-identical too.

use std::sync::atomic::{AtomicUsize, Ordering};

use frote_data::{BinnedMatrix, Binner};
use frote_obs::Counter;

use crate::tree::SplitTest;

/// Rows per parallel block when building node histograms. Partial
/// histograms are reduced in block order, so boundaries never affect the
/// result, only the schedule.
const HIST_BLOCK: usize = 1024;

/// Candidate-feature count from which class/gradient histograms build
/// feature-parallel (each task owns a feature block and its bin slice)
/// instead of only row-parallel. Both layouts reduce every bin slot in the
/// same order, so the gate is a pure scheduling heuristic.
const FEATURE_PAR_MIN: usize = 16;

/// Features per parallel task in the feature-parallel build.
const FEATURE_BLOCK: usize = 8;

// Histogram-plane metrics (see frote-obs). All thread-invariant: node
// counts, subtraction hits, zeroed-bin totals, and shard merges are
// functions of the data and the fixed HIST_BLOCK / shard-size chunking,
// never of the schedule.
static NODES_BUILT: Counter = Counter::new("hist.nodes_built");
static SIBLING_SUBTRACTIONS: Counter = Counter::new("hist.sibling_subtractions");
static BINS_ZEROED: Counter = Counter::new("hist.bins_zeroed");
pub(crate) static SHARD_MERGES: Counter = Counter::new("shard.merged");

/// Default bin budget of [`SplitMode::histogram`]: double the exact search's
/// per-node threshold cap, and small enough for `u8` codes.
pub const DEFAULT_MAX_BINS: usize = 64;

/// GOSS (gradient-based one-side sampling) knobs for
/// [`SplitMode::Goss`]. Fractions are stored in permille so the mode stays
/// `Copy + Eq + Hash` like every other [`SplitMode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GossParams {
    /// Permille (`0..=1000`) of rows kept outright — the largest
    /// `|gradient|` rows (LightGBM's `a`).
    pub top_permille: u16,
    /// Permille (`0..=1000`) of the *remaining* rows sampled uniformly per
    /// shard (LightGBM's `b`). Must be positive.
    pub rest_permille: u16,
    /// Base seed of the per-shard `SeedSplit` sampling streams.
    pub seed: u64,
}

impl GossParams {
    /// LightGBM's defaults: keep the top 20% by `|gradient|`, sample 10% of
    /// the rest.
    pub const fn new(seed: u64) -> GossParams {
        GossParams { top_permille: 200, rest_permille: 100, seed }
    }

    /// `a`: fraction of rows kept outright.
    pub fn top_fraction(self) -> f64 {
        f64::from(self.top_permille) / 1000.0
    }

    /// `b`: sampling fraction over the non-top rows.
    pub fn rest_fraction(self) -> f64 {
        f64::from(self.rest_permille) / 1000.0
    }

    /// `(1 - a) / b`: the weight amplifier applied to sampled small-gradient
    /// rows so histogram totals stay unbiased.
    pub fn amplify(self) -> f64 {
        (1.0 - self.top_fraction()) / self.rest_fraction()
    }

    fn valid(self) -> bool {
        self.top_permille <= 1000 && self.rest_permille >= 1 && self.rest_permille <= 1000
    }
}

/// How tree trainers search for splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SplitMode {
    /// Per-node sorts of raw values with quantile-thinned thresholds — the
    /// seed behaviour, and the default (golden pins depend on it).
    #[default]
    Exact,
    /// Quantized histogram search over a shared [`BinnedMatrix`].
    Histogram {
        /// Per-feature bin budget (at least 2).
        max_bins: usize,
    },
    /// Histogram search plus GOSS row sampling on the boosting gradient
    /// plane: each round keeps the top `a·N` rows by `|gradient|`, samples
    /// `b·N` of the rest deterministically per shard, and upweights the
    /// sampled rows by `(1 - a) / b`. Classification trees (which have no
    /// gradients) train exactly like [`SplitMode::Histogram`].
    Goss {
        /// Per-feature bin budget (at least 2).
        max_bins: usize,
        /// Row-sampling fractions and seed.
        goss: GossParams,
    },
}

impl SplitMode {
    /// Histogram mode with the [`DEFAULT_MAX_BINS`] budget.
    pub fn histogram() -> SplitMode {
        SplitMode::Histogram { max_bins: DEFAULT_MAX_BINS }
    }

    /// GOSS mode with the [`DEFAULT_MAX_BINS`] budget and default fractions.
    pub fn goss(seed: u64) -> SplitMode {
        SplitMode::Goss { max_bins: DEFAULT_MAX_BINS, goss: GossParams::new(seed) }
    }

    /// Whether this mode trains on the quantized histogram plane.
    pub fn is_histogram(self) -> bool {
        matches!(self, SplitMode::Histogram { .. } | SplitMode::Goss { .. })
    }

    /// Per-feature bin budget, when on the histogram plane.
    pub fn max_bins(self) -> Option<usize> {
        match self {
            SplitMode::Exact => None,
            SplitMode::Histogram { max_bins } | SplitMode::Goss { max_bins, .. } => Some(max_bins),
        }
    }

    /// Parses `"exact"`, `"histogram"`, `"histogram:<max_bins>"`, `"goss"`,
    /// or `"goss:<max_bins>:<top_permille>:<rest_permille>:<seed>"`
    /// (case-insensitive).
    pub fn parse(s: &str) -> Option<SplitMode> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "exact" => Some(SplitMode::Exact),
            "histogram" => Some(SplitMode::histogram()),
            "goss" => Some(SplitMode::goss(0)),
            _ => {
                if let Some(rest) = lower.strip_prefix("goss:") {
                    let parts: Vec<&str> = rest.split(':').collect();
                    let [bins, top, rest_p, seed] = parts.as_slice() else { return None };
                    let max_bins: usize = bins.parse().ok()?;
                    let goss = GossParams {
                        top_permille: top.parse().ok()?,
                        rest_permille: rest_p.parse().ok()?,
                        seed: seed.parse().ok()?,
                    };
                    return (max_bins >= 2 && goss.valid())
                        .then_some(SplitMode::Goss { max_bins, goss });
                }
                let bins: usize = lower.strip_prefix("histogram:")?.parse().ok()?;
                (bins >= 2).then_some(SplitMode::Histogram { max_bins: bins })
            }
        }
    }

    /// Display form accepted back by [`SplitMode::parse`].
    pub fn name(self) -> String {
        match self {
            SplitMode::Exact => "exact".to_string(),
            SplitMode::Histogram { max_bins } => format!("histogram:{max_bins}"),
            SplitMode::Goss { max_bins, goss } => format!(
                "goss:{max_bins}:{}:{}:{}",
                goss.top_permille, goss.rest_permille, goss.seed
            ),
        }
    }
}

/// Process-wide default split mode picked up by `TreeParams::default` /
/// `GbdtParams::default` (0 = exact, n >= 2 = histogram with `max_bins` n) —
/// the `--split-mode` counterpart of `frote_par::set_threads`.
static SPLIT_MODE_DEFAULT: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default [`SplitMode`] that freshly constructed
/// `TreeParams` / `GbdtParams` (and everything built from their defaults)
/// pick up — how the repro binaries' `--split-mode` flag reaches trainers
/// constructed deep inside the experiment harness. Explicitly constructed
/// params are unaffected.
pub fn set_default_split_mode(mode: SplitMode) {
    let encoded = match mode {
        SplitMode::Exact => 0,
        SplitMode::Histogram { max_bins } => {
            assert!(max_bins >= 2, "max_bins must be at least 2");
            max_bins
        }
        SplitMode::Goss { .. } => {
            panic!("GOSS cannot be the process-wide default; set it on the params explicitly")
        }
    };
    SPLIT_MODE_DEFAULT.store(encoded, Ordering::Relaxed);
}

/// The process-wide default [`SplitMode`] (see [`set_default_split_mode`]);
/// [`SplitMode::Exact`] unless overridden.
pub fn default_split_mode() -> SplitMode {
    match SPLIT_MODE_DEFAULT.load(Ordering::Relaxed) {
        0 => SplitMode::Exact,
        n => SplitMode::Histogram { max_bins: n },
    }
}

/// A chosen split in bin space. Converted to a raw-value [`SplitTest`] for
/// the stored tree via [`HistContext::to_split_test`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum BinSplit {
    /// Go left when `code(row, feature) <= bin` (numeric boundary).
    NumLe { feature: usize, bin: usize },
    /// Go left when `code(row, feature) == bin` (categorical one-vs-rest).
    CatEq { feature: usize, bin: usize },
}

/// Shared per-fit view of the quantized plane: the fitted binner, the code
/// matrix, and the flat histogram layout (per-feature bin offsets).
pub(crate) struct HistContext<'a> {
    binner: &'a Binner,
    codes: &'a BinnedMatrix,
    /// `offsets[f]` = first flat bin slot of feature `f`.
    offsets: Vec<usize>,
    /// Total bin slots across all features.
    total_bins: usize,
}

impl<'a> HistContext<'a> {
    /// Builds the layout for one fit. The codes must come from `binner`.
    pub(crate) fn new(binner: &'a Binner, codes: &'a BinnedMatrix) -> Self {
        assert_eq!(binner.n_features(), codes.width(), "binner/codes width mismatch");
        let mut offsets = Vec::with_capacity(binner.n_features());
        let mut total = 0usize;
        for f in 0..binner.n_features() {
            offsets.push(total);
            total += binner.n_bins(f);
        }
        HistContext { binner, codes, offsets, total_bins: total }
    }

    pub(crate) fn n_features(&self) -> usize {
        self.binner.n_features()
    }

    pub(crate) fn n_bins(&self, f: usize) -> usize {
        self.binner.n_bins(f)
    }

    #[inline]
    fn slot(&self, i: usize, f: usize) -> usize {
        self.offsets[f] + self.codes.code(i, f)
    }

    /// Whether the row goes to the left child of `split`.
    #[inline]
    pub(crate) fn goes_left(&self, i: usize, split: BinSplit) -> bool {
        match split {
            BinSplit::NumLe { feature, bin } => self.codes.code(i, feature) <= bin,
            BinSplit::CatEq { feature, bin } => self.codes.code(i, feature) == bin,
        }
    }

    /// Converts a bin-space split into the raw-value test stored in trees.
    pub(crate) fn to_split_test(&self, split: BinSplit) -> SplitTest {
        match split {
            BinSplit::NumLe { feature, bin } => {
                SplitTest::NumLe { feature, threshold: self.binner.threshold(feature, bin) }
            }
            BinSplit::CatEq { feature, bin } => SplitTest::CatEq { feature, category: bin as u32 },
        }
    }

    /// Compact candidate layout for a node's sampled `features`: the flat
    /// bin offset of each candidate (parallel to `features`, in the given —
    /// possibly shuffled — order) and the total candidate slot count. Under
    /// RF's √F per-node subsampling this is what lets a node allocate, zero,
    /// and reduce only the sampled features' bins instead of the full
    /// `total_bins × n_classes` buffer; with `features = 0..n_features()`
    /// it degenerates to the full layout (`offsets() == candidate offsets`),
    /// which is what keeps sibling subtraction valid.
    pub(crate) fn candidate_layout(&self, features: &[usize]) -> (Vec<usize>, usize) {
        debug_assert!(
            {
                let mut seen = vec![false; self.n_features()];
                features.iter().all(|&f| !std::mem::replace(&mut seen[f], true))
            },
            "candidate features must be distinct"
        );
        let mut offsets = Vec::with_capacity(features.len());
        let mut total = 0usize;
        for &f in features {
            offsets.push(total);
            total += self.n_bins(f);
        }
        (offsets, total)
    }

    /// Per-(candidate-feature, bin, class) counts for the node's rows over
    /// `features`, as one flat compact buffer laid out by
    /// [`HistContext::candidate_layout`] — only the sampled features'
    /// `Σ n_bins(f) × n_classes` slots exist, so nothing is allocated,
    /// zeroed, or reduced for unsampled features. Built in parallel over
    /// fixed row blocks and reduced in block order (bit-identical at any
    /// thread count; counts are exact integers).
    pub(crate) fn class_hist(
        &self,
        labels: &[u32],
        indices: &[usize],
        features: &[usize],
        n_classes: usize,
    ) -> Vec<f64> {
        let (offsets, total) = self.candidate_layout(features);
        let size = total * n_classes;
        NODES_BUILT.inc();
        let runs = frote_data::sharded::shard_runs(indices, frote_data::sharded::shard_rows());
        let hist = if runs.len() > 1 {
            // Per-shard partials merged in shard order. Class counts are
            // exact integers, so regrouping by shard cannot move a bit.
            self.build_hist_runs(&runs, indices, size, |i, h| {
                let y = labels[i] as usize;
                for (p, &f) in features.iter().enumerate() {
                    h[(offsets[p] + self.codes.code(i, f)) * n_classes + y] += 1.0;
                }
            })
        } else if features.len() >= FEATURE_PAR_MIN && indices.len() > HIST_BLOCK {
            let mut starts: Vec<usize> = offsets.iter().map(|o| o * n_classes).collect();
            starts.push(size);
            self.build_hist_featpar(indices, &starts, |i, positions, base, h| {
                let y = labels[i] as usize;
                for p in positions {
                    let f = features[p];
                    h[(offsets[p] + self.codes.code(i, f)) * n_classes + y - base] += 1.0;
                }
            })
        } else {
            self.build_hist(indices, size, |i, h| {
                let y = labels[i] as usize;
                for (p, &f) in features.iter().enumerate() {
                    h[(offsets[p] + self.codes.code(i, f)) * n_classes + y] += 1.0;
                }
            })
        };
        // Every sampled feature's bins partition the node's rows; together
        // with the compact allocation this proves no slot outside the
        // sampled features' blocks was ever written (there are none).
        debug_assert!(
            features.iter().enumerate().all(|(p, &f)| {
                let block =
                    &hist[offsets[p] * n_classes..(offsets[p] + self.n_bins(f)) * n_classes];
                block.iter().sum::<f64>() == indices.len() as f64
            }),
            "candidate histogram blocks must each count every node row exactly once"
        );
        hist
    }

    /// Per-(feature, bin) `(count, target-sum)` pairs for the node's rows,
    /// as one flat `total_bins * 2` buffer (stride 2), built like
    /// [`HistContext::class_hist`]. Gradient sums are floats, so the
    /// fixed-order block reduction is what keeps them thread-count-invariant.
    pub(crate) fn reg_hist(&self, targets: &[f64], indices: &[usize]) -> Vec<f64> {
        let size = self.total_bins * 2;
        NODES_BUILT.inc();
        if self.n_features() >= FEATURE_PAR_MIN && indices.len() > HIST_BLOCK {
            let mut starts: Vec<usize> = self.offsets.iter().map(|o| o * 2).collect();
            starts.push(size);
            self.build_hist_featpar(indices, &starts, |i, positions, base, h| {
                let t = targets[i];
                for f in positions {
                    let s = self.slot(i, f) * 2 - base;
                    h[s] += 1.0;
                    h[s + 1] += t;
                }
            })
        } else {
            self.build_hist(indices, size, |i, h| {
                let t = targets[i];
                for f in 0..self.n_features() {
                    let s = self.slot(i, f) * 2;
                    h[s] += 1.0;
                    h[s + 1] += t;
                }
            })
        }
    }

    /// [`HistContext::reg_hist`] with a per-row weight plane (the GOSS
    /// `(1 - a) / b` amplifier): counts accumulate `w`, target sums `w·t`.
    /// With all weights at `1.0` this is NOT bit-guaranteed to equal
    /// `reg_hist` (the multiply may round differently from the plain add
    /// path is a non-issue — `1.0 * t == t` exactly — but the dispatch
    /// differs), so the unweighted path stays the default everywhere GOSS
    /// is off.
    pub(crate) fn reg_hist_weighted(
        &self,
        targets: &[f64],
        weights: &[f64],
        indices: &[usize],
    ) -> Vec<f64> {
        let size = self.total_bins * 2;
        NODES_BUILT.inc();
        self.build_hist(indices, size, |i, h| {
            let w = weights[i];
            let wt = w * targets[i];
            for f in 0..self.n_features() {
                let s = self.slot(i, f) * 2;
                h[s] += w;
                h[s + 1] += wt;
            }
        })
    }

    fn build_hist(
        &self,
        indices: &[usize],
        size: usize,
        accumulate: impl Fn(usize, &mut [f64]) + Sync,
    ) -> Vec<f64> {
        let parts = frote_par::par_chunks_map(indices, HIST_BLOCK, |_, chunk| {
            BINS_ZEROED.add(size as u64);
            let mut h = vec![0.0; size];
            for &i in chunk {
                accumulate(i, &mut h);
            }
            vec![h]
        });
        let mut parts = parts.into_iter();
        let mut acc = parts.next().unwrap_or_else(|| {
            BINS_ZEROED.add(size as u64);
            vec![0.0; size]
        });
        for part in parts {
            for (a, p) in acc.iter_mut().zip(&part) {
                *a += p;
            }
        }
        acc
    }

    /// Shard-order build: one serial partial per shard run (the runs come
    /// from [`frote_data::sharded::shard_runs`], computed in parallel),
    /// merged left-to-right in run order with `kernels::add_assign`. Only
    /// used for integer-count histograms, where the regrouping is exact.
    fn build_hist_runs(
        &self,
        runs: &[(usize, std::ops::Range<usize>)],
        indices: &[usize],
        size: usize,
        accumulate: impl Fn(usize, &mut [f64]) + Sync,
    ) -> Vec<f64> {
        let parts = frote_par::par_map(runs, |(_, range)| {
            BINS_ZEROED.add(size as u64);
            let mut h = vec![0.0; size];
            for &i in &indices[range.clone()] {
                accumulate(i, &mut h);
            }
            h
        });
        let mut parts = parts.into_iter();
        let mut acc = parts.next().expect("shard-run build needs at least one run");
        for part in parts {
            SHARD_MERGES.inc();
            crate::kernels::add_assign(&mut acc, &part);
        }
        acc
    }

    /// Feature-parallel build for wide schemas: each parallel task owns a
    /// block of candidate positions and that block's whole slice of bin
    /// slots (`starts` maps position → first flat slot; `starts.len()` is
    /// positions + 1), so there are zero shared writes. Within a block the
    /// rows are chunked by the same fixed [`HIST_BLOCK`] as the row-parallel
    /// build and the first chunk accumulates straight into the zeroed
    /// output buffer, so every slot sees the exact per-chunk addition
    /// sequence of [`HistContext::build_hist`] — bit-identical, including
    /// signed zeros.
    fn build_hist_featpar(
        &self,
        indices: &[usize],
        starts: &[usize],
        accumulate: impl Fn(usize, std::ops::Range<usize>, usize, &mut [f64]) + Sync,
    ) -> Vec<f64> {
        let n_pos = starts.len() - 1;
        let size = *starts.last().unwrap();
        let blocks: Vec<std::ops::Range<usize>> =
            (0..n_pos).step_by(FEATURE_BLOCK).map(|p| p..(p + FEATURE_BLOCK).min(n_pos)).collect();
        let parts = frote_par::par_map(&blocks, |block| {
            let base = starts[block.start];
            let len = starts[block.end] - base;
            BINS_ZEROED.add(len as u64);
            let mut acc = vec![0.0; len];
            let mut chunks = indices.chunks(HIST_BLOCK);
            if let Some(chunk) = chunks.next() {
                for &i in chunk {
                    accumulate(i, block.clone(), base, &mut acc);
                }
            }
            let mut part = vec![0.0; len];
            for chunk in chunks {
                BINS_ZEROED.add(len as u64);
                part.fill(0.0);
                for &i in chunk {
                    accumulate(i, block.clone(), base, &mut part);
                }
                crate::kernels::add_assign(&mut acc, &part);
            }
            acc
        });
        let mut out = Vec::with_capacity(size);
        for part in parts {
            out.extend_from_slice(&part);
        }
        out
    }

    /// `parent -= child` elementwise: after the call, `parent` holds the
    /// sibling's histogram. Counts stay exact; gradient sums stay
    /// deterministic (both operands are).
    pub(crate) fn subtract_hist(parent: &mut [f64], child: &[f64]) {
        SIBLING_SUBTRACTIONS.inc();
        for (p, c) in parent.iter_mut().zip(child) {
            *p -= c;
        }
    }

    /// Gini-optimal split over `features` read from a compact candidate
    /// histogram (the [`HistContext::class_hist`] layout) — the quantized
    /// mirror of the exact `find_best_split`: same candidate order (features
    /// as given; boundaries ascending), same strict-`<` tie-breaking, same
    /// `min_leaf` and minimum-gain filters. The layout remap cannot move a
    /// decision: each feature's block holds the same counts at the same
    /// within-feature positions as the full layout did.
    pub(crate) fn find_best_split(
        &self,
        hist: &[f64],
        features: &[usize],
        parent_counts: &[f64],
        n_classes: usize,
        min_leaf: usize,
    ) -> Option<BinSplit> {
        let (offsets, total) = self.candidate_layout(features);
        debug_assert_eq!(hist.len(), total * n_classes, "histogram/layout size mismatch");
        let n: f64 = parent_counts.iter().sum();
        let parent_gini = gini(parent_counts, n);
        let mut best: Option<(f64, BinSplit)> = None;
        let mut left_counts = vec![0.0; n_classes];
        for (p, &f) in features.iter().enumerate() {
            let bins = self.n_bins(f);
            let base = offsets[p];
            let feature_best = if self.binner.is_numeric(f) {
                self.best_numeric(hist, f, base, bins, parent_counts, &mut left_counts, min_leaf, n)
            } else {
                self.best_categorical(hist, f, base, bins, parent_counts, min_leaf, n)
            };
            if let Some((child_gini, split)) = feature_best {
                let gain = parent_gini - child_gini;
                if gain > 1e-12 && best.as_ref().is_none_or(|(bg, _)| child_gini < *bg) {
                    best = Some((child_gini, split));
                }
            }
        }
        best.map(|(_, s)| s)
    }

    /// Scans the numeric boundaries of feature `f` left to right,
    /// accumulating per-class counts — one pass over `bins * n_classes`
    /// histogram slots instead of a sort of the node's rows.
    #[allow(clippy::too_many_arguments)] // flat hot-loop state, called from one site
    fn best_numeric(
        &self,
        hist: &[f64],
        feature: usize,
        base: usize,
        bins: usize,
        parent_counts: &[f64],
        left_counts: &mut [f64],
        min_leaf: usize,
        n: f64,
    ) -> Option<(f64, BinSplit)> {
        let n_classes = parent_counts.len();
        left_counts.fill(0.0);
        let mut left_total = 0.0;
        let mut best: Option<(f64, BinSplit)> = None;
        for b in 0..bins.saturating_sub(1) {
            let row = &hist[(base + b) * n_classes..(base + b + 1) * n_classes];
            for (l, &c) in left_counts.iter_mut().zip(row) {
                *l += c;
                left_total += c;
            }
            if (left_total as usize) < min_leaf || ((n - left_total) as usize) < min_leaf {
                continue;
            }
            let right_total = n - left_total;
            let right_counts: Vec<f64> =
                parent_counts.iter().zip(left_counts.iter()).map(|(p, l)| p - l).collect();
            let child = (left_total * gini(left_counts, left_total)
                + right_total * gini(&right_counts, right_total))
                / n;
            if best.as_ref().is_none_or(|(bg, _)| child < *bg) {
                best = Some((child, BinSplit::NumLe { feature, bin: b }));
            }
        }
        best
    }

    /// One-vs-rest scan over categorical bins — identical arithmetic to the
    /// exact categorical search (categories are already bins).
    #[allow(clippy::too_many_arguments)] // flat hot-loop state, called from one site
    fn best_categorical(
        &self,
        hist: &[f64],
        feature: usize,
        base: usize,
        bins: usize,
        parent_counts: &[f64],
        min_leaf: usize,
        n: f64,
    ) -> Option<(f64, BinSplit)> {
        let n_classes = parent_counts.len();
        let mut best: Option<(f64, BinSplit)> = None;
        for b in 0..bins {
            let row = &hist[(base + b) * n_classes..(base + b + 1) * n_classes];
            let left_total: f64 = row.iter().sum();
            let right_total = n - left_total;
            if (left_total as usize) < min_leaf || (right_total as usize) < min_leaf {
                continue;
            }
            let right_counts: Vec<f64> =
                parent_counts.iter().zip(row).map(|(p, l)| p - l).collect();
            let child = (left_total * gini(row, left_total)
                + right_total * gini(&right_counts, right_total))
                / n;
            if best.as_ref().is_none_or(|(bg, _)| child < *bg) {
                best = Some((child, BinSplit::CatEq { feature, bin: b }));
            }
        }
        best
    }

    /// Variance-reduction split from a regression histogram — the quantized
    /// mirror of the exact `best_regression_split`: maximize
    /// `left² / left_n + right² / right_n`, strict-`>` first-wins
    /// tie-breaking, and the same `base + 1e-9` improvement filter.
    pub(crate) fn find_best_regression_split(
        &self,
        hist: &[f64],
        n: f64,
        total: f64,
        min_leaf: usize,
    ) -> Option<BinSplit> {
        let mut best: Option<(f64, BinSplit)> = None;
        for f in 0..self.n_features() {
            let bins = self.n_bins(f);
            let base = self.offsets[f];
            if self.binner.is_numeric(f) {
                let mut left_n = 0.0;
                let mut left_sum = 0.0;
                for b in 0..bins.saturating_sub(1) {
                    left_n += hist[(base + b) * 2];
                    left_sum += hist[(base + b) * 2 + 1];
                    if (left_n as usize) < min_leaf || ((n - left_n) as usize) < min_leaf {
                        continue;
                    }
                    let right_sum = total - left_sum;
                    let score = left_sum * left_sum / left_n + right_sum * right_sum / (n - left_n);
                    if best.as_ref().is_none_or(|(s, _)| score > *s) {
                        best = Some((score, BinSplit::NumLe { feature: f, bin: b }));
                    }
                }
            } else {
                for b in 0..bins {
                    let bin_n = hist[(base + b) * 2];
                    let bin_sum = hist[(base + b) * 2 + 1];
                    if (bin_n as usize) < min_leaf || ((n - bin_n) as usize) < min_leaf {
                        continue;
                    }
                    let right_sum = total - bin_sum;
                    let score = bin_sum * bin_sum / bin_n + right_sum * right_sum / (n - bin_n);
                    if best.as_ref().is_none_or(|(s, _)| score > *s) {
                        best = Some((score, BinSplit::CatEq { feature: f, bin: b }));
                    }
                }
            }
        }
        let base_score = total * total / n;
        best.filter(|(s, _)| *s > base_score + 1e-9).map(|(_, s)| s)
    }
}

/// Gini impurity of a count vector with the given total (0 for empty sets) —
/// shared with the exact search so both modes score identically.
pub(crate) fn gini(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts.iter().map(|&c| (c / total) * (c / total)).sum::<f64>()
}

/// Builds one node's candidate-feature class histogram and returns it in
/// candidate order (one `n_bins(f) × n_classes` block per entry of
/// `features`). With `compact = true` this is the production
/// [`HistContext::class_hist`] path; with `compact = false` it reproduces
/// the pre-compact baseline — allocate, zero, and reduce the **full**
/// `total_bins × n_classes` buffer even though only the sampled features'
/// slots are written — and then gathers the sampled blocks so both modes
/// return identical values. Kept (hidden) as the measured baseline of the
/// `rf_hist_subsample` perfsmoke probe and the layout-equivalence tests.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)] // bench-harness entry point, not API
pub fn subsample_hist_probe(
    binner: &Binner,
    codes: &BinnedMatrix,
    labels: &[u32],
    indices: &[usize],
    features: &[usize],
    n_classes: usize,
    compact: bool,
) -> Vec<f64> {
    let ctx = HistContext::new(binner, codes);
    if compact {
        return ctx.class_hist(labels, indices, features, n_classes);
    }
    // The pre-compact full layout, verbatim: every feature's slots exist
    // and the whole buffer is zeroed and block-reduced.
    let size = ctx.total_bins * n_classes;
    let full = ctx.build_hist(indices, size, |i, h| {
        let y = labels[i] as usize;
        for &f in features {
            h[ctx.slot(i, f) * n_classes + y] += 1.0;
        }
    });
    let mut gathered = Vec::new();
    for &f in features {
        let base = ctx.offsets[f];
        gathered.extend_from_slice(&full[base * n_classes..(base + ctx.n_bins(f)) * n_classes]);
    }
    gathered
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::synth::{DatasetKind, SynthConfig};
    use frote_data::{Dataset, Schema, Value};

    fn two_feature_ds() -> Dataset {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .numeric("x")
            .categorical("k", vec!["p".into(), "q".into(), "r".into()])
            .build();
        let mut ds = Dataset::new(schema);
        for i in 0..30 {
            let label = u32::from(i >= 15);
            ds.push_row(&[Value::Num(i as f64), Value::Cat(i % 3)], label).unwrap();
        }
        ds
    }

    #[test]
    fn split_mode_parse_round_trip() {
        assert_eq!(SplitMode::parse("exact"), Some(SplitMode::Exact));
        assert_eq!(SplitMode::parse("HISTOGRAM"), Some(SplitMode::histogram()));
        assert_eq!(SplitMode::parse("histogram:128"), Some(SplitMode::Histogram { max_bins: 128 }));
        assert_eq!(SplitMode::parse("histogram:1"), None, "budget below 2 rejected");
        assert_eq!(SplitMode::parse("sorted"), None);
        assert_eq!(SplitMode::parse("GOSS"), Some(SplitMode::goss(0)));
        assert_eq!(
            SplitMode::parse("goss:32:300:150:7"),
            Some(SplitMode::Goss {
                max_bins: 32,
                goss: GossParams { top_permille: 300, rest_permille: 150, seed: 7 },
            })
        );
        assert_eq!(SplitMode::parse("goss:1:200:100:0"), None, "budget below 2 rejected");
        assert_eq!(SplitMode::parse("goss:32:200:0:0"), None, "zero sampling fraction rejected");
        assert_eq!(SplitMode::parse("goss:32:1001:100:0"), None, "fraction above 1 rejected");
        for mode in [
            SplitMode::Exact,
            SplitMode::Histogram { max_bins: 77 },
            SplitMode::goss(41),
            SplitMode::Goss {
                max_bins: 8,
                goss: GossParams { top_permille: 250, rest_permille: 125, seed: 3 },
            },
        ] {
            assert_eq!(SplitMode::parse(&mode.name()), Some(mode));
        }
        assert!(SplitMode::goss(0).is_histogram());
        assert_eq!(SplitMode::goss(0).max_bins(), Some(DEFAULT_MAX_BINS));
        assert_eq!(SplitMode::Exact.max_bins(), None);
        let amp = GossParams::new(0).amplify();
        assert!((amp - 8.0).abs() < 1e-12, "(1 - 0.2) / 0.1 = 8, got {amp}");
    }

    #[test]
    fn class_hist_counts_every_row_once() {
        let ds = two_feature_ds();
        let binner = Binner::fit(&ds, 16);
        let codes = binner.bin_dataset(&ds);
        let ctx = HistContext::new(&binner, &codes);
        let indices: Vec<usize> = (0..ds.n_rows()).collect();
        let features: Vec<usize> = (0..ds.n_features()).collect();
        let hist = ctx.class_hist(ds.labels(), &indices, &features, 2);
        // Every feature's bins partition the rows.
        for f in 0..ctx.n_features() {
            let total: f64 = (0..ctx.n_bins(f))
                .flat_map(|b| (0..2).map(move |c| (b, c)))
                .map(|(b, c)| hist[(ctx.offsets[f] + b) * 2 + c])
                .sum();
            assert_eq!(total, ds.n_rows() as f64, "feature {f}");
        }
    }

    #[test]
    fn hist_build_is_thread_count_invariant() {
        let ds =
            DatasetKind::WineQuality.generate(&SynthConfig { n_rows: 3000, ..Default::default() });
        let binner = Binner::fit(&ds, 32);
        let codes = binner.bin_dataset(&ds);
        let ctx = HistContext::new(&binner, &codes);
        let indices: Vec<usize> = (0..ds.n_rows()).collect();
        let targets: Vec<f64> = (0..ds.n_rows()).map(|i| (i as f64) * 0.1 - 3.0).collect();
        let serial = frote_par::test_support::with_threads(1, || ctx.reg_hist(&targets, &indices));
        for t in [2usize, 4] {
            let par = frote_par::test_support::with_threads(t, || ctx.reg_hist(&targets, &indices));
            let bitwise_equal = serial.iter().zip(&par).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(bitwise_equal, "gradient histogram drifted at FROTE_THREADS={t}");
        }
    }

    /// A wide (20 numeric features) dataset big enough to cross the
    /// `HIST_BLOCK` and `FEATURE_PAR_MIN` gates.
    fn wide_ds(n_rows: usize) -> Dataset {
        let mut builder = Schema::builder("y", vec!["a".into(), "b".into(), "c".into()]);
        for f in 0..20 {
            builder = builder.numeric(format!("x{f}"));
        }
        let mut ds = Dataset::new(builder.build());
        let mut row = vec![Value::Num(0.0); 20];
        for i in 0..n_rows {
            for (f, cell) in row.iter_mut().enumerate() {
                let v = ((i * 31 + f * 17 + 7) % 997) as f64 * 0.25 - 50.0;
                *cell = Value::Num(v);
            }
            ds.push_row(&row, (i % 3) as u32).unwrap();
        }
        ds
    }

    #[test]
    fn feature_parallel_builds_match_row_parallel_bitwise() {
        let ds = wide_ds(2500);
        let binner = Binner::fit(&ds, 32);
        let codes = binner.bin_dataset(&ds);
        let ctx = HistContext::new(&binner, &codes);
        let indices: Vec<usize> = (0..ds.n_rows()).rev().collect();
        let features: Vec<usize> = (0..ds.n_features()).collect();
        let targets: Vec<f64> = (0..ds.n_rows()).map(|i| (i as f64).sin() * 3.0).collect();
        assert!(features.len() >= FEATURE_PAR_MIN && indices.len() > HIST_BLOCK, "gates crossed");
        // Row-parallel references built through the plain block-order path.
        let (offsets, total) = ctx.candidate_layout(&features);
        let class_ref = ctx.build_hist(&indices, total * 3, |i, h| {
            let y = ds.labels()[i] as usize;
            for (p, &f) in features.iter().enumerate() {
                h[(offsets[p] + ctx.codes.code(i, f)) * 3 + y] += 1.0;
            }
        });
        let reg_ref = ctx.build_hist(&indices, ctx.total_bins * 2, |i, h| {
            let t = targets[i];
            for f in 0..ctx.n_features() {
                let s = ctx.slot(i, f) * 2;
                h[s] += 1.0;
                h[s + 1] += t;
            }
        });
        for t in [1usize, 2, 4] {
            let (class_par, reg_par) = frote_par::test_support::with_threads(t, || {
                (
                    ctx.class_hist(ds.labels(), &indices, &features, 3),
                    ctx.reg_hist(&targets, &indices),
                )
            });
            assert_eq!(class_par, class_ref, "class hist drifted at FROTE_THREADS={t}");
            let bitwise = reg_ref.iter().zip(&reg_par).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(bitwise, "feature-parallel gradient hist drifted at FROTE_THREADS={t}");
        }
    }

    #[test]
    fn class_hist_is_shard_size_invariant() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let ds = DatasetKind::Adult.generate(&SynthConfig { n_rows: 900, ..Default::default() });
        let k = ds.n_classes();
        let binner = Binner::fit(&ds, 32);
        let codes = binner.bin_dataset(&ds);
        let ctx = HistContext::new(&binner, &codes);
        let features: Vec<usize> = (0..ds.n_features()).collect();
        let mut rng = StdRng::seed_from_u64(5);
        // Bootstrap-style (unsorted, repeated) and sorted node index lists.
        let bootstrap: Vec<usize> = (0..500).map(|_| rng.random_range(0..ds.n_rows())).collect();
        let sorted: Vec<usize> = (0..ds.n_rows()).step_by(2).collect();
        for indices in [&bootstrap, &sorted] {
            let baseline = ctx.class_hist(ds.labels(), indices, &features, k);
            for shard_rows in [64usize, 4096] {
                for threads in [1usize, 2, 4] {
                    let sharded = frote_par::test_support::with_threads(threads, || {
                        frote_data::sharded::test_support::with_shard_rows(shard_rows, || {
                            ctx.class_hist(ds.labels(), indices, &features, k)
                        })
                    });
                    assert_eq!(
                        sharded, baseline,
                        "class hist drifted at shard_rows={shard_rows} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn weighted_reg_hist_scales_counts_and_sums() {
        let ds = two_feature_ds();
        let binner = Binner::fit(&ds, 16);
        let codes = binner.bin_dataset(&ds);
        let ctx = HistContext::new(&binner, &codes);
        let indices: Vec<usize> = (0..ds.n_rows()).collect();
        let targets: Vec<f64> = (0..ds.n_rows()).map(|i| i as f64 * 0.5).collect();
        let weights = vec![2.0; ds.n_rows()];
        let unweighted = ctx.reg_hist(&targets, &indices);
        let weighted = ctx.reg_hist_weighted(&targets, &weights, &indices);
        // Weight 2 is a power of two: scaling is exact.
        for (w, u) in weighted.iter().zip(&unweighted) {
            assert_eq!(*w, u * 2.0);
        }
    }

    #[test]
    fn sibling_subtraction_recovers_the_complement() {
        let ds = two_feature_ds();
        let binner = Binner::fit(&ds, 16);
        let codes = binner.bin_dataset(&ds);
        let ctx = HistContext::new(&binner, &codes);
        let features: Vec<usize> = (0..ds.n_features()).collect();
        let all: Vec<usize> = (0..ds.n_rows()).collect();
        let (left, right): (Vec<usize>, Vec<usize>) = all.iter().partition(|&&i| i < 10);
        let mut parent = ctx.class_hist(ds.labels(), &all, &features, 2);
        let left_h = ctx.class_hist(ds.labels(), &left, &features, 2);
        let right_h = ctx.class_hist(ds.labels(), &right, &features, 2);
        HistContext::subtract_hist(&mut parent, &left_h);
        assert_eq!(parent, right_h, "counts are exact integers: subtraction is lossless");
    }

    #[test]
    fn best_split_finds_the_planted_boundary() {
        let ds = two_feature_ds();
        let binner = Binner::fit(&ds, 64);
        let codes = binner.bin_dataset(&ds);
        let ctx = HistContext::new(&binner, &codes);
        let indices: Vec<usize> = (0..ds.n_rows()).collect();
        let features: Vec<usize> = (0..ds.n_features()).collect();
        let hist = ctx.class_hist(ds.labels(), &indices, &features, 2);
        let split = ctx
            .find_best_split(&hist, &features, &[15.0, 15.0], 2, 1)
            .expect("clean boundary exists");
        let test = ctx.to_split_test(split);
        match test {
            SplitTest::NumLe { feature, threshold } => {
                assert_eq!(feature, 0);
                assert!((threshold - 14.5).abs() < 1e-12, "threshold {threshold}");
            }
            other => panic!("expected the numeric boundary, got {other:?}"),
        }
    }

    #[test]
    fn pure_nodes_yield_no_split() {
        let ds = two_feature_ds();
        let binner = Binner::fit(&ds, 16);
        let codes = binner.bin_dataset(&ds);
        let ctx = HistContext::new(&binner, &codes);
        let indices: Vec<usize> = (0..10).collect(); // all label 0
        let features: Vec<usize> = (0..ds.n_features()).collect();
        let hist = ctx.class_hist(ds.labels(), &indices, &features, 2);
        assert_eq!(ctx.find_best_split(&hist, &features, &[10.0, 0.0], 2, 1), None);
    }

    #[test]
    fn regression_split_prefers_the_value_step() {
        let ds = two_feature_ds();
        let binner = Binner::fit(&ds, 64);
        let codes = binner.bin_dataset(&ds);
        let ctx = HistContext::new(&binner, &codes);
        let indices: Vec<usize> = (0..ds.n_rows()).collect();
        let targets: Vec<f64> = (0..ds.n_rows()).map(|i| if i < 15 { -1.0 } else { 1.0 }).collect();
        let hist = ctx.reg_hist(&targets, &indices);
        let split =
            ctx.find_best_regression_split(&hist, 30.0, 0.0, 1).expect("step target has a split");
        assert_eq!(split, BinSplit::NumLe { feature: 0, bin: 14 });
    }

    /// The pre-compact split search, verbatim: scan `features` against the
    /// full-layout histogram with `offsets[f]` bases. The compact search
    /// must reproduce its decisions exactly.
    fn full_layout_best_split(
        ctx: &HistContext,
        full: &[f64],
        features: &[usize],
        parent_counts: &[f64],
        min_leaf: usize,
    ) -> Option<BinSplit> {
        let n_classes = parent_counts.len();
        let n: f64 = parent_counts.iter().sum();
        let parent_gini = gini(parent_counts, n);
        let mut best: Option<(f64, BinSplit)> = None;
        let mut left_counts = vec![0.0; n_classes];
        for &f in features {
            let bins = ctx.n_bins(f);
            let base = ctx.offsets[f];
            let feature_best = if ctx.binner.is_numeric(f) {
                ctx.best_numeric(full, f, base, bins, parent_counts, &mut left_counts, min_leaf, n)
            } else {
                ctx.best_categorical(full, f, base, bins, parent_counts, min_leaf, n)
            };
            if let Some((child_gini, split)) = feature_best {
                let gain = parent_gini - child_gini;
                if gain > 1e-12 && best.as_ref().is_none_or(|(bg, _)| child_gini < *bg) {
                    best = Some((child_gini, split));
                }
            }
        }
        best.map(|(_, s)| s)
    }

    #[test]
    fn compact_candidate_hist_matches_full_layout() {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        for kind in [DatasetKind::WineQuality, DatasetKind::Adult] {
            let ds = kind.generate(&SynthConfig { n_rows: 800, ..Default::default() });
            let binner = Binner::fit(&ds, 32);
            let codes = binner.bin_dataset(&ds);
            let mut rng = StdRng::seed_from_u64(17);
            for node in 0..25 {
                // A forest-like node: a bootstrap row sample and a shuffled
                // √F candidate feature subset.
                let indices: Vec<usize> =
                    (0..400).map(|_| rng.random_range(0..ds.n_rows())).collect();
                let mut features: Vec<usize> = (0..ds.n_features()).collect();
                features.shuffle(&mut rng);
                features.truncate((ds.n_features() as f64).sqrt().round().max(1.0) as usize);
                let compact = subsample_hist_probe(
                    &binner,
                    &codes,
                    ds.labels(),
                    &indices,
                    &features,
                    ds.n_classes(),
                    true,
                );
                let full = subsample_hist_probe(
                    &binner,
                    &codes,
                    ds.labels(),
                    &indices,
                    &features,
                    ds.n_classes(),
                    false,
                );
                assert_eq!(compact, full, "{}: node {node} layouts disagree", kind.name());
            }
        }
    }

    #[test]
    fn compact_split_search_matches_full_layout_on_seeded_forest_nodes() {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        for kind in [DatasetKind::WineQuality, DatasetKind::Car, DatasetKind::Adult] {
            let ds = kind.generate(&SynthConfig { n_rows: 600, ..Default::default() });
            let k = ds.n_classes();
            let binner = Binner::fit(&ds, 32);
            let codes = binner.bin_dataset(&ds);
            let ctx = HistContext::new(&binner, &codes);
            let mut rng = StdRng::seed_from_u64(29);
            for node in 0..40 {
                let indices: Vec<usize> =
                    (0..300).map(|_| rng.random_range(0..ds.n_rows())).collect();
                let mut features: Vec<usize> = (0..ds.n_features()).collect();
                features.shuffle(&mut rng);
                features.truncate(rng.random_range(1..=ds.n_features()));
                let mut parent_counts = vec![0.0; k];
                for &i in &indices {
                    parent_counts[ds.label(i) as usize] += 1.0;
                }
                let compact_hist = ctx.class_hist(ds.labels(), &indices, &features, k);
                let compact = ctx.find_best_split(&compact_hist, &features, &parent_counts, k, 2);
                // Full-layout reference: pre-compact build + pre-compact scan.
                let size = ctx.total_bins * k;
                let full_hist = ctx.build_hist(&indices, size, |i, h| {
                    let y = ds.label(i) as usize;
                    for &f in &features {
                        h[ctx.slot(i, f) * k + y] += 1.0;
                    }
                });
                let full = full_layout_best_split(&ctx, &full_hist, &features, &parent_counts, 2);
                assert_eq!(compact, full, "{}: node {node} split drifted", kind.name());
            }
        }
    }

    // The set/get round trip of the process-wide default lives in
    // `frote-bench`'s CliOptions tests: flipping the global here would race
    // the trainer tests of this binary, which read it via
    // `TreeParams::default`.
}
