//! CART decision trees over mixed-type rows.
//!
//! Numeric features split as `x <= t`; categorical features split one-vs-rest
//! as `x == c`. Split quality is Gini impurity reduction. Trees serve both as
//! the standalone `DecisionTreeTrainer` and as the base learner for
//! [`crate::forest`] (with per-node feature subsampling) and
//! [`crate::gbdt`] (a regression variant lives there).
//!
//! Two split searches share this node structure: the exact per-node sort
//! ([`DecisionTree::fit`], the default) and the quantized histogram search
//! ([`DecisionTree::fit_hist`], opt-in via [`SplitMode::Histogram`] on
//! [`TreeParams`]) — see [`crate::histogram`].

use frote_data::{BinnedMatrix, Binner, Column, Dataset, FeatureMatrix, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::histogram::{gini, HistContext, SplitMode};
use crate::traits::{argmax, Classifier, TrainAlgorithm, TrainCache};

/// Maximum number of candidate thresholds evaluated per numeric feature per
/// node; larger value sets are thinned to quantiles (the histogram trick
/// LightGBM popularized).
const MAX_THRESHOLDS: usize = 32;

/// Hyper-parameters shared by single trees and ensembles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0). The paper trains RF with
    /// `max_depth = 3`.
    pub max_depth: usize,
    /// Minimum rows required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum rows in each child of a split.
    pub min_samples_leaf: usize,
    /// Number of features sampled per node (`None` = all features).
    pub max_features: Option<usize>,
    /// How splits are searched: exact per-node sorts (default) or the
    /// quantized histogram engine.
    pub split_mode: SplitMode,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 8,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            // Exact unless the process-wide `--split-mode` override is set.
            split_mode: crate::histogram::default_split_mode(),
        }
    }
}

/// A split test on one feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SplitTest {
    /// Go left when `x[feature] <= threshold`.
    NumLe {
        /// Feature index.
        feature: usize,
        /// Threshold.
        threshold: f64,
    },
    /// Go left when `x[feature] == category`.
    CatEq {
        /// Feature index.
        feature: usize,
        /// Category index.
        category: u32,
    },
}

impl SplitTest {
    /// Whether `row` goes to the left child.
    pub fn goes_left(&self, row: &[Value]) -> bool {
        match *self {
            SplitTest::NumLe { feature, threshold } => row[feature].expect_num() <= threshold,
            SplitTest::CatEq { feature, category } => row[feature].expect_cat() == category,
        }
    }

    fn goes_left_in(&self, ds: &Dataset, i: usize) -> bool {
        match *self {
            SplitTest::NumLe { feature, threshold } => {
                ds.value(i, feature).expect_num() <= threshold
            }
            SplitTest::CatEq { feature, category } => ds.value(i, feature).expect_cat() == category,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { dist: Vec<f64> },
    Split { test: SplitTest, left: usize, right: usize },
}

impl Node {
    fn split_feature(&self) -> Option<usize> {
        match self {
            Node::Leaf { .. } => None,
            Node::Split { test, .. } => Some(match *test {
                SplitTest::NumLe { feature, .. } | SplitTest::CatEq { feature, .. } => feature,
            }),
        }
    }
}

/// A trained classification tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
    n_features: usize,
}

impl DecisionTree {
    /// Fits a tree on the rows of `ds` indexed by `indices` (duplicates
    /// allowed — bootstrap samples pass repeats), always with the exact
    /// split search; trainers dispatch to [`DecisionTree::fit_hist`] when
    /// `params.split_mode` asks for histograms.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    pub fn fit(ds: &Dataset, indices: &[usize], params: &TreeParams, rng: &mut StdRng) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero rows");
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_classes: ds.n_classes(),
            n_features: ds.n_features(),
        };
        let mut idx = indices.to_vec();
        tree.grow(ds, &mut idx, 0, params, rng);
        tree
    }

    /// Fits a tree with the quantized histogram split search: node
    /// histograms are built in one parallel pass over `codes` (fixed-order
    /// block reduction; bit-identical at any `FROTE_THREADS`), larger
    /// siblings derive theirs by subtraction, and chosen boundaries are
    /// stored as raw-value thresholds so prediction never touches the bins.
    /// When every node sees all features (`max_features = None`) and the
    /// bin budget covers every distinct value, the decisions match
    /// [`DecisionTree::fit`] node for node.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or `codes` does not cover `ds`'s rows.
    pub fn fit_hist(
        ds: &Dataset,
        binner: &Binner,
        codes: &BinnedMatrix,
        indices: &[usize],
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero rows");
        assert!(codes.n_rows() >= ds.n_rows(), "bin codes must cover the dataset");
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_classes: ds.n_classes(),
            n_features: ds.n_features(),
        };
        let ctx = HistContext::new(binner, codes);
        let mut idx = indices.to_vec();
        tree.grow_hist(&ctx, ds, &mut idx, 0, params, rng, None);
        tree
    }

    /// Number of nodes (leaves + splits).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Split counts per feature — a simple structural importance measure
    /// (how often each feature was chosen to split).
    pub fn feature_split_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_features];
        for node in &self.nodes {
            if let Some(f) = node.split_feature() {
                counts[f] += 1;
            }
        }
        counts
    }

    fn grow(
        &mut self,
        ds: &Dataset,
        indices: &mut [usize],
        depth: usize,
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> usize {
        let dist = class_distribution(ds, indices, self.n_classes);
        let pure = dist.iter().filter(|&&p| p > 0.0).count() <= 1;
        if depth >= params.max_depth || indices.len() < params.min_samples_split || pure {
            self.nodes.push(Node::Leaf { dist });
            return self.nodes.len() - 1;
        }
        let features = self.candidate_features(params, rng);
        let best = find_best_split(ds, indices, &features, self.n_classes, params.min_samples_leaf);
        match best {
            None => {
                self.nodes.push(Node::Leaf { dist });
                self.nodes.len() - 1
            }
            Some(test) => {
                // Partition indices in place.
                let mid = partition_in_place(ds, indices, &test);
                if mid == 0 || mid == indices.len() {
                    self.nodes.push(Node::Leaf { dist });
                    return self.nodes.len() - 1;
                }
                let (left_idx, right_idx) = indices.split_at_mut(mid);
                let left = self.grow(ds, left_idx, depth + 1, params, rng);
                let right = self.grow(ds, right_idx, depth + 1, params, rng);
                self.nodes.push(Node::Split { test, left, right });
                self.nodes.len() - 1
            }
        }
    }

    /// Histogram-mode twin of [`DecisionTree::grow`]. `hist` is the node's
    /// class histogram when subtraction mode is on (`max_features = None`);
    /// with subsampling each node builds its own candidate-feature
    /// histograms instead.
    #[allow(clippy::too_many_arguments)] // mirrors `grow` plus the carried histogram
    fn grow_hist(
        &mut self,
        ctx: &HistContext,
        ds: &Dataset,
        indices: &mut [usize],
        depth: usize,
        params: &TreeParams,
        rng: &mut StdRng,
        hist: Option<Vec<f64>>,
    ) -> usize {
        let dist = class_distribution(ds, indices, self.n_classes);
        let pure = dist.iter().filter(|&&p| p > 0.0).count() <= 1;
        if depth >= params.max_depth || indices.len() < params.min_samples_split || pure {
            self.nodes.push(Node::Leaf { dist });
            return self.nodes.len() - 1;
        }
        let features = self.candidate_features(params, rng);
        let mut parent_counts = vec![0.0; self.n_classes];
        for &i in indices.iter() {
            parent_counts[ds.label(i) as usize] += 1.0;
        }
        let node_hist = match hist {
            Some(h) => h,
            None => ctx.class_hist(ds.labels(), indices, &features, self.n_classes),
        };
        let best = ctx.find_best_split(
            &node_hist,
            &features,
            &parent_counts,
            self.n_classes,
            params.min_samples_leaf,
        );
        match best {
            None => {
                self.nodes.push(Node::Leaf { dist });
                self.nodes.len() - 1
            }
            Some(split) => {
                let mut mid = 0;
                for i in 0..indices.len() {
                    if ctx.goes_left(indices[i], split) {
                        indices.swap(i, mid);
                        mid += 1;
                    }
                }
                if mid == 0 || mid == indices.len() {
                    self.nodes.push(Node::Leaf { dist });
                    return self.nodes.len() - 1;
                }
                let test = ctx.to_split_test(split);
                let (left_idx, right_idx) = indices.split_at_mut(mid);
                // Build the smaller child's histogram directly; the larger
                // sibling's follows by subtraction from the parent's. Only
                // worthwhile without per-node subsampling (children must
                // histogram the parent's feature set) and when the children
                // can still split (`depth + 1` below the cap) — otherwise
                // they leaf out without ever reading a histogram.
                let subtract = params.max_features.is_none() && depth + 1 < params.max_depth;
                let (left_hist, right_hist) = if subtract {
                    let all: Vec<usize> = (0..self.n_features).collect();
                    let mut sibling = node_hist;
                    if left_idx.len() <= right_idx.len() {
                        let lh = ctx.class_hist(ds.labels(), left_idx, &all, self.n_classes);
                        HistContext::subtract_hist(&mut sibling, &lh);
                        (Some(lh), Some(sibling))
                    } else {
                        let rh = ctx.class_hist(ds.labels(), right_idx, &all, self.n_classes);
                        HistContext::subtract_hist(&mut sibling, &rh);
                        (Some(sibling), Some(rh))
                    }
                } else {
                    (None, None)
                };
                let left = self.grow_hist(ctx, ds, left_idx, depth + 1, params, rng, left_hist);
                let right = self.grow_hist(ctx, ds, right_idx, depth + 1, params, rng, right_hist);
                self.nodes.push(Node::Split { test, left, right });
                self.nodes.len() - 1
            }
        }
    }

    fn candidate_features(&self, params: &TreeParams, rng: &mut StdRng) -> Vec<usize> {
        let mut features: Vec<usize> = (0..self.n_features).collect();
        if let Some(m) = params.max_features {
            let m = m.clamp(1, self.n_features);
            features.shuffle(rng);
            features.truncate(m);
        }
        features
    }

    pub(crate) fn leaf_dist(&self, row: &[Value]) -> &[f64] {
        let mut node = self.nodes.len() - 1; // root is pushed last
        loop {
            match &self.nodes[node] {
                Node::Leaf { dist } => return dist,
                Node::Split { test, left, right } => {
                    node = if test.goes_left(row) { *left } else { *right };
                }
            }
        }
    }

    /// Leaf distribution for a row already in `ds`, traversed straight off
    /// the columnar store (no row materialization).
    pub(crate) fn leaf_dist_in(&self, ds: &Dataset, i: usize) -> &[f64] {
        let mut node = self.nodes.len() - 1;
        loop {
            match &self.nodes[node] {
                Node::Leaf { dist } => return dist,
                Node::Split { test, left, right } => {
                    node = if test.goes_left_in(ds, i) { *left } else { *right };
                }
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba_into(&self, row: &[Value], out: &mut Vec<f64>) {
        assert_eq!(row.len(), self.n_features, "row arity mismatch");
        out.clear();
        out.extend_from_slice(self.leaf_dist(row));
    }

    fn predict(&self, row: &[Value]) -> u32 {
        assert_eq!(row.len(), self.n_features, "row arity mismatch");
        argmax(self.leaf_dist(row))
    }

    /// Index-based traversal over the columnar store, in parallel — no
    /// `Dataset::row` allocation per row.
    fn predict_dataset(&self, ds: &Dataset) -> Vec<u32> {
        assert_eq!(ds.n_features(), self.n_features, "row arity mismatch");
        frote_par::par_blocks_map(ds.n_rows(), crate::traits::PREDICT_BLOCK, |_, rows| {
            rows.map(|i| argmax(self.leaf_dist_in(ds, i))).collect()
        })
    }

    fn predict_rows(&self, ds: &Dataset, rows: &[usize]) -> Vec<u32> {
        assert_eq!(ds.n_features(), self.n_features, "row arity mismatch");
        frote_par::par_chunks_map(rows, crate::traits::PREDICT_BLOCK, |_, chunk| {
            chunk.iter().map(|&i| argmax(self.leaf_dist_in(ds, i))).collect()
        })
    }
}

/// Trainer wrapper implementing [`TrainAlgorithm`].
#[derive(Debug, Clone)]
pub struct DecisionTreeTrainer {
    params: TreeParams,
    seed: u64,
}

impl DecisionTreeTrainer {
    /// Creates a trainer with explicit parameters and RNG seed (used only
    /// when `max_features` is set).
    pub fn new(params: TreeParams, seed: u64) -> Self {
        DecisionTreeTrainer { params, seed }
    }

    /// The tree parameters.
    pub fn params(&self) -> &TreeParams {
        &self.params
    }
}

impl Default for DecisionTreeTrainer {
    fn default() -> Self {
        DecisionTreeTrainer { params: TreeParams::default(), seed: 42 }
    }
}

impl TrainAlgorithm for DecisionTreeTrainer {
    fn train(&self, ds: &Dataset) -> Box<dyn Classifier> {
        self.train_cached(ds, &mut TrainCache::new())
    }

    fn train_cached(&self, ds: &Dataset, cache: &mut TrainCache) -> Box<dyn Classifier> {
        assert!(!ds.is_empty(), "cannot train on an empty dataset");
        let indices: Vec<usize> = (0..ds.n_rows()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        // GOSS is a boosting-plane knob; classification trees have no
        // gradients, so here it trains exactly like plain histogram mode.
        match self.params.split_mode.max_bins() {
            None => Box::new(DecisionTree::fit(ds, &indices, &self.params, &mut rng)),
            Some(max_bins) => {
                let binned = cache.binned(ds, max_bins);
                Box::new(DecisionTree::fit_hist(
                    ds,
                    binned.binner(),
                    binned.codes(),
                    &indices,
                    &self.params,
                    &mut rng,
                ))
            }
        }
    }

    fn name(&self) -> &str {
        "DT"
    }
}

/// Class histogram normalized to probabilities.
pub(crate) fn class_distribution(ds: &Dataset, indices: &[usize], n_classes: usize) -> Vec<f64> {
    let mut counts = vec![0.0; n_classes];
    for &i in indices {
        counts[ds.label(i) as usize] += 1.0;
    }
    let total: f64 = counts.iter().sum();
    if total > 0.0 {
        for c in &mut counts {
            *c /= total;
        }
    }
    counts
}

fn partition_in_place(ds: &Dataset, indices: &mut [usize], test: &SplitTest) -> usize {
    let mut mid = 0;
    for i in 0..indices.len() {
        if test.goes_left_in(ds, indices[i]) {
            indices.swap(i, mid);
            mid += 1;
        }
    }
    mid
}

/// Finds the Gini-optimal split over `features`, or `None` if no split
/// improves impurity while respecting `min_leaf`.
fn find_best_split(
    ds: &Dataset,
    indices: &[usize],
    features: &[usize],
    n_classes: usize,
    min_leaf: usize,
) -> Option<SplitTest> {
    let n = indices.len() as f64;
    let mut parent_counts = vec![0.0; n_classes];
    for &i in indices {
        parent_counts[ds.label(i) as usize] += 1.0;
    }
    let parent_gini = gini(&parent_counts, n);
    let mut best: Option<(f64, SplitTest)> = None;
    for &f in features {
        let candidate = match ds.column(f) {
            Column::Numeric(_) => {
                best_numeric_split(ds, indices, f, &parent_counts, n_classes, min_leaf)
            }
            Column::Categorical(_) => {
                best_categorical_split(ds, indices, f, &parent_counts, n_classes, min_leaf)
            }
        };
        if let Some((child_gini, test)) = candidate {
            let gain = parent_gini - child_gini;
            if gain > 1e-12 && best.as_ref().is_none_or(|(bg, _)| child_gini < *bg) {
                best = Some((child_gini, test));
            }
        }
    }
    best.map(|(_, t)| t)
}

fn best_numeric_split(
    ds: &Dataset,
    indices: &[usize],
    feature: usize,
    parent_counts: &[f64],
    n_classes: usize,
    min_leaf: usize,
) -> Option<(f64, SplitTest)> {
    let mut pairs: Vec<(f64, u32)> =
        indices.iter().map(|&i| (ds.value(i, feature).expect_num(), ds.label(i))).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite feature values"));
    let n = pairs.len();
    // Candidate cut positions: boundaries between distinct values, thinned to
    // at most MAX_THRESHOLDS quantile positions.
    let mut boundaries: Vec<usize> = (1..n).filter(|&i| pairs[i].0 > pairs[i - 1].0).collect();
    if boundaries.is_empty() {
        return None;
    }
    if boundaries.len() > MAX_THRESHOLDS {
        let step = boundaries.len() as f64 / MAX_THRESHOLDS as f64;
        boundaries = (0..MAX_THRESHOLDS).map(|k| boundaries[(k as f64 * step) as usize]).collect();
        boundaries.dedup();
    }
    let mut left_counts = vec![0.0; n_classes];
    let mut cursor = 0usize;
    let mut best: Option<(f64, SplitTest)> = None;
    for &b in &boundaries {
        while cursor < b {
            left_counts[pairs[cursor].1 as usize] += 1.0;
            cursor += 1;
        }
        if b < min_leaf || n - b < min_leaf {
            continue;
        }
        let left_total = b as f64;
        let right_total = (n - b) as f64;
        let right_counts: Vec<f64> =
            parent_counts.iter().zip(&left_counts).map(|(p, l)| p - l).collect();
        let child = (left_total * gini(&left_counts, left_total)
            + right_total * gini(&right_counts, right_total))
            / n as f64;
        if best.as_ref().is_none_or(|(bg, _)| child < *bg) {
            let threshold = 0.5 * (pairs[b - 1].0 + pairs[b].0);
            best = Some((child, SplitTest::NumLe { feature, threshold }));
        }
    }
    best
}

fn best_categorical_split(
    ds: &Dataset,
    indices: &[usize],
    feature: usize,
    parent_counts: &[f64],
    n_classes: usize,
    min_leaf: usize,
) -> Option<(f64, SplitTest)> {
    let cardinality = ds
        .schema()
        .feature(feature)
        .kind()
        .cardinality()
        .expect("categorical column has cardinality");
    // One flat row of per-class counts per category.
    let mut counts = FeatureMatrix::from_raw(n_classes, vec![0.0; n_classes * cardinality]);
    let mut totals = vec![0.0; cardinality];
    for &i in indices {
        let c = ds.cell(i, feature).expect_cat() as usize;
        counts.row_mut(c)[ds.label(i) as usize] += 1.0;
        totals[c] += 1.0;
    }
    let n = indices.len() as f64;
    let mut best: Option<(f64, SplitTest)> = None;
    for (c, &left_total) in totals.iter().enumerate() {
        let right_total = n - left_total;
        if (left_total as usize) < min_leaf || (right_total as usize) < min_leaf {
            continue;
        }
        let right_counts: Vec<f64> =
            parent_counts.iter().zip(counts.row(c)).map(|(p, l)| p - l).collect();
        let child = (left_total * gini(counts.row(c), left_total)
            + right_total * gini(&right_counts, right_total))
            / n;
        if best.as_ref().is_none_or(|(bg, _)| child < *bg) {
            best = Some((child, SplitTest::CatEq { feature, category: c as u32 }));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::synth::{DatasetKind, SynthConfig};
    use frote_data::{Schema, Value};

    fn xor_ds() -> Dataset {
        // Band concept: class 1 iff 60 <= x1 < 140 — needs two chained
        // numeric splits, learnable greedily at depth 2 (unlike true XOR,
        // whose first greedy split has zero Gini gain by symmetry).
        let schema =
            Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x1").numeric("x2").build();
        let mut ds = Dataset::new(schema);
        for i in 0..200 {
            let x = i as f64;
            let label = u32::from((60.0..140.0).contains(&x));
            ds.push_row(&[Value::Num(x), Value::Num(-x)], label).unwrap();
        }
        ds
    }

    #[test]
    fn learns_band_with_depth_two() {
        let ds = xor_ds();
        let trainer =
            DecisionTreeTrainer::new(TreeParams { max_depth: 2, ..Default::default() }, 0);
        let model = trainer.train(&ds);
        let preds = model.predict_dataset(&ds);
        let acc = crate::metrics::accuracy(&preds, ds.labels());
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn depth_zero_is_majority_vote() {
        let ds = xor_ds();
        let trainer =
            DecisionTreeTrainer::new(TreeParams { max_depth: 0, ..Default::default() }, 0);
        let model = trainer.train(&ds);
        let p = model.predict_proba(&ds.row(0));
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Majority class constant prediction.
        let first = model.predict(&ds.row(0));
        assert!(model.predict_dataset(&ds).iter().all(|&x| x == first));
    }

    #[test]
    fn categorical_splits_learn_planted_rule() {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 800, ..Default::default() });
        let trainer =
            DecisionTreeTrainer::new(TreeParams { max_depth: 6, ..Default::default() }, 1);
        let model = trainer.train(&ds);
        let acc = crate::metrics::accuracy(&model.predict_dataset(&ds), ds.labels());
        assert!(acc > 0.75, "accuracy {acc}");
    }

    #[test]
    fn pure_node_stops_early() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema);
        for i in 0..10 {
            ds.push_row(&[Value::Num(i as f64)], 0).unwrap();
        }
        let model = DecisionTreeTrainer::default().train(&ds);
        assert_eq!(model.predict(&[Value::Num(3.0)]), 0);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let ds = xor_ds();
        let params = TreeParams { min_samples_leaf: 80, max_depth: 10, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(0);
        let idx: Vec<usize> = (0..ds.n_rows()).collect();
        let tree = DecisionTree::fit(&ds, &idx, &params, &mut rng);
        // With 200 rows and min leaf 80, at most one split is possible.
        assert!(tree.n_nodes() <= 3, "nodes {}", tree.n_nodes());
    }

    #[test]
    fn feature_subsampling_still_trains() {
        let ds = xor_ds();
        let params = TreeParams { max_features: Some(1), max_depth: 4, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(5);
        let idx: Vec<usize> = (0..ds.n_rows()).collect();
        let tree = DecisionTree::fit(&ds, &idx, &params, &mut rng);
        assert!(tree.n_nodes() >= 1);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_fit_panics() {
        let ds = xor_ds();
        let mut rng = StdRng::seed_from_u64(0);
        DecisionTree::fit(&ds, &[], &TreeParams::default(), &mut rng);
    }

    #[test]
    fn histogram_mode_reproduces_exact_when_bins_cover_values() {
        // Few enough distinct values that the exact search skips its
        // threshold thinning and the 256-bin budget gives one bin per
        // distinct value: both searches then evaluate the same candidate
        // set and must make identical decisions. Thresholds agree exactly
        // too because this dataset keeps every node's value set contiguous
        // (the general decision-level property, where in-gap threshold
        // placement may differ, is pinned by tests/prop_hist_split.rs).
        let schema =
            Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x1").numeric("x2").build();
        let mut ds = Dataset::new(schema);
        for i in 0..200 {
            let x = (i % 20) as f64;
            let label = u32::from((6.0..14.0).contains(&x));
            ds.push_row(&[Value::Num(x), Value::Num(((i * 7) % 13) as f64)], label).unwrap();
        }
        let params = TreeParams { max_depth: 4, ..Default::default() };
        let idx: Vec<usize> = (0..ds.n_rows()).collect();
        let exact = DecisionTree::fit(&ds, &idx, &params, &mut StdRng::seed_from_u64(0));
        let binned = frote_data::BinnedCache::fit(&ds, 256);
        let hist = DecisionTree::fit_hist(
            &ds,
            binned.binner(),
            binned.codes(),
            &idx,
            &params,
            &mut StdRng::seed_from_u64(0),
        );
        assert_eq!(format!("{exact:?}"), format!("{hist:?}"));
    }

    #[test]
    fn histogram_mode_learns_band_with_coarse_bins() {
        let ds = xor_ds();
        let params =
            TreeParams { max_depth: 2, split_mode: SplitMode::histogram(), ..Default::default() };
        let model = DecisionTreeTrainer::new(params, 0).train(&ds);
        let acc = crate::metrics::accuracy(&model.predict_dataset(&ds), ds.labels());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn histogram_mode_handles_categorical_splits() {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 800, ..Default::default() });
        let params =
            TreeParams { max_depth: 6, split_mode: SplitMode::histogram(), ..Default::default() };
        let model = DecisionTreeTrainer::new(params, 1).train(&ds);
        let acc = crate::metrics::accuracy(&model.predict_dataset(&ds), ds.labels());
        assert!(acc > 0.75, "accuracy {acc}");
    }

    #[test]
    fn cached_training_matches_uncached_across_appends() {
        let mut ds = xor_ds();
        let params = TreeParams { split_mode: SplitMode::histogram(), ..Default::default() };
        let trainer = DecisionTreeTrainer::new(params, 0);
        let mut cache = TrainCache::new();
        for round in 0..3 {
            let cached = trainer.train_cached(&ds, &mut cache);
            let fresh = trainer.train(&ds);
            assert_eq!(cached.predict_dataset(&ds), fresh.predict_dataset(&ds), "round {round}");
            for i in 0..20 {
                ds.push_row(&[Value::Num((i * 10) as f64), Value::Num(-(i as f64))], i % 2)
                    .unwrap();
            }
        }
    }

    #[test]
    fn proba_sums_to_one() {
        let ds = DatasetKind::Nursery.generate(&SynthConfig { n_rows: 300, ..Default::default() });
        let model = DecisionTreeTrainer::default().train(&ds);
        for i in 0..20 {
            let p = model.predict_proba(&ds.row(i));
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
