//! Deterministic failpoint injection for the FROTE reproduction.
//!
//! Production code marks a fallible step with a named *site*:
//!
//! ```
//! fn predict_batch() -> Result<(), frote_faults::InjectedFault> {
//!     frote_faults::point("serve.batch.predict")?;
//!     // ... the real work ...
//!     Ok(())
//! }
//! ```
//!
//! With no spec armed, every `point` call is one relaxed atomic load — the
//! same gating discipline `frote-obs` uses for disabled metrics — so
//! instrumented binaries pay nothing in normal operation. A spec arms sites
//! via the `FROTE_FAULTS` env var (read once) or
//! [`set_spec`]/[`clear_spec_override`] (the override wins, so tests control
//! faults even under a CI-armed environment):
//!
//! ```text
//! FROTE_FAULTS = <entry> [ ';' <entry> ]*
//! <entry>      = <site> ':' <kind> ':' <rate‰> ':' <seed> [ ':' <delay_ms> ]
//! <kind>       = 'err' | 'panic' | 'delay'
//! ```
//!
//! `rate‰` is a firing rate in permille (0..=1000). Each armed site keeps an
//! ordinal counter; hit `n` fires iff
//! `SeedSplit::new(seed).seed(n) % 1000 < rate`. The firing *set* is a pure
//! function of `(seed, rate)` over ordinals, so a given spec fires
//! bit-identically at any `FROTE_THREADS` — which hits land on which thread
//! may vary, but the n-th arrival at a site always gets the same verdict.
//! `err` makes `point` return [`InjectedFault`], `panic` unwinds with a
//! recognizable payload, and `delay` sleeps `delay_ms` (default 10) and then
//! returns `Ok` — a latency fault, not a failure.
//!
//! Arming a new spec replaces the site table wholesale, resetting every
//! ordinal counter: each armed phase of a test replays the same verdict
//! sequence from hit 0.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use frote_obs::Counter;
use frote_par::SeedSplit;

/// Injected `err` faults returned from [`point`].
static INJECTED_ERRS: Counter = Counter::thread_variant("faults.injected.err");
/// Injected `panic` faults thrown from [`point`].
static INJECTED_PANICS: Counter = Counter::thread_variant("faults.injected.panic");
/// Injected `delay` faults slept through in [`point`].
static INJECTED_DELAYS: Counter = Counter::thread_variant("faults.injected.delay");

/// The spec has not been resolved yet (first `point` reads `FROTE_FAULTS`).
const STATE_UNRESOLVED: u8 = 0;
/// No sites armed: `point` is one relaxed load + compare.
const STATE_OFF: u8 = 1;
/// At least one site armed: `point` takes the slow path.
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNRESOLVED);

/// Sleep applied by a `delay` entry that does not name one explicitly.
const DEFAULT_DELAY_MS: u64 = 10;

/// What an armed site does when its ordinal fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `point` returns `Err(InjectedFault)`.
    Err,
    /// `point` panics with an `InjectedFault` payload.
    Panic,
    /// `point` sleeps `delay_ms`, then returns `Ok(())`.
    Delay,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "err" => Some(FaultKind::Err),
            "panic" => Some(FaultKind::Panic),
            "delay" => Some(FaultKind::Delay),
            _ => None,
        }
    }
}

/// One armed site: the parsed entry plus its live ordinal counter.
#[derive(Debug)]
struct ArmedSite {
    kind: FaultKind,
    /// Firing rate in permille of hits.
    rate: u64,
    split: SeedSplit,
    delay: Duration,
    ordinal: AtomicU64,
}

impl ArmedSite {
    /// The verdict for the next hit: `Some(kind)` when it fires.
    fn next_verdict(&self) -> Option<(FaultKind, u64)> {
        let n = self.ordinal.fetch_add(1, Ordering::Relaxed);
        (self.split.seed(n) % 1000 < self.rate).then_some((self.kind, n))
    }

    fn parse(fields: &[&str], entry: &str) -> Result<ArmedSite, SpecError> {
        let bad = |detail: &str| SpecError { entry: entry.to_string(), detail: detail.to_string() };
        if fields.len() < 4 || fields.len() > 5 {
            return Err(bad("expected <site>:<kind>:<rate‰>:<seed>[:<delay_ms>]"));
        }
        let kind = FaultKind::parse(fields[1])
            .ok_or_else(|| bad("kind must be one of err|panic|delay"))?;
        let rate: u64 =
            fields[2].parse().map_err(|_| bad("rate must be an integer permille (0..=1000)"))?;
        if rate > 1000 {
            return Err(bad("rate must be at most 1000 permille"));
        }
        let seed: u64 = fields[3].parse().map_err(|_| bad("seed must be a u64"))?;
        let delay_ms = match fields.get(4) {
            None => DEFAULT_DELAY_MS,
            Some(ms) => ms.parse().map_err(|_| bad("delay_ms must be a u64"))?,
        };
        Ok(ArmedSite {
            kind,
            rate,
            split: SeedSplit::new(seed),
            delay: Duration::from_millis(delay_ms),
            ordinal: AtomicU64::new(0),
        })
    }
}

/// The armed site table. `None` = nothing armed.
fn table() -> MutexGuard<'static, Option<HashMap<String, ArmedSite>>> {
    static TABLE: OnceLock<Mutex<Option<HashMap<String, ArmedSite>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(None)).lock().unwrap_or_else(|e| e.into_inner())
}

/// A malformed `FROTE_FAULTS` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The offending entry, verbatim.
    pub entry: String,
    /// What was wrong with it.
    pub detail: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad FROTE_FAULTS entry {:?}: {}", self.entry, self.detail)
    }
}

impl std::error::Error for SpecError {}

/// The structured error an armed `err` site injects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that fired.
    pub site: String,
    /// Which hit at the site fired (0-based since the spec was armed).
    pub ordinal: u64,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at {} (hit {})", self.site, self.ordinal)
    }
}

impl std::error::Error for InjectedFault {}

fn parse_spec(spec: &str) -> Result<HashMap<String, ArmedSite>, SpecError> {
    let mut sites = HashMap::new();
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let fields: Vec<&str> = entry.split(':').collect();
        let site = fields[0].trim();
        if site.is_empty() {
            return Err(SpecError {
                entry: entry.to_string(),
                detail: "empty site name".to_string(),
            });
        }
        sites.insert(site.to_string(), ArmedSite::parse(&fields, entry)?);
    }
    Ok(sites)
}

fn install(sites: Option<HashMap<String, ArmedSite>>) {
    let state = match &sites {
        Some(map) if !map.is_empty() => STATE_ON,
        _ => STATE_OFF,
    };
    let mut slot = table();
    *slot = sites;
    STATE.store(state, Ordering::Release);
}

/// Arms `spec` (the `FROTE_FAULTS` grammar), replacing any armed table and
/// resetting every ordinal counter. Overrides the environment until
/// [`clear_spec_override`]. `None` disarms everything.
///
/// # Errors
///
/// [`SpecError`] on a malformed entry; the armed table is left unchanged.
pub fn set_spec(spec: Option<&str>) -> Result<(), SpecError> {
    let sites = match spec {
        None => None,
        Some(s) => Some(parse_spec(s)?),
    };
    install(sites);
    Ok(())
}

/// Drops any [`set_spec`] override and re-resolves from `FROTE_FAULTS`.
/// A malformed env spec disarms everything (the env is validated at
/// process start by the binaries that honor it).
pub fn clear_spec_override() {
    install(env_spec());
}

fn env_spec() -> Option<HashMap<String, ArmedSite>> {
    let raw = std::env::var("FROTE_FAULTS").ok()?;
    parse_spec(&raw).ok().filter(|m| !m.is_empty())
}

#[cold]
fn resolve_from_env() {
    install(env_spec());
}

#[cold]
fn point_armed(site: &str) -> Result<(), InjectedFault> {
    let verdict = {
        let slot = table();
        let Some(armed) = slot.as_ref().and_then(|map| map.get(site)) else {
            return Ok(());
        };
        match armed.next_verdict() {
            None => return Ok(()),
            Some((FaultKind::Delay, n)) => {
                INJECTED_DELAYS.inc();
                // Sleep outside the table lock.
                (FaultKind::Delay, n, armed.delay)
            }
            Some((kind, n)) => (kind, n, Duration::ZERO),
        }
    };
    match verdict {
        (FaultKind::Delay, _, delay) => {
            std::thread::sleep(delay);
            Ok(())
        }
        (FaultKind::Err, n, _) => {
            INJECTED_ERRS.inc();
            Err(InjectedFault { site: site.to_string(), ordinal: n })
        }
        (FaultKind::Panic, n, _) => {
            INJECTED_PANICS.inc();
            std::panic::panic_any(InjectedFault { site: site.to_string(), ordinal: n });
        }
    }
}

/// The failpoint: call at a named site; the armed spec decides the outcome.
///
/// Unarmed (the overwhelmingly common case) this is one relaxed atomic load.
///
/// # Errors
///
/// [`InjectedFault`] when the site is armed with kind `err` and this hit's
/// ordinal fires.
///
/// # Panics
///
/// Panics (with an [`InjectedFault`] payload, for `catch_unwind` + downcast)
/// when the site is armed with kind `panic` and this hit fires.
#[inline]
pub fn point(site: &str) -> Result<(), InjectedFault> {
    match STATE.load(Ordering::Relaxed) {
        STATE_OFF => Ok(()),
        STATE_UNRESOLVED => {
            resolve_from_env();
            point(site)
        }
        _ => point_armed(site),
    }
}

/// True when any site is currently armed (after env resolution).
pub fn armed() -> bool {
    if STATE.load(Ordering::Relaxed) == STATE_UNRESOLVED {
        resolve_from_env();
    }
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// Extracts an [`InjectedFault`] from a `catch_unwind` payload, when the
/// panic came from an armed `panic` site.
pub fn fault_from_panic(payload: &(dyn std::any::Any + Send)) -> Option<&InjectedFault> {
    payload.downcast_ref::<InjectedFault>()
}

pub mod test_support {
    //! Serialized fault arming for tests.
    //!
    //! The armed table is process-global, so concurrent tests arming
    //! different specs would trample each other. [`with_spec`] holds a
    //! process-wide lock for the closure and restores the unarmed state
    //! afterwards, even on panic.

    use std::sync::{Mutex, MutexGuard};

    /// The process-wide fault-spec lock, shared by every test that arms a
    /// spec. Held for the whole closure.
    fn spec_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    struct Disarm;

    impl Drop for Disarm {
        fn drop(&mut self) {
            super::install(None);
        }
    }

    /// Runs `f` with `spec` armed (or everything disarmed for `None`),
    /// serialized against every other `with_spec` caller in the process.
    /// Ordinal counters start from 0. The spec is disarmed on the way out,
    /// panics included — the environment's `FROTE_FAULTS` is deliberately
    /// *not* re-armed, so in-process tests stay deterministic even under a
    /// CI chaos environment.
    ///
    /// # Panics
    ///
    /// Panics when `spec` is malformed.
    pub fn with_spec<R>(spec: Option<&str>, f: impl FnOnce() -> R) -> R {
        let _guard = spec_lock();
        let _disarm = Disarm;
        super::set_spec(spec).expect("test fault spec parses");
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn firing_set(spec_entry: &str, site: &str, hits: u64) -> Vec<u64> {
        test_support::with_spec(Some(spec_entry), || {
            (0..hits).filter(|_| point(site).is_err()).collect()
        })
    }

    #[test]
    fn unarmed_points_are_ok() {
        test_support::with_spec(None, || {
            for _ in 0..100 {
                point("nowhere").unwrap();
            }
            assert!(!armed());
        });
    }

    #[test]
    fn unlisted_sites_stay_clean_under_an_armed_spec() {
        test_support::with_spec(Some("a.site:err:1000:1"), || {
            assert!(armed());
            for _ in 0..50 {
                point("other.site").unwrap();
            }
            assert!(point("a.site").is_err());
        });
    }

    #[test]
    fn rate_1000_always_fires_and_rate_0_never_does() {
        test_support::with_spec(Some("hot:err:1000:7;cold:err:0:7"), || {
            for n in 0..20 {
                let fault = point("hot").unwrap_err();
                assert_eq!(fault.site, "hot");
                assert_eq!(fault.ordinal, n);
                point("cold").unwrap();
            }
        });
    }

    #[test]
    fn firing_ordinals_are_deterministic_and_seed_keyed() {
        let a = firing_set("s:err:300:42", "s", 200);
        let b = firing_set("s:err:300:42", "s", 200);
        assert_eq!(a, b, "same spec must fire the same ordinals");
        assert!(!a.is_empty() && a.len() < 200, "300‰ should fire some but not all of 200 hits");
        let c = firing_set("s:err:300:43", "s", 200);
        assert_ne!(a, c, "a different seed should reshuffle the firing set");
    }

    #[test]
    fn firing_set_is_thread_count_invariant() {
        // The verdict stream is keyed on arrival ordinal, not thread: the
        // *multiset* of verdicts over N hits is fixed no matter how many
        // threads produce them.
        let serial_fired = firing_set("s:err:250:9", "s", 96).len();
        for workers in [2usize, 4] {
            let fired = test_support::with_spec(Some("s:err:250:9"), || {
                let count = std::sync::atomic::AtomicU64::new(0);
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        scope.spawn(|| {
                            for _ in 0..(96 / workers) {
                                if point("s").is_err() {
                                    count.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        });
                    }
                });
                count.into_inner()
            });
            assert_eq!(fired as usize, serial_fired, "at {workers} workers");
        }
    }

    #[test]
    fn rearming_resets_ordinals() {
        let a = firing_set("s:err:500:5", "s", 40);
        let b = firing_set("s:err:500:5", "s", 40);
        assert_eq!(a, b, "re-arming must replay from ordinal 0");
    }

    #[test]
    fn panic_kind_unwinds_with_a_typed_payload() {
        test_support::with_spec(Some("boom:panic:1000:3"), || {
            let caught = std::panic::catch_unwind(|| point("boom")).unwrap_err();
            let fault = fault_from_panic(&*caught).expect("typed payload");
            assert_eq!(fault.site, "boom");
        });
    }

    #[test]
    fn delay_kind_sleeps_then_succeeds() {
        test_support::with_spec(Some("slow:delay:1000:2:30"), || {
            let start = std::time::Instant::now();
            point("slow").unwrap();
            assert!(start.elapsed() >= Duration::from_millis(30));
        });
    }

    #[test]
    fn spec_errors_are_structured() {
        for (spec, needle) in [
            ("site", "expected <site>"),
            ("site:oops:10:1", "err|panic|delay"),
            ("site:err:1001:1", "at most 1000"),
            ("site:err:ten:1", "integer permille"),
            ("site:err:10:x", "seed must be"),
            ("site:delay:10:1:soon", "delay_ms must be"),
            (":err:10:1", "empty site"),
        ] {
            let err = parse_spec(spec).unwrap_err();
            assert!(err.to_string().contains(needle), "{spec} -> {err}");
        }
        // Separators: empty entries and whitespace are tolerated.
        let map = parse_spec(" a:err:10:1 ; ; b:delay:5:2:20 ").unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map["b"].delay, Duration::from_millis(20));
    }
}
