//! Round-trips between the rule parser and the schema-aware renderers:
//! any rule built programmatically, printed with `display_with`, must parse
//! back to an equal rule — across all operators, feature kinds, and float
//! values (Rust's shortest-round-trip float printing guarantees exactness).

use frote_rules::parse::{parse_clause, parse_predicate, parse_rule};
use frote_rules::{Clause, FeedbackRule, Op, Predicate};

use frote_data::{Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> Schema {
    Schema::builder("approved", vec!["no".into(), "yes".into(), "review".into()])
        .numeric("age")
        .numeric("income")
        .categorical("job", vec!["eng".into(), "teacher".into(), "retired".into()])
        .categorical("region", vec!["north".into(), "south".into()])
        .build()
}

/// Renders `rule` in the parser's grammar (`clause => class`); the
/// `display_with` form wraps the clause in `IF ... THEN`, which is for
/// humans, so only the clause part is reused verbatim.
fn to_parseable(rule: &FeedbackRule, s: &Schema) -> String {
    let class = match rule.dist().clone() {
        frote_rules::LabelDist::Deterministic(c) => c,
        other => panic!("only deterministic rules are textual: {other:?}"),
    };
    format!("{} => {}", rule.clause().display_with(s), s.class_name(class))
}

fn random_predicate(rng: &mut StdRng) -> Predicate {
    if rng.random_bool(0.5) {
        // Numeric: features 0-1, any comparison operator, "ugly" floats.
        let feature = rng.random_range(0..2usize);
        let op = [Op::Eq, Op::Gt, Op::Ge, Op::Lt, Op::Le][rng.random_range(0..5usize)];
        let value = match rng.random_range(0..4u32) {
            0 => rng.random_range(-1000.0..1000.0),
            1 => rng.random_range(-1.0..1.0) / 3.0,
            2 => (rng.random_range(-50.0..50.0f64)).round(),
            _ => rng.random_range(0.0..1e-6),
        };
        Predicate::new(feature, op, Value::Num(value))
    } else {
        // Categorical: features 2-3 with their real vocabulary sizes.
        let (feature, n_cats) = if rng.random_bool(0.5) { (2, 3) } else { (3, 2) };
        let op = if rng.random_bool(0.5) { Op::Eq } else { Op::Ne };
        Predicate::new(feature, op, Value::Cat(rng.random_range(0..n_cats)))
    }
}

#[test]
fn random_rules_round_trip() {
    let s = schema();
    let mut rng = StdRng::seed_from_u64(0x9A25E);
    for case in 0..500 {
        let n_preds = rng.random_range(1..5usize);
        let clause = Clause::new((0..n_preds).map(|_| random_predicate(&mut rng)).collect());
        let class = rng.random_range(0..3u32);
        let rule = FeedbackRule::deterministic(clause, class);
        rule.validate(&s).expect("generated rules are valid");
        let text = to_parseable(&rule, &s);
        let back = parse_rule(&text, &s).unwrap_or_else(|e| panic!("case {case}: `{text}`: {e}"));
        assert_eq!(back, rule, "case {case}: `{text}`");
    }
}

#[test]
fn single_predicates_round_trip_through_all_operators() {
    let s = schema();
    for op in [Op::Eq, Op::Gt, Op::Ge, Op::Lt, Op::Le] {
        let p = Predicate::new(1, op, Value::Num(-42.125));
        let text = format!("{}", p.display_with(&s));
        assert_eq!(parse_predicate(&text, &s).unwrap(), p, "`{text}`");
    }
    for op in [Op::Eq, Op::Ne] {
        let p = Predicate::new(2, op, Value::Cat(1));
        let text = format!("{}", p.display_with(&s));
        assert_eq!(parse_predicate(&text, &s).unwrap(), p, "`{text}`");
    }
}

#[test]
fn empty_clause_renders_and_parses_as_true() {
    let s = schema();
    let clause = Clause::new(vec![]);
    let text = format!("{}", clause.display_with(&s));
    assert_eq!(text, "TRUE");
    assert_eq!(parse_clause(&text, &s).unwrap(), clause);
}

#[test]
fn shortest_float_printing_is_exact() {
    let s = schema();
    // Floats whose decimal expansions are infinite in binary; the printed
    // shortest form must still parse to the identical bit pattern.
    for &v in &[0.1, 0.2, 0.3, 1.0 / 3.0, 2.0f64.sqrt(), std::f64::consts::PI, 1e-300] {
        let p = Predicate::new(0, Op::Le, Value::Num(v));
        let text = format!("{}", p.display_with(&s));
        let back = parse_predicate(&text, &s).unwrap();
        assert_eq!(back, p, "`{text}`");
    }
}

/// Textual rules are authored against one schema but may later be applied
/// to a dataset whose schema drifted (columns dropped, vocabularies
/// shrunk, a categorical re-encoded as numeric). Such predicates *parse*
/// fine — the parser only knows the authoring schema — but must be caught
/// by `validate` / `CompiledClause::compile` / `try_coverage` instead of
/// panicking inside `Predicate::eval` at scan time.
#[test]
fn parsed_rules_can_fail_validation_against_a_drifted_schema() {
    use frote_data::Dataset;
    use frote_rules::{CompiledClause, RuleError};

    let authoring = schema();
    // Serving schema drift: "job" became numeric (a seniority score),
    // "region" lost its "south" category, and "income" was dropped —
    // renumbering features after it.
    let serving = Schema::builder("approved", vec!["no".into(), "yes".into(), "review".into()])
        .numeric("age")
        .numeric("income")
        .numeric("job")
        .build();
    let shrunk = Schema::builder("approved", vec!["no".into(), "yes".into(), "review".into()])
        .numeric("age")
        .numeric("income")
        .categorical("job", vec!["eng".into(), "teacher".into(), "retired".into()])
        .categorical("region", vec!["north".into()])
        .build();

    // Unknown feature: "region" (index 3) does not exist in `serving`.
    let clause = parse_clause("region = north", &authoring).unwrap();
    assert!(matches!(clause.validate(&serving), Err(RuleError::UnknownFeature { index: 3 })));
    assert!(CompiledClause::compile(&clause, &serving).is_err());

    // Operator drift: Ne parsed on categorical "job" is not allowed once
    // the serving schema holds it as numeric.
    let clause = parse_clause("job != eng", &authoring).unwrap();
    assert!(matches!(clause.validate(&serving), Err(RuleError::OperatorNotAllowed { .. })));
    assert!(CompiledClause::compile(&clause, &serving).is_err());

    // Out-of-vocabulary category: "south" (code 1) parsed fine but the
    // shrunk vocabulary only holds "north".
    let clause = parse_clause("region = south", &authoring).unwrap();
    assert!(matches!(clause.validate(&shrunk), Err(RuleError::ValueKindMismatch { .. })));
    assert!(CompiledClause::compile(&clause, &shrunk).is_err());

    // The scan layer surfaces the same error as a Result instead of the
    // interpreter's panic: try_coverage on a dataset built on the drifted
    // schema refuses the mismatched clause.
    let mut ds = Dataset::new(serving.clone());
    ds.push_row(&[Value::Num(30.0), Value::Num(50_000.0), Value::Num(3.0)], 1).unwrap();
    let clause = parse_clause("job = teacher", &authoring).unwrap();
    assert!(clause.try_coverage(&ds).is_err());
    assert!(clause.try_coverage_count(&ds).is_err());

    // And the same clauses validate (and compile) cleanly against the
    // schema they were authored for — the failures above are drift, not
    // over-strictness.
    for text in ["region = north", "job != eng", "region = south", "job = teacher"] {
        let clause = parse_clause(text, &authoring).unwrap();
        assert!(clause.validate(&authoring).is_ok(), "`{text}`");
        assert!(CompiledClause::compile(&clause, &authoring).is_ok(), "`{text}`");
    }
}

#[test]
fn parse_rejects_what_display_never_produces() {
    let s = schema();
    for bad in [
        "age < 29",             // missing => class
        "age < 29 => maybe",    // unknown class
        "height < 29 => yes",   // unknown feature
        "job > eng => yes",     // ordering operator on categorical
        "job = plumber => yes", // unknown category
        "age < abc => yes",     // non-numeric value
        "age < 29 AND => yes",  // dangling AND
        "=> yes",               // empty clause text
    ] {
        assert!(parse_rule(bad, &s).is_err(), "`{bad}` should not parse");
    }
}
