//! Textual rule parsing.
//!
//! Rules "semantically resemble natural language" (paper §3.1); this module
//! lets examples and tests write them that way:
//!
//! ```
//! use frote_data::Schema;
//! use frote_rules::parse::parse_rule;
//!
//! let schema = Schema::builder("approved", vec!["no".into(), "yes".into()])
//!     .numeric("age")
//!     .categorical("marital", vec!["single".into(), "married".into()])
//!     .build();
//! let rule = parse_rule("age < 29 AND marital = single => yes", &schema)?;
//! assert_eq!(rule.clause().len(), 2);
//! # Ok::<(), frote_rules::RuleError>(())
//! ```
//!
//! Grammar: `predicate (AND predicate)* => class`, where a predicate is
//! `feature OP value` with `OP` one of `=`, `!=`, `>`, `>=`, `<`, `<=`.
//! Only deterministic rules are expressible in text; build probabilistic
//! rules programmatically with [`crate::LabelDist::probabilistic`].

use frote_data::{FeatureKind, Schema, Value};

use crate::clause::Clause;
use crate::error::RuleError;
use crate::predicate::{Op, Predicate};
use crate::rule::FeedbackRule;

/// Parses a deterministic rule like `"age < 29 AND job = eng => yes"`.
///
/// # Errors
///
/// Returns [`RuleError::Parse`] on malformed syntax and the usual validation
/// errors for unknown features, categories, classes, or illegal operators.
pub fn parse_rule(text: &str, schema: &Schema) -> Result<FeedbackRule, RuleError> {
    let (clause_text, class_text) = text.rsplit_once("=>").ok_or_else(|| RuleError::Parse {
        detail: "missing `=>` between clause and class".into(),
    })?;
    let class_name = class_text.trim();
    let class = schema
        .class_index(class_name)
        .ok_or_else(|| RuleError::Parse { detail: format!("unknown class {class_name:?}") })?;
    let clause = parse_clause(clause_text, schema)?;
    let rule = FeedbackRule::deterministic(clause, class);
    rule.validate(schema)?;
    Ok(rule)
}

/// Parses a conjunction like `"age < 29 AND job = eng"`. The literal `TRUE`
/// (any case) denotes the empty, always-true clause.
///
/// # Errors
///
/// Returns [`RuleError::Parse`] on malformed predicates or unknown names.
pub fn parse_clause(text: &str, schema: &Schema) -> Result<Clause, RuleError> {
    let text = text.trim();
    if text.eq_ignore_ascii_case("true") {
        return Ok(Clause::always_true());
    }
    let mut predicates = Vec::new();
    for part in split_and(text) {
        predicates.push(parse_predicate(part, schema)?);
    }
    Ok(Clause::new(predicates))
}

/// Splits on the keyword `AND` (case-insensitive, whole word).
fn split_and(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut rest = text;
    loop {
        let lower = rest.to_ascii_lowercase();
        match find_word(&lower, "and") {
            Some(pos) => {
                parts.push(rest[..pos].trim());
                rest = &rest[pos + 3..];
            }
            None => {
                parts.push(rest.trim());
                return parts;
            }
        }
    }
}

fn find_word(haystack: &str, word: &str) -> Option<usize> {
    let bytes = haystack.as_bytes();
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(word) {
        let abs = start + pos;
        let before_ok = abs == 0 || bytes[abs - 1].is_ascii_whitespace();
        let after = abs + word.len();
        let after_ok = after == bytes.len() || bytes[after].is_ascii_whitespace();
        if before_ok && after_ok {
            return Some(abs);
        }
        start = abs + word.len();
    }
    None
}

/// Parses one predicate like `"age >= 30"` or `"job != law"`.
///
/// # Errors
///
/// Returns [`RuleError::Parse`] or a validation error.
pub fn parse_predicate(text: &str, schema: &Schema) -> Result<Predicate, RuleError> {
    // Longest operators first so ">=" doesn't parse as ">".
    const OPS: [(&str, Op); 6] = [
        (">=", Op::Ge),
        ("<=", Op::Le),
        ("!=", Op::Ne),
        (">", Op::Gt),
        ("<", Op::Lt),
        ("=", Op::Eq),
    ];
    let (op_pos, op_str, op) = OPS
        .iter()
        .filter_map(|&(s, o)| text.find(s).map(|p| (p, s, o)))
        .min_by_key(|&(p, s, _)| (p, std::cmp::Reverse(s.len())))
        .ok_or_else(|| RuleError::Parse { detail: format!("no operator in {text:?}") })?;
    let name = text[..op_pos].trim();
    let value_text = text[op_pos + op_str.len()..].trim();
    let feature = schema
        .feature_index(name)
        .ok_or_else(|| RuleError::UnknownFeatureName { name: name.to_string() })?;
    let value = match schema.feature(feature).kind() {
        FeatureKind::Numeric => {
            let x: f64 = value_text.parse().map_err(|_| RuleError::Parse {
                detail: format!("bad numeric value {value_text:?}"),
            })?;
            Value::Num(x)
        }
        FeatureKind::Categorical { categories } => {
            let c = categories.iter().position(|c| c == value_text).ok_or_else(|| {
                RuleError::Parse {
                    detail: format!("unknown category {value_text:?} for feature {name:?}"),
                }
            })?;
            Value::Cat(c as u32)
        }
    };
    let p = Predicate::new(feature, op, value);
    p.validate(schema)?;
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::LabelDist;

    fn schema() -> Schema {
        Schema::builder("approved", vec!["no".into(), "yes".into()])
            .numeric("age")
            .categorical("marital", vec!["single".into(), "married".into()])
            .numeric("income")
            .build()
    }

    #[test]
    fn full_rule_roundtrip() {
        let s = schema();
        let r = parse_rule("age < 29 AND marital = single AND income > 150 => yes", &s).unwrap();
        assert_eq!(r.clause().len(), 3);
        assert_eq!(r.dist(), &LabelDist::Deterministic(1));
        assert_eq!(
            r.display_with(&s).to_string(),
            "IF age < 29 AND marital = single AND income > 150 THEN approved = yes"
        );
    }

    #[test]
    fn operators_parse_longest_first() {
        let s = schema();
        let p = parse_predicate("age >= 30", &s).unwrap();
        assert_eq!(p.op(), Op::Ge);
        let p = parse_predicate("marital != married", &s).unwrap();
        assert_eq!(p.op(), Op::Ne);
        assert_eq!(p.value(), Value::Cat(1));
    }

    #[test]
    fn true_clause() {
        let s = schema();
        let r = parse_rule("TRUE => no", &s).unwrap();
        assert!(r.clause().is_empty());
    }

    #[test]
    fn case_insensitive_and() {
        let s = schema();
        let c = parse_clause("age < 10 and income > 5", &s).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn error_cases() {
        let s = schema();
        assert!(matches!(parse_rule("age < 29", &s), Err(RuleError::Parse { .. })));
        assert!(matches!(parse_rule("age < 29 => maybe", &s), Err(RuleError::Parse { .. })));
        assert!(matches!(
            parse_rule("height < 29 => yes", &s),
            Err(RuleError::UnknownFeatureName { .. })
        ));
        assert!(parse_rule("age < abc => yes", &s).is_err());
        assert!(parse_rule("marital = widowed => yes", &s).is_err());
        // Illegal operator on categorical is caught by validation.
        assert!(parse_rule("marital > single => yes", &s).is_err());
    }

    #[test]
    fn feature_names_containing_and_are_safe() {
        let s = Schema::builder("y", vec!["a".into(), "b".into()])
            .numeric("sand") // contains "and" as substring, not a word
            .build();
        let c = parse_clause("sand > 3", &s).unwrap();
        assert_eq!(c.len(), 1);
    }
}
