//! Clauses: conjunctions of predicates, with coverage and satisfiability.

use std::fmt;

use frote_data::{Dataset, FeatureKind, Schema, Value};
use serde::{Deserialize, Serialize};

use crate::engine::CompiledClause;
use crate::error::RuleError;
use crate::predicate::{Op, Predicate};

/// Datasets below this row count are scanned serially: the per-task cost of
/// a predicate scan only beats the pool overhead on biggish inputs.
const PAR_SCAN_MIN: usize = 4096;

/// Fixed block size for parallel row scans; `par_blocks_map` keeps block
/// boundaries thread-count-independent, so scans stay deterministic.
const SCAN_BLOCK: usize = 1024;

/// A conjunction of predicates. The empty clause is always true (it covers
/// the entire domain), matching the paper's Algorithm 2 where deleting every
/// condition yields coverage `|D|`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Clause {
    predicates: Vec<Predicate>,
}

impl Clause {
    /// Creates a clause from predicates.
    pub fn new(predicates: Vec<Predicate>) -> Self {
        Clause { predicates }
    }

    /// The always-true clause.
    pub fn always_true() -> Self {
        Clause { predicates: Vec::new() }
    }

    /// The predicates of the conjunction.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Number of predicates.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// Whether the clause has no predicates (always true).
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Whether `row` satisfies every predicate.
    ///
    /// # Panics
    ///
    /// Panics if a predicate's feature index exceeds the row arity or kinds
    /// mismatch; validate against the schema first for error handling.
    pub fn satisfied_by(&self, row: &[Value]) -> bool {
        self.predicates.iter().all(|p| p.eval_row(row))
    }

    /// Row indices of `ds` covered by this clause (paper Eq. 1).
    ///
    /// Valid clauses are evaluated by the columnar engine
    /// ([`CompiledClause`]): compiled bitmask sweeps over the typed column
    /// slices, bit-identical to [`Clause::coverage_interpreted`] at any
    /// thread count. Clauses that fail schema validation fall back to the
    /// interpreter, preserving its documented panic behavior; use
    /// [`Clause::try_coverage`] for a `Result` instead.
    pub fn coverage(&self, ds: &Dataset) -> Vec<usize> {
        match CompiledClause::compile(self, ds.schema()) {
            Ok(compiled) => compiled.coverage(ds),
            Err(_) => self.coverage_interpreted(ds),
        }
    }

    /// Number of covered rows, without materializing indices — compiled
    /// popcount for valid clauses, interpreter fallback otherwise (see
    /// [`Clause::coverage`]).
    pub fn coverage_count(&self, ds: &Dataset) -> usize {
        match CompiledClause::compile(self, ds.schema()) {
            Ok(compiled) => compiled.coverage_count(ds),
            Err(_) => self.coverage_count_interpreted(ds),
        }
    }

    /// Pre-validated coverage: compiles the clause against the dataset's
    /// schema once, then scans — never panics mid-scan on malformed
    /// (parsed/expert-submitted) clauses.
    ///
    /// # Errors
    ///
    /// Returns the first [`RuleError`] of [`Clause::validate`].
    pub fn try_coverage(&self, ds: &Dataset) -> Result<Vec<usize>, RuleError> {
        Ok(CompiledClause::compile(self, ds.schema())?.coverage(ds))
    }

    /// Pre-validated twin of [`Clause::coverage_count`].
    ///
    /// # Errors
    ///
    /// Returns the first [`RuleError`] of [`Clause::validate`].
    pub fn try_coverage_count(&self, ds: &Dataset) -> Result<usize, RuleError> {
        Ok(CompiledClause::compile(self, ds.schema())?.coverage_count(ds))
    }

    /// The row-at-a-time reference implementation of [`Clause::coverage`]:
    /// evaluates boxed [`Value`] cells predicate by predicate. Kept as the
    /// differential-testing oracle for the columnar engine (and as the
    /// fallback for clauses that fail validation).
    ///
    /// Large datasets are scanned in parallel over fixed row blocks
    /// (`frote_par`); the concatenated result is identical to the serial
    /// scan at any thread count.
    pub fn coverage_interpreted(&self, ds: &Dataset) -> Vec<usize> {
        let n = ds.n_rows();
        if n < PAR_SCAN_MIN || frote_par::threads() <= 1 {
            return (0..n).filter(|&i| self.covers_row(ds, i)).collect();
        }
        frote_par::par_blocks_map(n, SCAN_BLOCK, |_, rows| {
            rows.filter(|&i| self.covers_row(ds, i)).collect()
        })
    }

    /// Row-at-a-time reference implementation of
    /// [`Clause::coverage_count`] (see [`Clause::coverage_interpreted`]).
    pub fn coverage_count_interpreted(&self, ds: &Dataset) -> usize {
        let n = ds.n_rows();
        if n < PAR_SCAN_MIN || frote_par::threads() <= 1 {
            return (0..n).filter(|&i| self.covers_row(ds, i)).count();
        }
        frote_par::par_blocks_map(n, SCAN_BLOCK, |_, rows| {
            vec![rows.filter(|&i| self.covers_row(ds, i)).count()]
        })
        .into_iter()
        .sum()
    }

    #[inline]
    fn covers_row(&self, ds: &Dataset, i: usize) -> bool {
        self.predicates.iter().all(|p| p.eval(ds.value(i, p.feature())))
    }

    /// The conjunction of `self` and `other`.
    pub fn and(&self, other: &Clause) -> Clause {
        let mut predicates = self.predicates.clone();
        predicates.extend_from_slice(&other.predicates);
        Clause { predicates }
    }

    /// A copy with the predicate at `index` removed (Algorithm 2's condition
    /// deletion).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn without(&self, index: usize) -> Clause {
        let mut predicates = self.predicates.clone();
        predicates.remove(index);
        Clause { predicates }
    }

    /// Whether every predicate of `self` also appears in `other` (used to
    /// check that relaxation only deletes conditions).
    pub fn subset_of(&self, other: &Clause) -> bool {
        self.predicates.iter().all(|p| other.predicates.contains(p))
    }

    /// Validates every predicate against `schema`.
    ///
    /// # Errors
    ///
    /// Returns the first [`RuleError`] found.
    pub fn validate(&self, schema: &Schema) -> Result<(), RuleError> {
        self.predicates.iter().try_for_each(|p| p.validate(schema))
    }

    /// Analytic satisfiability over the domain described by `schema`:
    /// whether *some* assignment of feature values satisfies the clause.
    ///
    /// Used for conflict detection (paper §3.1): two rules conflict when the
    /// conjunction of their clauses is satisfiable and their label
    /// distributions differ. Numeric features check interval consistency;
    /// categorical features check that required equalities do not contradict
    /// each other or the exclusions, and that exclusions leave at least one
    /// category.
    pub fn satisfiable(&self, schema: &Schema) -> bool {
        for j in 0..schema.n_features() {
            let preds: Vec<&Predicate> =
                self.predicates.iter().filter(|p| p.feature() == j).collect();
            if preds.is_empty() {
                continue;
            }
            match schema.feature(j).kind() {
                FeatureKind::Numeric => {
                    if !numeric_feasible(&preds) {
                        return false;
                    }
                }
                FeatureKind::Categorical { categories } => {
                    if !categorical_feasible(&preds, categories.len()) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Renders with feature/category names.
    pub fn display_with<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Clause, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.0.predicates.is_empty() {
                    return f.write_str("TRUE");
                }
                for (i, p) in self.0.predicates.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" AND ")?;
                    }
                    write!(f, "{}", p.display_with(self.1))?;
                }
                Ok(())
            }
        }
        D(self, schema)
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.predicates.is_empty() {
            return f.write_str("TRUE");
        }
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                f.write_str(" AND ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl FromIterator<Predicate> for Clause {
    fn from_iter<T: IntoIterator<Item = Predicate>>(iter: T) -> Self {
        Clause { predicates: iter.into_iter().collect() }
    }
}

/// Interval feasibility for numeric predicates on one feature.
fn numeric_feasible(preds: &[&Predicate]) -> bool {
    // Track (lo, lo_strict), (hi, hi_strict) and required equalities.
    let mut lo = f64::NEG_INFINITY;
    let mut lo_strict = false;
    let mut hi = f64::INFINITY;
    let mut hi_strict = false;
    let mut eq: Option<f64> = None;
    for p in preds {
        let v = p.value().expect_num();
        match p.op() {
            Op::Eq => match eq {
                Some(e) if e != v => return false,
                _ => eq = Some(v),
            },
            Op::Gt => {
                if v > lo || (v == lo && !lo_strict) {
                    lo = v;
                    lo_strict = true;
                }
            }
            Op::Ge => {
                if v > lo {
                    lo = v;
                    lo_strict = false;
                }
            }
            Op::Lt => {
                if v < hi || (v == hi && !hi_strict) {
                    hi = v;
                    hi_strict = true;
                }
            }
            Op::Le => {
                if v < hi {
                    hi = v;
                    hi_strict = false;
                }
            }
            Op::Ne => unreachable!("Ne is not allowed on numeric features"),
        }
    }
    if let Some(e) = eq {
        let above = e > lo || (e == lo && !lo_strict);
        let below = e < hi || (e == hi && !hi_strict);
        return above && below;
    }
    lo < hi || (lo == hi && !lo_strict && !hi_strict)
}

/// Feasibility for categorical predicates on one feature.
fn categorical_feasible(preds: &[&Predicate], cardinality: usize) -> bool {
    let mut required: Option<u32> = None;
    let mut excluded: Vec<u32> = Vec::new();
    for p in preds {
        let c = p.value().expect_cat();
        match p.op() {
            Op::Eq => match required {
                Some(r) if r != c => return false,
                _ => required = Some(c),
            },
            Op::Ne => excluded.push(c),
            _ => unreachable!("only Eq/Ne are allowed on categorical features"),
        }
    }
    match required {
        Some(r) => !excluded.contains(&r),
        None => {
            excluded.sort_unstable();
            excluded.dedup();
            excluded.len() < cardinality
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::Schema;

    fn schema() -> Schema {
        Schema::builder("y", vec!["a".into(), "b".into()])
            .numeric("age")
            .categorical("job", vec!["eng".into(), "law".into(), "med".into()])
            .build()
    }

    fn demo_dataset() -> Dataset {
        let mut ds = Dataset::new(schema());
        ds.push_row(&[Value::Num(24.0), Value::Cat(0)], 0).unwrap();
        ds.push_row(&[Value::Num(35.0), Value::Cat(1)], 1).unwrap();
        ds.push_row(&[Value::Num(28.0), Value::Cat(0)], 1).unwrap();
        ds
    }

    fn age_lt(t: f64) -> Predicate {
        Predicate::new(0, Op::Lt, Value::Num(t))
    }

    #[test]
    fn large_dataset_coverage_matches_row_filter() {
        // 6000 rows crosses PAR_SCAN_MIN, so with FROTE_THREADS > 1 this
        // runs the blocked parallel scan; either path must equal the brute
        // filter, in row order.
        let mut ds = Dataset::new(schema());
        for i in 0..6000 {
            ds.push_row(&[Value::Num((i % 97) as f64), Value::Cat((i % 2) as u32)], 0).unwrap();
        }
        let c = Clause::new(vec![age_lt(13.0), Predicate::new(1, Op::Eq, Value::Cat(1))]);
        let brute: Vec<usize> = (0..ds.n_rows()).filter(|&i| c.satisfied_by(&ds.row(i))).collect();
        assert_eq!(c.coverage(&ds), brute);
        assert_eq!(c.coverage_count(&ds), brute.len());
        assert!(!brute.is_empty());
    }

    #[test]
    fn coverage_matches_manual_filter() {
        let ds = demo_dataset();
        let c = Clause::new(vec![age_lt(30.0), Predicate::new(1, Op::Eq, Value::Cat(0))]);
        assert_eq!(c.coverage(&ds), vec![0, 2]);
        assert_eq!(c.coverage_count(&ds), 2);
    }

    #[test]
    fn empty_clause_covers_everything() {
        let ds = demo_dataset();
        assert_eq!(Clause::always_true().coverage(&ds).len(), 3);
        assert!(Clause::always_true().satisfied_by(&ds.row(0)));
    }

    #[test]
    fn and_and_without() {
        let c = Clause::new(vec![age_lt(30.0)]);
        let d = Clause::new(vec![Predicate::new(1, Op::Ne, Value::Cat(2))]);
        let both = c.and(&d);
        assert_eq!(both.len(), 2);
        assert_eq!(both.without(1), c);
        assert!(c.subset_of(&both));
        assert!(!both.subset_of(&c));
    }

    #[test]
    fn numeric_satisfiability() {
        let s = schema();
        // age < 10 AND age > 20 -> unsat
        let c = Clause::new(vec![age_lt(10.0), Predicate::new(0, Op::Gt, Value::Num(20.0))]);
        assert!(!c.satisfiable(&s));
        // age < 20 AND age > 10 -> sat
        let c = Clause::new(vec![age_lt(20.0), Predicate::new(0, Op::Gt, Value::Num(10.0))]);
        assert!(c.satisfiable(&s));
        // age >= 10 AND age <= 10 -> sat (point)
        let c = Clause::new(vec![
            Predicate::new(0, Op::Ge, Value::Num(10.0)),
            Predicate::new(0, Op::Le, Value::Num(10.0)),
        ]);
        assert!(c.satisfiable(&s));
        // age > 10 AND age <= 10 -> unsat
        let c = Clause::new(vec![
            Predicate::new(0, Op::Gt, Value::Num(10.0)),
            Predicate::new(0, Op::Le, Value::Num(10.0)),
        ]);
        assert!(!c.satisfiable(&s));
        // age = 15 inside (10, 20) -> sat; = 25 outside -> unsat
        let mk = |e: f64| {
            Clause::new(vec![
                Predicate::new(0, Op::Eq, Value::Num(e)),
                Predicate::new(0, Op::Gt, Value::Num(10.0)),
                Predicate::new(0, Op::Lt, Value::Num(20.0)),
            ])
        };
        assert!(mk(15.0).satisfiable(&s));
        assert!(!mk(25.0).satisfiable(&s));
    }

    #[test]
    fn categorical_satisfiability() {
        let s = schema();
        // job = eng AND job = law -> unsat
        let c = Clause::new(vec![
            Predicate::new(1, Op::Eq, Value::Cat(0)),
            Predicate::new(1, Op::Eq, Value::Cat(1)),
        ]);
        assert!(!c.satisfiable(&s));
        // job = eng AND job != eng -> unsat
        let c = Clause::new(vec![
            Predicate::new(1, Op::Eq, Value::Cat(0)),
            Predicate::new(1, Op::Ne, Value::Cat(0)),
        ]);
        assert!(!c.satisfiable(&s));
        // job != eng AND job != law -> sat (med remains)
        let c = Clause::new(vec![
            Predicate::new(1, Op::Ne, Value::Cat(0)),
            Predicate::new(1, Op::Ne, Value::Cat(1)),
        ]);
        assert!(c.satisfiable(&s));
        // excluding all three categories -> unsat
        let c = Clause::new(vec![
            Predicate::new(1, Op::Ne, Value::Cat(0)),
            Predicate::new(1, Op::Ne, Value::Cat(1)),
            Predicate::new(1, Op::Ne, Value::Cat(2)),
        ]);
        assert!(!c.satisfiable(&s));
    }

    #[test]
    fn try_coverage_returns_error_for_mismatched_parsed_rule() {
        // Regression: a rule parsed against one schema but evaluated
        // against a dataset with a different layout used to panic inside
        // `Predicate::eval` mid-scan. The pre-validated scans surface a
        // `RuleError` instead.
        let other = Schema::builder("y", vec!["a".into(), "b".into()])
            .categorical("age", vec!["young".into(), "old".into()])
            .numeric("job")
            .build();
        let clause = crate::parse::parse_clause("age < 30", &schema()).unwrap();
        let mut ds = Dataset::new(other);
        ds.push_row(&[Value::Cat(0), Value::Num(1.0)], 0).unwrap();
        assert!(matches!(
            clause.try_coverage(&ds),
            Err(RuleError::ValueKindMismatch { .. } | RuleError::OperatorNotAllowed { .. })
        ));
        assert!(clause.try_coverage_count(&ds).is_err());
        // The valid-schema path goes through the compiled engine.
        let good = demo_dataset();
        assert_eq!(clause.try_coverage(&good).unwrap(), clause.coverage_interpreted(&good));
        assert_eq!(clause.try_coverage_count(&good).unwrap(), 2);
    }

    #[test]
    fn nan_cells_are_never_covered_by_any_numeric_operator() {
        // Pinned NaN semantics: IEEE comparisons against NaN are false, so
        // a NaN cell is outside every numeric predicate's coverage — in
        // the interpreter and the compiled engine alike.
        let mut ds = Dataset::new(schema());
        ds.push_row(&[Value::Num(f64::NAN), Value::Cat(0)], 0).unwrap();
        ds.push_row(&[Value::Num(24.0), Value::Cat(0)], 0).unwrap();
        for op in [Op::Eq, Op::Gt, Op::Ge, Op::Lt, Op::Le] {
            let c = Clause::new(vec![Predicate::new(0, op, Value::Num(24.0))]);
            assert!(!c.coverage(&ds).contains(&0), "{op:?} covered the NaN row");
            assert!(!c.coverage_interpreted(&ds).contains(&0), "{op:?} interpreter");
        }
        // A NaN *threshold* likewise covers nothing.
        let c = Clause::new(vec![Predicate::new(0, Op::Ge, Value::Num(f64::NAN))]);
        assert!(c.coverage(&ds).is_empty());
        assert!(c.coverage_interpreted(&ds).is_empty());
    }

    #[test]
    fn validate_propagates_predicate_errors() {
        let s = schema();
        let ok = Clause::new(vec![age_lt(10.0)]);
        assert!(ok.validate(&s).is_ok());
        let bad = Clause::new(vec![Predicate::new(0, Op::Ne, Value::Num(1.0))]);
        assert!(bad.validate(&s).is_err());
    }

    #[test]
    fn display() {
        let s = schema();
        let c = Clause::new(vec![age_lt(30.0), Predicate::new(1, Op::Eq, Value::Cat(2))]);
        assert_eq!(c.display_with(&s).to_string(), "age < 30 AND job = med");
        assert_eq!(Clause::always_true().to_string(), "TRUE");
    }

    #[test]
    fn from_iterator() {
        let c: Clause = vec![age_lt(1.0)].into_iter().collect();
        assert_eq!(c.len(), 1);
    }
}
