//! The §5.1 rule-perturbation protocol.
//!
//! The paper generates realistic feedback rules by extracting a rule-set
//! explanation of an initial model (BRCG; our stand-in lives in
//! `frote-induct`) and perturbing those rules "to simulate users providing
//! feedback that deviates from the model's predictions". For each seed rule,
//! three perturbations are applied:
//!
//! 1. a random predicate's operator is reversed (`=` <-> `!=`, `<=` <-> `>=`,
//!    `<` <-> `>`),
//! 2. the selected predicate's value is re-drawn from the training data
//!    (categorical: a random *other* category; numeric: uniform within the
//!    column's observed min..max),
//! 3. a random condition from another rule is appended.
//!
//! Candidates are kept only when their coverage satisfies
//! `0.05 <= |cov(s, D)| / |D| < 0.25`, until the pool has the requested
//! number of rules.

use frote_data::stats::DatasetStats;
use frote_data::{Dataset, FeatureKind, Schema, Value};
use rand::seq::IndexedRandom;
use rand::Rng;

use crate::clause::Clause;
use crate::predicate::{Op, Predicate};
use crate::rule::FeedbackRule;

/// Parameters of the perturbation protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbConfig {
    /// Number of rules to generate (the paper uses 100 per dataset).
    pub pool_size: usize,
    /// Inclusive lower bound on relative coverage (paper: 0.05).
    pub min_coverage: f64,
    /// Exclusive upper bound on relative coverage (paper: 0.25).
    pub max_coverage: f64,
    /// Candidate attempts before giving up (the synthetic concepts always
    /// admit pools well under this bound).
    pub max_tries: usize,
}

impl Default for PerturbConfig {
    fn default() -> Self {
        PerturbConfig { pool_size: 100, min_coverage: 0.05, max_coverage: 0.25, max_tries: 50_000 }
    }
}

/// Generates a pool of perturbed feedback rules from `seed_rules`.
///
/// Each produced rule is deterministic with a class drawn uniformly from the
/// classes *other than* its seed rule's class — the "deviates from the
/// model's predictions" part of the protocol. Returns fewer than
/// `config.pool_size` rules only if `config.max_tries` is exhausted (tiny or
/// degenerate datasets).
///
/// # Panics
///
/// Panics if `seed_rules` is empty, a seed rule has an empty clause, or the
/// schema has fewer than two classes.
pub fn generate_pool<R: Rng + ?Sized>(
    seed_rules: &[FeedbackRule],
    ds: &Dataset,
    schema: &Schema,
    config: &PerturbConfig,
    rng: &mut R,
) -> Vec<FeedbackRule> {
    generate_pool_with_provenance(seed_rules, ds, schema, config, rng)
        .into_iter()
        .map(|(rule, _)| rule)
        .collect()
}

/// Like [`generate_pool`] but records, for each produced rule, the index of
/// the seed rule it was perturbed from. The Overlay baseline needs this
/// mapping: Daly et al.'s patch layer triggers on the *original* explanation
/// rule's region, not only on the edited feedback rule's.
pub fn generate_pool_with_provenance<R: Rng + ?Sized>(
    seed_rules: &[FeedbackRule],
    ds: &Dataset,
    schema: &Schema,
    config: &PerturbConfig,
    rng: &mut R,
) -> Vec<(FeedbackRule, usize)> {
    assert!(!seed_rules.is_empty(), "perturbation needs at least one seed rule");
    assert!(schema.n_classes() >= 2, "perturbation needs at least two classes");
    let stats = DatasetStats::of(ds);
    // Pool of conditions for perturbation 3: all predicates of all seeds.
    let condition_pool: Vec<Predicate> =
        seed_rules.iter().flat_map(|r| r.clause().predicates().iter().copied()).collect();

    let lo = (config.min_coverage * ds.n_rows() as f64).ceil() as usize;
    let hi = (config.max_coverage * ds.n_rows() as f64).ceil() as usize;

    let mut pool = Vec::with_capacity(config.pool_size);
    let mut tries = 0;
    while pool.len() < config.pool_size && tries < config.max_tries {
        tries += 1;
        let seed_idx = rng.random_range(0..seed_rules.len());
        let seed = &seed_rules[seed_idx];
        if seed.clause().is_empty() {
            panic!("seed rules must have non-empty clauses");
        }
        let clause = perturb_clause(seed.clause(), &condition_pool, schema, &stats, rng);
        if clause.validate(schema).is_err() {
            continue;
        }
        let cov = clause.coverage_count(ds);
        if cov < lo || cov >= hi.max(lo + 1) {
            continue;
        }
        // Pick a class deviating from the seed's.
        let seed_class = seed.dist().mode();
        let n = schema.n_classes() as u32;
        let offset = rng.random_range(1..n);
        let class = (seed_class + offset) % n;
        pool.push((FeedbackRule::deterministic(clause, class), seed_idx));
    }
    pool
}

/// Applies the three §5.1 perturbations to one clause.
pub fn perturb_clause<R: Rng + ?Sized>(
    clause: &Clause,
    condition_pool: &[Predicate],
    schema: &Schema,
    stats: &DatasetStats,
    rng: &mut R,
) -> Clause {
    let mut preds: Vec<Predicate> = clause.predicates().to_vec();
    if preds.is_empty() {
        return clause.clone();
    }
    // 1. Reverse a random predicate's operator.
    let idx = rng.random_range(0..preds.len());
    let p = preds[idx];
    let new_op = reverse_for_kind(p.op(), schema.feature(p.feature()).kind());

    // 2. Re-draw the value of the selected predicate from the data.
    let new_value = redraw_value(&p, schema, stats, rng);
    preds[idx] = Predicate::new(p.feature(), new_op, new_value);

    // 3. Append a random condition from another rule (skipping conditions on
    // the feature we just touched, to avoid immediate contradictions).
    let candidates: Vec<&Predicate> = condition_pool
        .iter()
        .filter(|c| c.feature() != p.feature() && !preds.contains(c))
        .collect();
    if let Some(extra) = candidates.choose(rng) {
        preds.push(**extra);
    }
    Clause::new(preds)
}

/// Operator reversal restricted to operators legal on the feature kind:
/// numeric `=` has no legal reverse (`!=` is categorical-only), so it flips
/// to a random inequality instead.
fn reverse_for_kind(op: Op, kind: &FeatureKind) -> Op {
    let reversed = op.reversed();
    if reversed.allowed_on(kind) {
        reversed
    } else {
        // Numeric Eq -> Ne is disallowed; pick Ge (deterministic choice keeps
        // the protocol reproducible).
        Op::Ge
    }
}

fn redraw_value<R: Rng + ?Sized>(
    p: &Predicate,
    schema: &Schema,
    stats: &DatasetStats,
    rng: &mut R,
) -> Value {
    match schema.feature(p.feature()).kind() {
        FeatureKind::Categorical { categories } => {
            let current = p.value().as_cat().unwrap_or(0);
            let k = categories.len() as u32;
            if k <= 1 {
                return Value::Cat(current);
            }
            let offset = rng.random_range(1..k);
            Value::Cat((current + offset) % k)
        }
        FeatureKind::Numeric => {
            let s = stats.numeric(p.feature());
            match s {
                Some(s) if s.range() > 0.0 => Value::Num(rng.random_range(s.min..s.max)),
                Some(s) => Value::Num(s.min),
                None => p.value(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::LabelDist;
    use frote_data::synth::{DatasetKind, SynthConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Dataset, Vec<FeedbackRule>) {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 600, ..Default::default() });
        // Hand-written seed rules mimicking induction output.
        let r1 = FeedbackRule::deterministic(
            Clause::new(vec![Predicate::new(5, Op::Eq, Value::Cat(0))]),
            0,
        );
        let r2 = FeedbackRule::deterministic(
            Clause::new(vec![
                Predicate::new(0, Op::Eq, Value::Cat(3)),
                Predicate::new(3, Op::Ne, Value::Cat(0)),
            ]),
            1,
        );
        (ds, vec![r1, r2])
    }

    #[test]
    fn pool_respects_coverage_bounds() {
        let (ds, seeds) = setup();
        let schema = ds.schema().clone();
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = PerturbConfig { pool_size: 20, ..Default::default() };
        let pool = generate_pool(&seeds, &ds, &schema, &cfg, &mut rng);
        assert_eq!(pool.len(), 20);
        let n = ds.n_rows() as f64;
        for rule in &pool {
            let c = rule.coverage_count(&ds) as f64 / n;
            assert!((0.05..0.25).contains(&c), "coverage {c} out of range");
            rule.validate(&schema).unwrap();
        }
    }

    #[test]
    fn pool_classes_deviate_from_seed() {
        let (ds, seeds) = setup();
        let schema = ds.schema().clone();
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = PerturbConfig { pool_size: 30, ..Default::default() };
        let pool = generate_pool(&seeds, &ds, &schema, &cfg, &mut rng);
        // Every rule must be deterministic and reference a valid class.
        for rule in &pool {
            assert!(matches!(rule.dist(), LabelDist::Deterministic(_)));
        }
    }

    #[test]
    fn pool_generation_is_deterministic() {
        let (ds, seeds) = setup();
        let schema = ds.schema().clone();
        let cfg = PerturbConfig { pool_size: 10, ..Default::default() };
        let a = generate_pool(&seeds, &ds, &schema, &cfg, &mut StdRng::seed_from_u64(3));
        let b = generate_pool(&seeds, &ds, &schema, &cfg, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn perturb_clause_changes_something() {
        let (ds, seeds) = setup();
        let schema = ds.schema().clone();
        let stats = DatasetStats::of(&ds);
        let pool: Vec<Predicate> =
            seeds.iter().flat_map(|r| r.clause().predicates().to_vec()).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let out = perturb_clause(seeds[0].clause(), &pool, &schema, &stats, &mut rng);
        assert_ne!(&out, seeds[0].clause());
    }

    #[test]
    fn numeric_seed_rules_work() {
        let ds =
            DatasetKind::WineQuality.generate(&SynthConfig { n_rows: 800, ..Default::default() });
        let schema = ds.schema().clone();
        let seeds = vec![FeedbackRule::deterministic(
            Clause::new(vec![Predicate::new(10, Op::Ge, Value::Num(11.0))]),
            4,
        )];
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = PerturbConfig { pool_size: 10, ..Default::default() };
        let pool = generate_pool(&seeds, &ds, &schema, &cfg, &mut rng);
        assert!(!pool.is_empty());
        for r in &pool {
            r.validate(&schema).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least one seed rule")]
    fn empty_seeds_panic() {
        let (ds, _) = setup();
        let schema = ds.schema().clone();
        let mut rng = StdRng::seed_from_u64(0);
        generate_pool(&[], &ds, &schema, &PerturbConfig::default(), &mut rng);
    }

    #[test]
    fn provenance_indices_reference_seeds() {
        let (ds, seeds) = setup();
        let schema = ds.schema().clone();
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = PerturbConfig { pool_size: 15, ..Default::default() };
        let pool = generate_pool_with_provenance(&seeds, &ds, &schema, &cfg, &mut rng);
        assert_eq!(pool.len(), 15);
        for (rule, seed_idx) in &pool {
            assert!(*seed_idx < seeds.len(), "provenance out of range");
            rule.validate(&schema).unwrap();
        }
        // Both seeds should be used across a pool of this size.
        let used: std::collections::HashSet<usize> = pool.iter().map(|&(_, s)| s).collect();
        assert!(used.len() >= 2, "only one seed ever used: {used:?}");
    }

    #[test]
    fn plain_pool_matches_provenance_pool() {
        let (ds, seeds) = setup();
        let schema = ds.schema().clone();
        let cfg = PerturbConfig { pool_size: 10, ..Default::default() };
        let plain = generate_pool(&seeds, &ds, &schema, &cfg, &mut StdRng::seed_from_u64(4));
        let tracked: Vec<FeedbackRule> = generate_pool_with_provenance(
            &seeds,
            &ds,
            &schema,
            &cfg,
            &mut StdRng::seed_from_u64(4),
        )
        .into_iter()
        .map(|(r, _)| r)
        .collect();
        assert_eq!(plain, tracked);
    }

    #[test]
    fn reverse_for_kind_keeps_legal_ops() {
        let num = FeatureKind::Numeric;
        assert_eq!(reverse_for_kind(Op::Le, &num), Op::Ge);
        assert_eq!(reverse_for_kind(Op::Eq, &num), Op::Ge); // Ne illegal on numeric
        let cat = FeatureKind::Categorical { categories: vec!["a".into(), "b".into()] };
        assert_eq!(reverse_for_kind(Op::Eq, &cat), Op::Ne);
    }
}
