//! # frote-rules
//!
//! Feedback rules for the FROTE (MLSys 2022) reproduction: predicates,
//! clauses, deterministic and probabilistic rules, rule sets with coverage
//! and conflict handling, rule relaxation (the paper's Algorithm 2 helper),
//! the §5.1 rule-perturbation protocol, and a small textual rule parser.
//!
//! A feedback rule `R = (s, π)` states: IF the clause `s` holds THEN the
//! label is distributed according to `π` (paper §3.1). Clauses are
//! conjunctions of `(attribute, operator, value)` predicates; categorical
//! attributes allow `{=, !=}`, numeric attributes allow `{=, >, >=, <, <=}`.
//!
//! ```
//! use frote_data::{Schema, Dataset, Value};
//! use frote_rules::{Clause, FeedbackRule, LabelDist, Op, Predicate};
//!
//! let schema = Schema::builder("approved", vec!["no".into(), "yes".into()])
//!     .numeric("age")
//!     .categorical("marital", vec!["single".into(), "married".into()])
//!     .build();
//!
//! // "IF age < 29 AND marital = single THEN approved = yes"
//! let rule = FeedbackRule::new(
//!     Clause::new(vec![
//!         Predicate::new(0, Op::Lt, Value::Num(29.0)),
//!         Predicate::new(1, Op::Eq, Value::Cat(0)),
//!     ]),
//!     LabelDist::deterministic(1),
//! );
//!
//! let mut ds = Dataset::new(schema);
//! ds.push_row(&[Value::Num(24.0), Value::Cat(0)], 0)?;
//! ds.push_row(&[Value::Num(44.0), Value::Cat(0)], 0)?;
//! assert_eq!(rule.coverage(&ds), vec![0]);
//! # Ok::<(), frote_data::DataError>(())
//! ```

#![warn(missing_docs)]

mod clause;
mod dist;
pub mod engine;
mod error;
pub mod parse;
pub mod perturb;
mod predicate;
pub mod quality;
pub mod relax;
mod rule;
mod ruleset;

pub use clause::Clause;
pub use dist::LabelDist;
pub use engine::{CompiledClause, CompiledRuleSet, RowMask, RuleMaskCache};
pub use error::RuleError;
pub use predicate::{Op, Predicate};
pub use rule::FeedbackRule;
pub use ruleset::{ConflictResolution, FeedbackRuleSet};
