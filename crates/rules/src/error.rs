//! Error type for the rules crate.

use std::error::Error as StdError;
use std::fmt;

use crate::predicate::Op;

/// Errors produced by rule construction, validation, and parsing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuleError {
    /// A predicate referenced a feature index outside the schema.
    UnknownFeature {
        /// The offending feature index.
        index: usize,
    },
    /// A predicate referenced a feature name not in the schema.
    UnknownFeatureName {
        /// The offending name.
        name: String,
    },
    /// An operator was used on a feature kind that does not allow it.
    OperatorNotAllowed {
        /// The operator.
        op: Op,
        /// The feature name.
        feature: String,
    },
    /// A predicate value's kind did not match its feature.
    ValueKindMismatch {
        /// The feature name.
        feature: String,
    },
    /// A rule referenced a class outside the schema's label vocabulary.
    UnknownClass {
        /// The offending class index.
        class: u32,
    },
    /// A probabilistic label distribution was malformed.
    InvalidDistribution {
        /// Human-readable detail.
        detail: String,
    },
    /// Rule text could not be parsed.
    Parse {
        /// Human-readable detail.
        detail: String,
    },
    /// A rule set contained conflicting rules where a conflict-free set was
    /// required.
    ConflictingRules {
        /// Indices of the first conflicting pair found.
        first: usize,
        /// Second member of the pair.
        second: usize,
    },
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::UnknownFeature { index } => write!(f, "unknown feature index {index}"),
            RuleError::UnknownFeatureName { name } => write!(f, "unknown feature name {name:?}"),
            RuleError::OperatorNotAllowed { op, feature } => {
                write!(f, "operator {op} is not allowed on feature {feature:?}")
            }
            RuleError::ValueKindMismatch { feature } => {
                write!(f, "value kind does not match feature {feature:?}")
            }
            RuleError::UnknownClass { class } => write!(f, "unknown class index {class}"),
            RuleError::InvalidDistribution { detail } => {
                write!(f, "invalid label distribution: {detail}")
            }
            RuleError::Parse { detail } => write!(f, "rule parse error: {detail}"),
            RuleError::ConflictingRules { first, second } => {
                write!(f, "rules {first} and {second} conflict")
            }
        }
    }
}

impl StdError for RuleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert_eq!(RuleError::UnknownFeature { index: 3 }.to_string(), "unknown feature index 3");
        assert_eq!(
            RuleError::OperatorNotAllowed { op: Op::Ne, feature: "age".into() }.to_string(),
            "operator != is not allowed on feature \"age\""
        );
        assert_eq!(
            RuleError::ConflictingRules { first: 0, second: 2 }.to_string(),
            "rules 0 and 2 conflict"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<RuleError>();
    }
}
