//! Feedback rule sets: coverage union, conflict detection and resolution.

use frote_data::{Dataset, Schema, Value};
use serde::{Deserialize, Serialize};

use crate::engine::CompiledRuleSet;
use crate::error::RuleError;
use crate::rule::FeedbackRule;

/// How to resolve conflicting rules (paper §3.1 lists three options; the
/// third — asking the experts — is out of scope for a library).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictResolution {
    /// Drop the later rule of each conflicting pair (a degenerate but safe
    /// form of "removal of the intersection" when clause negation is not
    /// representable as a conjunction).
    DropLater,
    /// Create a new, more specific rule for the intersection carrying the
    /// even mixture of the two distributions; the intersection rule takes
    /// precedence over both originals (paper's option 2). Coverage
    /// attribution becomes first-match in specificity order.
    IntersectionMixture,
}

/// An ordered set of feedback rules (FRS).
///
/// Rules are kept in priority order: [`FeedbackRuleSet::first_covering`]
/// returns the earliest rule covering a row, which makes the *effective*
/// coverages disjoint as the paper's problem formalization assumes (§3.2).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FeedbackRuleSet {
    rules: Vec<FeedbackRule>,
}

impl FeedbackRuleSet {
    /// Creates a rule set from rules in priority order.
    pub fn new(rules: Vec<FeedbackRule>) -> Self {
        FeedbackRuleSet { rules }
    }

    /// The empty rule set.
    pub fn empty() -> Self {
        FeedbackRuleSet { rules: Vec::new() }
    }

    /// The rules in priority order.
    pub fn rules(&self) -> &[FeedbackRule] {
        &self.rules
    }

    /// Rule at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn rule(&self, index: usize) -> &FeedbackRule {
        &self.rules[index]
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Appends a rule with lowest priority.
    pub fn push(&mut self, rule: FeedbackRule) {
        self.rules.push(rule);
    }

    /// Validated construction: every rule is checked against `schema` and
    /// lowered through the engine's compile path before the set exists —
    /// the ingestion-time counterpart of the scan-time `try_*` methods, so
    /// expert-submitted or parsed rules are rejected with a [`RuleError`]
    /// before they can reach any scan.
    ///
    /// # Errors
    ///
    /// The first [`RuleError`] of validation or compilation, or
    /// [`RuleError::ConflictingRules`] when the rules conflict under
    /// first-match attribution.
    pub fn try_new(rules: Vec<FeedbackRule>, schema: &Schema) -> Result<Self, RuleError> {
        let set = FeedbackRuleSet { rules };
        set.validate(schema)?;
        CompiledRuleSet::compile(&set, schema)?;
        set.require_effectively_conflict_free(schema)?;
        Ok(set)
    }

    /// Validated ingestion of one rule: `rule` is checked against `schema`,
    /// compiled, and the grown set re-checked for effective conflicts; on
    /// any failure the set is left unchanged.
    ///
    /// # Errors
    ///
    /// As [`FeedbackRuleSet::try_new`], for the candidate rule / grown set.
    pub fn try_push(&mut self, rule: FeedbackRule, schema: &Schema) -> Result<(), RuleError> {
        rule.validate(schema)?;
        crate::engine::CompiledClause::compile(rule.clause(), schema)?;
        self.rules.push(rule);
        match self.require_effectively_conflict_free(schema) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.rules.pop();
                Err(e)
            }
        }
    }

    /// Iterates over the rules.
    pub fn iter(&self) -> std::slice::Iter<'_, FeedbackRule> {
        self.rules.iter()
    }

    /// Union coverage over `ds` (paper Eq. 2): sorted, deduplicated row
    /// indices covered by at least one rule.
    ///
    /// Valid sets are scanned by the columnar engine ([`CompiledRuleSet`]:
    /// per-rule bitmasks OR-ed word by word); sets that fail validation
    /// fall back to [`FeedbackRuleSet::coverage_interpreted`], preserving
    /// the interpreter's documented panic behavior. Use
    /// [`FeedbackRuleSet::try_coverage`] for a `Result` instead.
    pub fn coverage(&self, ds: &Dataset) -> Vec<usize> {
        match CompiledRuleSet::compile(self, ds.schema()) {
            Ok(compiled) => compiled.coverage(ds),
            Err(_) => self.coverage_interpreted(ds),
        }
    }

    /// Complement of [`FeedbackRuleSet::coverage`] over `ds`.
    pub fn outside_coverage(&self, ds: &Dataset) -> Vec<usize> {
        match CompiledRuleSet::compile(self, ds.schema()) {
            Ok(compiled) => compiled.outside_coverage(ds),
            Err(_) => self.outside_coverage_interpreted(ds),
        }
    }

    /// Pre-validated union coverage: validates the whole set (clauses and
    /// label distributions) against the dataset's schema once, then scans —
    /// never panics mid-scan on malformed rules.
    ///
    /// # Errors
    ///
    /// Returns the first [`RuleError`] of [`FeedbackRuleSet::validate`].
    pub fn try_coverage(&self, ds: &Dataset) -> Result<Vec<usize>, RuleError> {
        Ok(CompiledRuleSet::compile(self, ds.schema())?.coverage(ds))
    }

    /// Pre-validated twin of [`FeedbackRuleSet::outside_coverage`].
    ///
    /// # Errors
    ///
    /// Returns the first [`RuleError`] of [`FeedbackRuleSet::validate`].
    pub fn try_outside_coverage(&self, ds: &Dataset) -> Result<Vec<usize>, RuleError> {
        Ok(CompiledRuleSet::compile(self, ds.schema())?.outside_coverage(ds))
    }

    /// Pre-validated twin of [`FeedbackRuleSet::attributed_coverage`].
    ///
    /// # Errors
    ///
    /// Returns the first [`RuleError`] of [`FeedbackRuleSet::validate`].
    pub fn try_attributed_coverage(&self, ds: &Dataset) -> Result<Vec<Vec<usize>>, RuleError> {
        Ok(CompiledRuleSet::compile(self, ds.schema())?.attributed_coverage(ds))
    }

    /// The row-at-a-time reference implementation of
    /// [`FeedbackRuleSet::coverage`] — kept as the differential-testing
    /// oracle for the columnar engine (and as the fallback for sets that
    /// fail validation).
    pub fn coverage_interpreted(&self, ds: &Dataset) -> Vec<usize> {
        let mut covered = vec![false; ds.n_rows()];
        for rule in &self.rules {
            for i in rule.clause().coverage_interpreted(ds) {
                covered[i] = true;
            }
        }
        covered.iter().enumerate().filter_map(|(i, &c)| c.then_some(i)).collect()
    }

    /// Row-at-a-time reference implementation of
    /// [`FeedbackRuleSet::outside_coverage`].
    pub fn outside_coverage_interpreted(&self, ds: &Dataset) -> Vec<usize> {
        let covered = self.coverage_interpreted(ds);
        let mut mask = vec![true; ds.n_rows()];
        for i in covered {
            mask[i] = false;
        }
        mask.iter().enumerate().filter_map(|(i, &m)| m.then_some(i)).collect()
    }

    /// Index of the first (highest-priority) rule covering `row`.
    pub fn first_covering(&self, row: &[Value]) -> Option<usize> {
        self.rules.iter().position(|r| r.covers(row))
    }

    /// Indices of all rules covering `row`.
    pub fn covering_rules(&self, row: &[Value]) -> Vec<usize> {
        self.rules.iter().enumerate().filter_map(|(i, r)| r.covers(row).then_some(i)).collect()
    }

    /// Validates every rule against `schema`.
    ///
    /// # Errors
    ///
    /// Returns the first [`RuleError`] found.
    pub fn validate(&self, schema: &Schema) -> Result<(), RuleError> {
        self.rules.iter().try_for_each(|r| r.validate(schema))
    }

    /// All conflicting pairs `(i, j)`, `i < j`: clause conjunction is
    /// satisfiable over the domain but the distributions differ (paper §3.1).
    pub fn conflicts(&self, schema: &Schema) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.rules.len() {
            for j in i + 1..self.rules.len() {
                if self.rules_conflict(i, j, schema) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    fn rules_conflict(&self, i: usize, j: usize, schema: &Schema) -> bool {
        let (a, b) = (&self.rules[i], &self.rules[j]);
        a.dist() != b.dist() && a.clause().and(b.clause()).satisfiable(schema)
    }

    /// Whether the set has no conflicts.
    pub fn is_conflict_free(&self, schema: &Schema) -> bool {
        self.conflicts(schema).is_empty()
    }

    /// Conflicts that survive first-match priority attribution: a raw
    /// conflict `(i, j)` is *masked* when a rule `k <= i` carries a clause
    /// semantically equal to the pair's intersection `clause_i AND clause_j`
    /// (same predicate set). Attribution then hands every overlap row to
    /// that dedicated intersection rule before the lower-priority member is
    /// consulted — exactly the structure
    /// [`ConflictResolution::IntersectionMixture`] creates, realizing the
    /// paper's "exclude the intersection from the two original rules"
    /// without clause negation. A merely-overlapping earlier rule does NOT
    /// mask: the conflict is then a real modelling ambiguity.
    pub fn effective_conflicts(&self, schema: &Schema) -> Vec<(usize, usize)> {
        let eq = |a: &crate::Clause, b: &crate::Clause| a.subset_of(b) && b.subset_of(a);
        self.conflicts(schema)
            .into_iter()
            .filter(|&(i, j)| {
                let overlap = self.rules[i].clause().and(self.rules[j].clause());
                // A fully-shadowed duplicate clause (rule j identical to the
                // would-be intersection rule) is user error, not resolution.
                if eq(self.rules[j].clause(), &overlap) {
                    return true;
                }
                !(0..=i).any(|k| eq(self.rules[k].clause(), &overlap))
            })
            .collect()
    }

    /// Like [`FeedbackRuleSet::require_conflict_free`] but under first-match
    /// attribution (see [`FeedbackRuleSet::effective_conflicts`]).
    ///
    /// # Errors
    ///
    /// Returns [`RuleError::ConflictingRules`] naming the first surviving
    /// pair.
    pub fn require_effectively_conflict_free(&self, schema: &Schema) -> Result<(), RuleError> {
        match self.effective_conflicts(schema).first() {
            Some(&(first, second)) => Err(RuleError::ConflictingRules { first, second }),
            None => Ok(()),
        }
    }

    /// Errors with the first conflicting pair, if any.
    ///
    /// # Errors
    ///
    /// Returns [`RuleError::ConflictingRules`] naming the pair.
    pub fn require_conflict_free(&self, schema: &Schema) -> Result<(), RuleError> {
        match self.conflicts(schema).first() {
            Some(&(first, second)) => Err(RuleError::ConflictingRules { first, second }),
            None => Ok(()),
        }
    }

    /// Produces a conflict-free rule set using `strategy`.
    ///
    /// With [`ConflictResolution::IntersectionMixture`], for each conflicting
    /// pair a new rule `s1 AND s2 -> (π1+π2)/2` is prepended (higher
    /// priority); under first-match attribution this excludes the
    /// intersection from both originals, realizing the paper's option 2
    /// without clause negation. The intersection pass runs once — mixture
    /// rules agree on their overlaps by construction only pairwise, so any
    /// residual conflicts among them are resolved by a final `DropLater`
    /// sweep.
    pub fn resolve_conflicts(
        &self,
        schema: &Schema,
        strategy: ConflictResolution,
    ) -> FeedbackRuleSet {
        match strategy {
            ConflictResolution::DropLater => self.resolve_drop_later(schema),
            ConflictResolution::IntersectionMixture => {
                let conflicts = self.conflicts(schema);
                if conflicts.is_empty() {
                    return self.clone();
                }
                let mut intersections = Vec::new();
                for &(i, j) in &conflicts {
                    let clause = self.rules[i].clause().and(self.rules[j].clause());
                    let dist =
                        self.rules[i].dist().mixture(self.rules[j].dist(), schema.n_classes());
                    intersections.push(FeedbackRule::new(clause, dist));
                }
                let mut rules = intersections;
                rules.extend(self.rules.iter().cloned());
                FeedbackRuleSet { rules }.resolve_drop_later_prioritized(schema)
            }
        }
    }

    fn resolve_drop_later(&self, schema: &Schema) -> FeedbackRuleSet {
        let mut kept: Vec<FeedbackRule> = Vec::new();
        for rule in &self.rules {
            let conflicts_with_kept = kept.iter().any(|k| {
                k.dist() != rule.dist() && k.clause().and(rule.clause()).satisfiable(schema)
            });
            if !conflicts_with_kept {
                kept.push(rule.clone());
            }
        }
        FeedbackRuleSet { rules: kept }
    }

    /// Like `resolve_drop_later` but treats *prioritized overlap* as
    /// acceptable: a later rule overlapping an earlier one is kept when the
    /// earlier rule is more specific (its clause subsumes under first-match).
    /// Here we keep it simple: later rules whose conflicts are entirely with
    /// earlier rules are retained because first-match attribution silences
    /// the overlap; mutual conflicts among equal-priority additions fall back
    /// to dropping.
    fn resolve_drop_later_prioritized(&self, _schema: &Schema) -> FeedbackRuleSet {
        // First-match attribution makes earlier rules win on overlaps, so
        // the ordered set is already effectively conflict-free.
        self.clone()
    }

    /// Merges rules that overlap but do not conflict (paper §3.2: disjoint
    /// coverage "can be achieved by 1) resolving conflicts ... and 2) merging
    /// rules that overlap but do not conflict"). Rules with *identical*
    /// distributions whose clauses overlap are combined by keeping both
    /// clauses under one logical rule? Clause disjunction is not
    /// representable, so merging here means: later duplicate-semantics rules
    /// whose coverage is *subsumed* by an earlier same-distribution rule
    /// (every predicate of the earlier clause appears in the later one) are
    /// removed — they can never win attribution and only add evaluation
    /// cost.
    pub fn merge_agreeing_overlaps(&self) -> FeedbackRuleSet {
        let mut kept: Vec<FeedbackRule> = Vec::new();
        for rule in &self.rules {
            let subsumed =
                kept.iter().any(|k| k.dist() == rule.dist() && k.clause().subset_of(rule.clause()));
            if !subsumed {
                kept.push(rule.clone());
            }
        }
        FeedbackRuleSet { rules: kept }
    }

    /// Effective (first-match) coverage attribution per rule over `ds`:
    /// `out[r]` lists the rows whose *first* covering rule is `r`. The
    /// resulting sets are disjoint, matching §3.2's assumption.
    ///
    /// Valid sets attribute via compiled bitmasks (`mask_r AND NOT` the
    /// union of earlier masks — see
    /// [`CompiledRuleSet::attributed_coverage`]); invalid sets fall back to
    /// the row-at-a-time reference.
    pub fn attributed_coverage(&self, ds: &Dataset) -> Vec<Vec<usize>> {
        match CompiledRuleSet::compile(self, ds.schema()) {
            Ok(compiled) => compiled.attributed_coverage(ds),
            Err(_) => self.attributed_coverage_interpreted(ds),
        }
    }

    /// Row-at-a-time reference implementation of
    /// [`FeedbackRuleSet::attributed_coverage`]: materializes each row and
    /// asks [`FeedbackRuleSet::first_covering`].
    pub fn attributed_coverage_interpreted(&self, ds: &Dataset) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.rules.len()];
        let mut row = Vec::new();
        for i in 0..ds.n_rows() {
            ds.row_into(i, &mut row);
            if let Some(r) = self.first_covering(&row) {
                out[r].push(i);
            }
        }
        out
    }
}

impl FromIterator<FeedbackRule> for FeedbackRuleSet {
    fn from_iter<T: IntoIterator<Item = FeedbackRule>>(iter: T) -> Self {
        FeedbackRuleSet { rules: iter.into_iter().collect() }
    }
}

impl<'a> IntoIterator for &'a FeedbackRuleSet {
    type Item = &'a FeedbackRule;
    type IntoIter = std::slice::Iter<'a, FeedbackRule>;
    fn into_iter(self) -> Self::IntoIter {
        self.rules.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::Clause;
    use crate::dist::LabelDist;
    use crate::predicate::{Op, Predicate};

    fn schema() -> Schema {
        Schema::builder("y", vec!["a".into(), "b".into()])
            .numeric("x")
            .categorical("k", vec!["p".into(), "q".into()])
            .build()
    }

    fn ds() -> Dataset {
        let mut d = Dataset::new(schema());
        for (x, k, y) in [(1.0, 0, 0), (5.0, 1, 1), (9.0, 0, 1), (3.0, 1, 0)] {
            d.push_row(&[Value::Num(x), Value::Cat(k)], y).unwrap();
        }
        d
    }

    fn lt(t: f64) -> Clause {
        Clause::new(vec![Predicate::new(0, Op::Lt, Value::Num(t))])
    }

    fn ge(t: f64) -> Clause {
        Clause::new(vec![Predicate::new(0, Op::Ge, Value::Num(t))])
    }

    #[test]
    fn union_coverage_dedups() {
        let frs = FeedbackRuleSet::new(vec![
            FeedbackRule::deterministic(lt(4.0), 1),
            FeedbackRule::deterministic(lt(6.0), 1),
        ]);
        assert_eq!(frs.coverage(&ds()), vec![0, 1, 3]);
        assert_eq!(frs.outside_coverage(&ds()), vec![2]);
    }

    #[test]
    fn first_covering_respects_order() {
        let frs = FeedbackRuleSet::new(vec![
            FeedbackRule::deterministic(lt(4.0), 1),
            FeedbackRule::deterministic(lt(6.0), 0),
        ]);
        let d = ds();
        assert_eq!(frs.first_covering(&d.row(0)), Some(0));
        assert_eq!(frs.first_covering(&d.row(1)), Some(1));
        assert_eq!(frs.first_covering(&d.row(2)), None);
        assert_eq!(frs.covering_rules(&d.row(0)), vec![0, 1]);
    }

    #[test]
    fn conflict_detection() {
        let s = schema();
        // Overlapping clauses, different classes -> conflict.
        let frs = FeedbackRuleSet::new(vec![
            FeedbackRule::deterministic(lt(5.0), 1),
            FeedbackRule::deterministic(lt(3.0), 0),
        ]);
        assert_eq!(frs.conflicts(&s), vec![(0, 1)]);
        assert!(!frs.is_conflict_free(&s));
        assert!(matches!(
            frs.require_conflict_free(&s),
            Err(RuleError::ConflictingRules { first: 0, second: 1 })
        ));

        // Disjoint clauses -> no conflict even with different classes.
        let frs = FeedbackRuleSet::new(vec![
            FeedbackRule::deterministic(lt(3.0), 1),
            FeedbackRule::deterministic(ge(3.0), 0),
        ]);
        assert!(frs.is_conflict_free(&s));

        // Same distribution -> no conflict even when overlapping.
        let frs = FeedbackRuleSet::new(vec![
            FeedbackRule::deterministic(lt(5.0), 1),
            FeedbackRule::deterministic(lt(3.0), 1),
        ]);
        assert!(frs.is_conflict_free(&s));
    }

    #[test]
    fn drop_later_resolution() {
        let s = schema();
        let frs = FeedbackRuleSet::new(vec![
            FeedbackRule::deterministic(lt(5.0), 1),
            FeedbackRule::deterministic(lt(3.0), 0),
            FeedbackRule::deterministic(ge(8.0), 0),
        ]);
        let resolved = frs.resolve_conflicts(&s, ConflictResolution::DropLater);
        assert_eq!(resolved.len(), 2);
        assert!(resolved.is_conflict_free(&s));
        // The non-conflicting third rule survives.
        assert_eq!(resolved.rule(1).clause(), &ge(8.0));
    }

    #[test]
    fn effective_conflicts_masked_by_intersection_rule() {
        let s = schema();
        let frs = FeedbackRuleSet::new(vec![
            FeedbackRule::deterministic(lt(5.0), 1),
            FeedbackRule::deterministic(lt(3.0), 0),
        ]);
        assert_eq!(frs.effective_conflicts(&s), vec![(0, 1)]);
        let resolved = frs.resolve_conflicts(&s, ConflictResolution::IntersectionMixture);
        // Raw conflicts remain (clauses overlap) but the mixture rule masks
        // them under first-match attribution.
        assert!(!resolved.conflicts(&s).is_empty());
        assert!(resolved.effective_conflicts(&s).is_empty());
        assert!(resolved.require_effectively_conflict_free(&s).is_ok());
    }

    #[test]
    fn intersection_mixture_resolution() {
        let s = schema();
        let frs = FeedbackRuleSet::new(vec![
            FeedbackRule::deterministic(lt(5.0), 1),
            FeedbackRule::deterministic(lt(3.0), 0),
        ]);
        let resolved = frs.resolve_conflicts(&s, ConflictResolution::IntersectionMixture);
        assert_eq!(resolved.len(), 3);
        // The intersection rule has top priority and a 50/50 mixture.
        let inter = resolved.rule(0);
        assert_eq!(inter.dist(), &LabelDist::Probabilistic(vec![0.5, 0.5]));
        // A row in the intersection attributes to the mixture rule.
        let d = ds();
        assert_eq!(resolved.first_covering(&d.row(0)), Some(0)); // x=1 < 3
                                                                 // A row in only the first rule attributes to it (now index 1).
        assert_eq!(resolved.first_covering(&d.row(3)), Some(1)); // x=3 in [3,5)
    }

    #[test]
    fn attributed_coverage_is_disjoint_partition_of_coverage() {
        let frs = FeedbackRuleSet::new(vec![
            FeedbackRule::deterministic(lt(4.0), 1),
            FeedbackRule::deterministic(lt(6.0), 1),
        ]);
        let d = ds();
        let attr = frs.attributed_coverage(&d);
        assert_eq!(attr[0], vec![0, 3]);
        assert_eq!(attr[1], vec![1]);
        let mut all: Vec<usize> = attr.concat();
        all.sort_unstable();
        assert_eq!(all, frs.coverage(&d));
    }

    #[test]
    fn collections_conveniences() {
        let frs: FeedbackRuleSet =
            vec![FeedbackRule::deterministic(lt(1.0), 0)].into_iter().collect();
        assert_eq!(frs.len(), 1);
        assert_eq!((&frs).into_iter().count(), 1);
        let mut frs = frs;
        frs.push(FeedbackRule::deterministic(ge(1.0), 1));
        assert_eq!(frs.iter().count(), 2);
        assert!(!frs.is_empty());
        assert!(FeedbackRuleSet::empty().is_empty());
    }

    #[test]
    fn merge_drops_subsumed_agreeing_rules() {
        let wide = FeedbackRule::deterministic(lt(5.0), 1);
        // Narrower clause, same class, strictly more predicates including
        // the wide rule's predicate -> subsumed.
        let narrow = FeedbackRule::deterministic(
            lt(5.0).and(&Clause::new(vec![Predicate::new(1, Op::Eq, Value::Cat(0))])),
            1,
        );
        let frs = FeedbackRuleSet::new(vec![wide.clone(), narrow]);
        let merged = frs.merge_agreeing_overlaps();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged.rule(0), &wide);

        // Different class -> kept (that's a conflict, not a merge).
        let other = FeedbackRule::deterministic(lt(3.0), 0);
        let frs = FeedbackRuleSet::new(vec![wide.clone(), other.clone()]);
        assert_eq!(frs.merge_agreeing_overlaps().len(), 2);

        // Non-subsuming overlap with the same class -> kept.
        let overlapping = FeedbackRule::deterministic(ge(2.0), 1);
        let frs = FeedbackRuleSet::new(vec![wide, overlapping]);
        assert_eq!(frs.merge_agreeing_overlaps().len(), 2);
    }

    #[test]
    fn validate_propagates() {
        let s = schema();
        let bad = FeedbackRuleSet::new(vec![FeedbackRule::deterministic(Clause::always_true(), 7)]);
        assert!(bad.validate(&s).is_err());
    }

    #[test]
    fn try_scans_pre_validate_instead_of_panicking() {
        let d = ds();
        // A kind-mismatched rule (numeric comparison against the
        // categorical feature) errors up front instead of panicking
        // mid-scan.
        let bad = FeedbackRuleSet::new(vec![FeedbackRule::deterministic(
            Clause::new(vec![Predicate::new(1, Op::Lt, Value::Num(1.0))]),
            0,
        )]);
        assert!(bad.try_coverage(&d).is_err());
        assert!(bad.try_outside_coverage(&d).is_err());
        assert!(bad.try_attributed_coverage(&d).is_err());

        // Valid sets produce exactly the interpreted reference results.
        let good = FeedbackRuleSet::new(vec![
            FeedbackRule::deterministic(lt(4.0), 1),
            FeedbackRule::deterministic(lt(6.0), 1),
        ]);
        assert_eq!(good.try_coverage(&d).unwrap(), good.coverage_interpreted(&d));
        assert_eq!(good.try_outside_coverage(&d).unwrap(), good.outside_coverage_interpreted(&d));
        assert_eq!(
            good.try_attributed_coverage(&d).unwrap(),
            good.attributed_coverage_interpreted(&d)
        );
    }

    #[test]
    fn try_new_rejects_malformed_and_conflicting_sets() {
        let s = schema();
        // Kind mismatch caught at ingestion, not mid-scan.
        let bad = FeedbackRule::deterministic(
            Clause::new(vec![Predicate::new(1, Op::Lt, Value::Num(1.0))]),
            0,
        );
        assert!(FeedbackRuleSet::try_new(vec![bad], &s).is_err());
        // Same-coverage rules with different classes conflict.
        let r1 = FeedbackRule::deterministic(lt(4.0), 0);
        let r2 = FeedbackRule::deterministic(lt(4.0), 1);
        assert!(matches!(
            FeedbackRuleSet::try_new(vec![r1.clone(), r2.clone()], &s),
            Err(RuleError::ConflictingRules { .. })
        ));
        // A well-formed set passes.
        let ok = FeedbackRuleSet::try_new(vec![r1], &s).unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn try_push_leaves_set_unchanged_on_failure() {
        let s = schema();
        let mut frs =
            FeedbackRuleSet::try_new(vec![FeedbackRule::deterministic(lt(4.0), 0)], &s).unwrap();
        // Unknown feature index: rejected, set unchanged.
        let unknown = FeedbackRule::deterministic(
            Clause::new(vec![Predicate::new(9, Op::Lt, Value::Num(1.0))]),
            0,
        );
        assert!(frs.try_push(unknown, &s).is_err());
        assert_eq!(frs.len(), 1);
        // Conflicting rule: rejected after the conflict re-check, set
        // rolled back.
        let conflicting = FeedbackRule::deterministic(lt(4.0), 1);
        assert!(matches!(frs.try_push(conflicting, &s), Err(RuleError::ConflictingRules { .. })));
        assert_eq!(frs.len(), 1);
        // A compatible rule lands.
        frs.try_push(FeedbackRule::deterministic(ge(6.0), 1), &s).unwrap();
        assert_eq!(frs.len(), 2);
    }
}
