//! Predicates: `(attribute, operator, value)` conditions.

use std::fmt;

use frote_data::{FeatureKind, Schema, Value};
use serde::{Deserialize, Serialize};

use crate::error::RuleError;

/// Comparison operator of a predicate.
///
/// The paper allows `{=, !=}` on categorical attributes and
/// `{=, >, >=, <, <=}` on numeric attributes (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Equal.
    Eq,
    /// Not equal (categorical only).
    Ne,
    /// Strictly greater (numeric only).
    Gt,
    /// Greater or equal (numeric only).
    Ge,
    /// Strictly less (numeric only).
    Lt,
    /// Less or equal (numeric only).
    Le,
}

impl Op {
    /// The operator produced by the §5.1 "reverse the operator" perturbation
    /// (`!=` <-> `=`, `<=` <-> `>=`, `<` <-> `>`).
    pub fn reversed(self) -> Op {
        match self {
            Op::Eq => Op::Ne,
            Op::Ne => Op::Eq,
            Op::Gt => Op::Lt,
            Op::Ge => Op::Le,
            Op::Lt => Op::Gt,
            Op::Le => Op::Ge,
        }
    }

    /// Whether the operator is allowed on the given feature kind.
    pub fn allowed_on(self, kind: &FeatureKind) -> bool {
        match kind {
            FeatureKind::Numeric => !matches!(self, Op::Ne),
            FeatureKind::Categorical { .. } => matches!(self, Op::Eq | Op::Ne),
        }
    }

    /// Symbol used by [`fmt::Display`] and the parser.
    pub fn symbol(self) -> &'static str {
        match self {
            Op::Eq => "=",
            Op::Ne => "!=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Lt => "<",
            Op::Le => "<=",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// One condition on one feature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    feature: usize,
    op: Op,
    value: Value,
}

impl Predicate {
    /// Creates a predicate on feature index `feature`.
    pub fn new(feature: usize, op: Op, value: Value) -> Self {
        Predicate { feature, op, value }
    }

    /// Feature index the predicate constrains.
    pub fn feature(&self) -> usize {
        self.feature
    }

    /// The comparison operator.
    pub fn op(&self) -> Op {
        self.op
    }

    /// The comparison value.
    pub fn value(&self) -> Value {
        self.value
    }

    /// Evaluates the predicate against a cell value of the same feature.
    ///
    /// Numeric comparisons follow IEEE 754: any comparison involving a
    /// `NaN` cell (or a `NaN` predicate value) is `false`, so a `NaN` row
    /// is never covered by any numeric operator. This is pinned by tests
    /// and mirrored exactly by the columnar engine
    /// ([`crate::CompiledClause`]).
    ///
    /// # Panics
    ///
    /// Panics if the cell/predicate value kinds mismatch (e.g. numeric
    /// comparison against a categorical cell). Use [`Predicate::validate`]
    /// up-front to surface such errors as `Result`s — the pre-validated
    /// scans ([`crate::Clause::try_coverage`],
    /// [`crate::CompiledClause::compile`]) do this once per ruleset so
    /// parsed/expert-submitted rules cannot panic mid-scan.
    pub fn eval(&self, cell: Value) -> bool {
        match (self.op, cell, self.value) {
            (Op::Eq, Value::Num(a), Value::Num(b)) => a == b,
            (Op::Gt, Value::Num(a), Value::Num(b)) => a > b,
            (Op::Ge, Value::Num(a), Value::Num(b)) => a >= b,
            (Op::Lt, Value::Num(a), Value::Num(b)) => a < b,
            (Op::Le, Value::Num(a), Value::Num(b)) => a <= b,
            (Op::Eq, Value::Cat(a), Value::Cat(b)) => a == b,
            (Op::Ne, Value::Cat(a), Value::Cat(b)) => a != b,
            (op, cell, value) => {
                panic!("predicate {op:?} cannot compare cell {cell:?} with {value:?}")
            }
        }
    }

    /// Evaluates against a full row.
    ///
    /// # Panics
    ///
    /// Panics if `feature` is out of range for the row, or on kind mismatch.
    pub fn eval_row(&self, row: &[Value]) -> bool {
        self.eval(row[self.feature])
    }

    /// Checks the predicate is well-formed under `schema`: known feature,
    /// operator allowed on the feature kind, value of the right kind and (for
    /// categoricals) inside the vocabulary.
    ///
    /// # Errors
    ///
    /// Returns a [`RuleError`] describing the first problem found.
    pub fn validate(&self, schema: &Schema) -> Result<(), RuleError> {
        if self.feature >= schema.n_features() {
            return Err(RuleError::UnknownFeature { index: self.feature });
        }
        let kind = schema.feature(self.feature).kind();
        if !self.op.allowed_on(kind) {
            return Err(RuleError::OperatorNotAllowed {
                op: self.op,
                feature: schema.feature(self.feature).name().to_string(),
            });
        }
        if !self.value.matches_kind(kind) {
            return Err(RuleError::ValueKindMismatch {
                feature: schema.feature(self.feature).name().to_string(),
            });
        }
        Ok(())
    }

    /// Renders with feature/category names from `schema`.
    pub fn display_with<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Predicate, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let p = self.0;
                let name = self.1.feature(p.feature).name();
                match (p.value, self.1.feature(p.feature).kind()) {
                    (Value::Cat(c), FeatureKind::Categorical { categories }) => {
                        write!(f, "{name} {} {}", p.op, categories[c as usize])
                    }
                    (v, _) => write!(f, "{name} {} {v}", p.op),
                }
            }
        }
        D(self, schema)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{} {} {}", self.feature, self.op, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::Schema;

    fn schema() -> Schema {
        Schema::builder("y", vec!["a".into(), "b".into()])
            .numeric("age")
            .categorical("job", vec!["eng".into(), "law".into()])
            .build()
    }

    #[test]
    fn numeric_ops() {
        let p = Predicate::new(0, Op::Lt, Value::Num(29.0));
        assert!(p.eval(Value::Num(24.0)));
        assert!(!p.eval(Value::Num(29.0)));
        assert!(Predicate::new(0, Op::Le, Value::Num(29.0)).eval(Value::Num(29.0)));
        assert!(Predicate::new(0, Op::Ge, Value::Num(29.0)).eval(Value::Num(29.0)));
        assert!(!Predicate::new(0, Op::Gt, Value::Num(29.0)).eval(Value::Num(29.0)));
        assert!(Predicate::new(0, Op::Eq, Value::Num(29.0)).eval(Value::Num(29.0)));
    }

    #[test]
    fn categorical_ops() {
        assert!(Predicate::new(1, Op::Eq, Value::Cat(0)).eval(Value::Cat(0)));
        assert!(Predicate::new(1, Op::Ne, Value::Cat(0)).eval(Value::Cat(1)));
        assert!(!Predicate::new(1, Op::Ne, Value::Cat(0)).eval(Value::Cat(0)));
    }

    #[test]
    fn nan_cell_fails_every_numeric_operator() {
        // Pinned IEEE semantics: NaN cells (and NaN predicate values) make
        // every numeric comparison false — the row is never covered.
        for op in [Op::Eq, Op::Gt, Op::Ge, Op::Lt, Op::Le] {
            assert!(
                !Predicate::new(0, op, Value::Num(1.0)).eval(Value::Num(f64::NAN)),
                "{op:?} on a NaN cell must be false"
            );
            assert!(
                !Predicate::new(0, op, Value::Num(f64::NAN)).eval(Value::Num(1.0)),
                "{op:?} with a NaN value must be false"
            );
            assert!(
                !Predicate::new(0, op, Value::Num(f64::NAN)).eval(Value::Num(f64::NAN)),
                "{op:?} NaN vs NaN must be false"
            );
        }
    }

    #[test]
    fn eval_row_uses_feature_index() {
        let p = Predicate::new(1, Op::Eq, Value::Cat(1));
        assert!(p.eval_row(&[Value::Num(0.0), Value::Cat(1)]));
    }

    #[test]
    fn reversal_is_involutive_and_matches_paper() {
        for op in [Op::Eq, Op::Ne, Op::Gt, Op::Ge, Op::Lt, Op::Le] {
            assert_eq!(op.reversed().reversed(), op);
        }
        assert_eq!(Op::Ne.reversed(), Op::Eq);
        assert_eq!(Op::Le.reversed(), Op::Ge);
    }

    #[test]
    fn validate_catches_problems() {
        let s = schema();
        assert!(Predicate::new(0, Op::Lt, Value::Num(1.0)).validate(&s).is_ok());
        assert!(matches!(
            Predicate::new(9, Op::Lt, Value::Num(1.0)).validate(&s),
            Err(RuleError::UnknownFeature { index: 9 })
        ));
        // Ne on numeric not allowed.
        assert!(Predicate::new(0, Op::Ne, Value::Num(1.0)).validate(&s).is_err());
        // Lt on categorical not allowed.
        assert!(Predicate::new(1, Op::Lt, Value::Cat(0)).validate(&s).is_err());
        // Wrong value kind.
        assert!(Predicate::new(0, Op::Eq, Value::Cat(0)).validate(&s).is_err());
        // Out-of-vocab category.
        assert!(Predicate::new(1, Op::Eq, Value::Cat(5)).validate(&s).is_err());
    }

    #[test]
    #[should_panic(expected = "cannot compare")]
    fn kind_mismatch_panics_on_eval() {
        Predicate::new(0, Op::Lt, Value::Num(1.0)).eval(Value::Cat(0));
    }

    #[test]
    fn display_with_names() {
        let s = schema();
        let p = Predicate::new(1, Op::Ne, Value::Cat(1));
        assert_eq!(p.display_with(&s).to_string(), "job != law");
        let q = Predicate::new(0, Op::Ge, Value::Num(30.0));
        assert_eq!(q.display_with(&s).to_string(), "age >= 30");
        assert_eq!(q.to_string(), "x0 >= 30");
    }
}
