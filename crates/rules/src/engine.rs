//! The columnar rule-evaluation engine: compiled predicate bitmasks over
//! the dense data plane.
//!
//! The row-at-a-time interpreter ([`Clause::satisfied_by`] and friends)
//! evaluates boxed [`Value`] cells predicate by predicate — `O(rows ×
//! predicates)` of enum matching per scan. This module lowers a validated
//! clause into per-feature *predicate plans* that sweep the typed column
//! slices ([`frote_data::Column::as_numeric`] / `as_categorical`) directly,
//! filling per-clause `u64` bitmask words combined with word-level AND,
//! counting coverage via popcount, and parallelizing over fixed row blocks
//! in block order so results are bit-identical at any `FROTE_THREADS`.
//!
//! Two evaluation planes share the same plans:
//!
//! - **Raw plane** ([`CompiledClause::eval`]): numeric thresholds compare
//!   against the raw `f64` column, categorical `Eq`/`Ne` against the `u32`
//!   code column. Cell-for-cell identical to the interpreter — including
//!   IEEE `NaN` semantics, where every numeric comparison is `false` — so
//!   the interpreter remains the documented reference implementation and
//!   the differential proptests (`tests/prop_rule_engine.rs`) hold the two
//!   equal on every row.
//! - **Binned plane** ([`CompiledClause::eval_binned`]): numeric thresholds
//!   become bin-code comparisons on `u8`/`u16` codes via the [`Binner`]
//!   edge contract (`bin(v) <= b ⟺ v <= edges[b]`). A threshold that is
//!   not exactly a bin edge makes the threshold's own bin ambiguous; those
//!   rows — and only those — fall back to an exact raw-value comparison.
//!   `NaN` thresholds compile to constant-false (matching IEEE), and `NaN`
//!   cells cannot reach this plane at all: [`Binner::fit`] rejects them and
//!   [`Binner::bin_value`] refuses to map `NaN` into bin 0.
//!
//! Compilation *pre-validates* against the schema and returns
//! [`RuleError`] — the `Result`-typed front door that replaces the
//! interpreter's mid-scan kind-mismatch panics for parsed/expert rules.
//!
//! [`RuleMaskCache`] keeps per-rule masks incrementally in sync with the
//! FROTE loop's append-only active dataset, with the same append/truncate
//! semantics as `frote_data::EncodedCache`/`BinnedCache`: new rows append
//! mask bits, candidate rejection truncates them. Unlike the binned cache
//! there is no fitted state — plans depend only on the schema — so
//! truncation is exact and needs no stale-fit flag.

use std::ops::Range;
use std::sync::OnceLock;

use frote_data::sync::CacheCounters;
use frote_data::{BinnedMatrix, Binner, Dataset, FeatureKind, Schema, SyncOutcome, Value};
use frote_obs::Counter;

use crate::clause::Clause;
use crate::error::RuleError;
use crate::predicate::Op;
use crate::ruleset::FeedbackRuleSet;

/// Datasets below this row count are swept serially (same threshold as the
/// interpreter's scan): the pool only pays off on biggish inputs.
const PAR_SCAN_MIN: usize = 4096;

// Engine metrics (see frote-obs). All thread-invariant: which plane a scan
// uses and which rows hit the ambiguous-bin fallback depend on inputs and
// fitted edges, never on scheduling.
static CLAUSES_COMPILED: Counter = Counter::new("rule_engine.clauses_compiled");
static EVAL_RAW: Counter = Counter::new("rule_engine.eval_raw");
static EVAL_BINNED: Counter = Counter::new("rule_engine.eval_binned");
static BINNED_FALLBACK_ROWS: Counter = Counter::new("rule_engine.binned_fallback_rows");

fn mask_cache_counters() -> &'static CacheCounters {
    static COUNTERS: OnceLock<CacheCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| CacheCounters::new("rule_mask_cache"))
}

/// Rows per parallel block. A multiple of 64 so every block starts on a
/// `u64` word boundary and the per-block word vectors concatenate into the
/// full mask without any bit shifting — which is what makes the blocked
/// parallel fill bit-identical to the serial one at any thread count.
const MASK_BLOCK: usize = 4096;

/// A packed per-row boolean mask: bit `i` of `words[i / 64]` is row `i`.
///
/// Invariant: bits at positions `>= len` are always zero, so popcounts and
/// word-level combination never see garbage tail bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMask {
    words: Vec<u64>,
    len: usize,
}

impl RowMask {
    /// A mask of `len` rows, all set.
    pub fn all_true(len: usize) -> RowMask {
        let mut mask = RowMask { words: vec![u64::MAX; len.div_ceil(64)], len };
        mask.clear_tail();
        mask
    }

    /// A mask of `len` rows, all clear.
    pub fn all_false(len: usize) -> RowMask {
        RowMask { words: vec![0; len.div_ceil(64)], len }
    }

    /// Builds a mask from pre-filled words (tail bits must already be
    /// clear); used by the blocked parallel fill.
    fn from_words(words: Vec<u64>, len: usize) -> RowMask {
        debug_assert_eq!(words.len(), len.div_ceil(64));
        let mask = RowMask { words, len };
        debug_assert!(mask.tail_is_clear());
        mask
    }

    /// Number of rows the mask describes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask describes zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "row {i} out of bounds ({} rows)", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set rows (popcount over the words).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Sorted indices of the set rows.
    pub fn indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count());
        for (wi, &word) in self.words.iter().enumerate() {
            let mut m = word;
            while m != 0 {
                out.push(wi * 64 + m.trailing_zeros() as usize);
                m &= m - 1;
            }
        }
        out
    }

    /// `self &= other` (row-wise AND).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_assign(&mut self, other: &RowMask) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self |= other` (row-wise OR).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or_assign(&mut self, other: &RowMask) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= !other` (row-wise AND NOT — "covered here and not claimed
    /// earlier", the first-match attribution step).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_not_assign(&mut self, other: &RowMask) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// The row-wise complement.
    pub fn inverted(&self) -> RowMask {
        let mut out = RowMask { words: self.words.iter().map(|w| !w).collect(), len: self.len };
        out.clear_tail();
        out
    }

    /// Appends one row's bit (the incremental-sync path).
    pub fn push(&mut self, bit: bool) {
        let (w, b) = (self.len / 64, self.len % 64);
        if b == 0 {
            self.words.push(0);
        }
        if bit {
            self.words[w] |= 1 << b;
        }
        self.len += 1;
    }

    /// Drops all rows past the first `len` (no-op when already shorter).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len {
            self.len = len;
            self.words.truncate(len.div_ceil(64));
            self.clear_tail();
        }
    }

    /// Zeroes the bits of the last word past `len`.
    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(w) = self.words.last_mut() {
                *w &= (1u64 << tail) - 1;
            }
        }
    }

    fn tail_is_clear(&self) -> bool {
        let tail = self.len % 64;
        tail == 0 || self.words.last().is_none_or(|w| w >> tail == 0)
    }
}

/// Whether `x op t` holds, with exactly the interpreter's IEEE semantics:
/// every comparison against (or of) `NaN` is `false`.
#[inline]
fn num_holds(op: Op, x: f64, t: f64) -> bool {
    match op {
        Op::Eq => x == t,
        Op::Gt => x > t,
        Op::Ge => x >= t,
        Op::Lt => x < t,
        Op::Le => x <= t,
        Op::Ne => unreachable!("Ne is not allowed on numeric features"),
    }
}

/// One lowered predicate: which typed column to sweep and how.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PredPlan {
    /// Numeric comparison against the raw `f64` column.
    Num {
        /// Column index.
        col: usize,
        /// Comparison operator (never `Ne`).
        op: Op,
        /// Threshold.
        t: f64,
    },
    /// Categorical equality against the `u32` code column.
    CatEq {
        /// Column index.
        col: usize,
        /// Category code.
        code: u32,
    },
    /// Categorical inequality against the `u32` code column.
    CatNe {
        /// Column index.
        col: usize,
        /// Category code.
        code: u32,
    },
}

/// ANDs `pred(x)` over 64-row word chunks of a column slice into `words`.
#[inline]
fn sweep_and<T: Copy>(vals: &[T], words: &mut [u64], pred: impl Fn(T) -> bool) {
    for (w, chunk) in words.iter_mut().zip(vals.chunks(64)) {
        let mut m = 0u64;
        for (b, &x) in chunk.iter().enumerate() {
            m |= u64::from(pred(x)) << b;
        }
        *w &= m;
    }
}

impl PredPlan {
    /// ANDs this predicate's truth over `rows` of `ds` into `words`
    /// (bit `k` of `words` is row `rows.start + k`).
    fn and_into(&self, ds: &Dataset, rows: Range<usize>, words: &mut [u64]) {
        match *self {
            PredPlan::Num { col, op, t } => {
                let v = ds.column(col).as_numeric().expect("validated numeric column");
                sweep_and(&v[rows], words, |x| num_holds(op, x, t));
            }
            PredPlan::CatEq { col, code } => {
                let v = ds.column(col).as_categorical().expect("validated categorical column");
                sweep_and(&v[rows], words, |c| c == code);
            }
            PredPlan::CatNe { col, code } => {
                let v = ds.column(col).as_categorical().expect("validated categorical column");
                sweep_and(&v[rows], words, |c| c != code);
            }
        }
    }

    /// Single-row evaluation (the incremental-append path).
    #[inline]
    fn holds_row(&self, ds: &Dataset, i: usize) -> bool {
        match *self {
            PredPlan::Num { col, op, t } => {
                num_holds(op, ds.column(col).as_numeric().expect("numeric column")[i], t)
            }
            PredPlan::CatEq { col, code } => {
                ds.column(col).as_categorical().expect("categorical column")[i] == code
            }
            PredPlan::CatNe { col, code } => {
                ds.column(col).as_categorical().expect("categorical column")[i] != code
            }
        }
    }
}

/// A clause lowered into columnar predicate plans. Construct with
/// [`CompiledClause::compile`]; evaluation is bit-identical to the
/// row-at-a-time interpreter at any thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledClause {
    preds: Vec<PredPlan>,
}

impl CompiledClause {
    /// Validates `clause` against `schema` and lowers every predicate into
    /// its columnar plan. The empty clause compiles to the all-true sweep.
    ///
    /// # Errors
    ///
    /// Returns the first [`RuleError`] of [`Clause::validate`] — compiling
    /// is the pre-validation step that makes the scans panic-free.
    pub fn compile(clause: &Clause, schema: &Schema) -> Result<CompiledClause, RuleError> {
        clause.validate(schema)?;
        CLAUSES_COMPILED.inc();
        let preds = clause
            .predicates()
            .iter()
            .map(|p| match (schema.feature(p.feature()).kind(), p.op(), p.value()) {
                (FeatureKind::Numeric, op, Value::Num(t)) => {
                    PredPlan::Num { col: p.feature(), op, t }
                }
                (FeatureKind::Categorical { .. }, Op::Eq, Value::Cat(code)) => {
                    PredPlan::CatEq { col: p.feature(), code }
                }
                (FeatureKind::Categorical { .. }, Op::Ne, Value::Cat(code)) => {
                    PredPlan::CatNe { col: p.feature(), code }
                }
                _ => unreachable!("validate admits only kind-consistent predicates"),
            })
            .collect();
        Ok(CompiledClause { preds })
    }

    /// Number of lowered predicates.
    pub fn n_predicates(&self) -> usize {
        self.preds.len()
    }

    /// Evaluates the clause over every row of `ds` as a bitmask, sweeping
    /// each predicate's column over fixed row blocks in parallel
    /// (block-order concatenation keeps the result thread-count-invariant).
    pub fn eval(&self, ds: &Dataset) -> RowMask {
        EVAL_RAW.inc();
        let n = ds.n_rows();
        if n < PAR_SCAN_MIN || frote_par::threads() <= 1 {
            return RowMask::from_words(self.block_words(ds, 0..n), n);
        }
        let words = frote_par::par_blocks_map(n, MASK_BLOCK, |_, rows| self.block_words(ds, rows));
        RowMask::from_words(words, n)
    }

    /// Covered row indices — same contract as [`Clause::coverage`].
    pub fn coverage(&self, ds: &Dataset) -> Vec<usize> {
        self.eval(ds).indices()
    }

    /// Number of covered rows via popcount, without materializing indices.
    pub fn coverage_count(&self, ds: &Dataset) -> usize {
        self.eval(ds).count()
    }

    /// The mask words of one row block: start all-true, AND each
    /// predicate's columnar sweep in.
    fn block_words(&self, ds: &Dataset, rows: Range<usize>) -> Vec<u64> {
        let len = rows.len();
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        if !len.is_multiple_of(64) {
            if let Some(w) = words.last_mut() {
                *w = (1u64 << (len % 64)) - 1;
            }
        }
        for p in &self.preds {
            p.and_into(ds, rows.clone(), &mut words);
        }
        words
    }

    /// Single-row evaluation against the raw columns.
    fn holds_row(&self, ds: &Dataset, i: usize) -> bool {
        self.preds.iter().all(|p| p.holds_row(ds, i))
    }

    /// Evaluates the clause over bin codes: numeric thresholds become
    /// code comparisons via the [`Binner`] edge contract
    /// (`bin(v) <= b ⟺ v <= edges[b]`), with an exact raw-value fallback
    /// for the single ambiguous bin when the threshold is not itself a bin
    /// edge; categorical predicates compare codes directly (bin code ==
    /// category index). Produces exactly [`CompiledClause::eval`]'s mask.
    ///
    /// # Panics
    ///
    /// Panics if `binner`/`codes` were not fitted on `ds` (row or feature
    /// count mismatch).
    pub fn eval_binned(&self, binner: &Binner, codes: &BinnedMatrix, ds: &Dataset) -> RowMask {
        assert_eq!(codes.n_rows(), ds.n_rows(), "codes must cover every dataset row");
        assert_eq!(codes.width(), ds.n_features(), "codes width must match the feature count");
        let plans: Vec<BinnedPred<'_>> = self
            .preds
            .iter()
            .map(|p| match *p {
                PredPlan::Num { col, op, t } => {
                    let edges = binner.numeric_edges(col).expect("numeric feature has edges");
                    // c = number of edges < t = bin code of t itself. When t
                    // sits exactly on edges[c] the contract makes `code <= c`
                    // equivalent to `v <= t` with no ambiguity.
                    let c = edges.partition_point(|&e| e < t);
                    let edge = c < edges.len() && edges[c] == t;
                    let raw = ds.column(col).as_numeric().expect("numeric column");
                    BinnedPred::Num { col, op, t, c, edge, raw }
                }
                PredPlan::CatEq { col, code } => {
                    BinnedPred::Cat { col, code: code as usize, ne: false }
                }
                PredPlan::CatNe { col, code } => {
                    BinnedPred::Cat { col, code: code as usize, ne: true }
                }
            })
            .collect();
        EVAL_BINNED.inc();
        let n = ds.n_rows();
        let fill = |rows: Range<usize>| {
            let len = rows.len();
            let mut words = vec![0u64; len.div_ceil(64)];
            // Fallbacks accumulate in a block-local and flush with one
            // atomic add, keeping the per-row loop free of shared writes.
            let mut fallbacks = 0u64;
            for (k, i) in rows.enumerate() {
                let hit = plans.iter().all(|p| p.holds(codes, i, &mut fallbacks));
                words[k / 64] |= u64::from(hit) << (k % 64);
            }
            BINNED_FALLBACK_ROWS.add(fallbacks);
            words
        };
        if n < PAR_SCAN_MIN || frote_par::threads() <= 1 {
            return RowMask::from_words(fill(0..n), n);
        }
        RowMask::from_words(frote_par::par_blocks_map(n, MASK_BLOCK, |_, rows| fill(rows)), n)
    }
}

/// A predicate lowered onto the binned plane.
enum BinnedPred<'a> {
    /// Numeric threshold as a bin-code comparison with raw fallback.
    Num { col: usize, op: Op, t: f64, c: usize, edge: bool, raw: &'a [f64] },
    /// Categorical code comparison (bin code == category index).
    Cat { col: usize, code: usize, ne: bool },
}

impl BinnedPred<'_> {
    #[inline]
    fn holds(&self, codes: &BinnedMatrix, i: usize, fallbacks: &mut u64) -> bool {
        match *self {
            BinnedPred::Num { col, op, t, c, edge, raw } => {
                match binned_decide(op, t, c, edge, codes.code(i, col)) {
                    Some(hit) => hit,
                    None => {
                        *fallbacks += 1;
                        num_holds(op, raw[i], t)
                    }
                }
            }
            BinnedPred::Cat { col, code, ne } => (codes.code(i, col) == code) != ne,
        }
    }
}

/// Decides `v op t` from `code = bin(v)` alone where the edge contract
/// allows; `None` marks the single ambiguous bin that needs the raw value.
///
/// With `c` = number of edges `< t` (the bin code of `t` itself) and
/// `edge` = "`t` is exactly `edges[c]`":
///
/// - `code < c` ⇒ `v <= edges[c-1] < t`, so `v < t` is certain;
/// - `code > c` ⇒ `v > edges[c] >= t`, so `v > t` is certain;
/// - `code == c` straddles `t` unless `t` is an edge, where `Le`/`Gt`
///   become exact (`v <= t ⟺ code <= c`).
///
/// `Gt`/`Ge` are the IEEE negations of `Le`/`Lt` — valid only for
/// non-`NaN` thresholds, so a `NaN` threshold short-circuits to `false`
/// (every comparison against `NaN` is `false` in the interpreter too).
fn binned_decide(op: Op, t: f64, c: usize, edge: bool, code: usize) -> Option<bool> {
    if t.is_nan() {
        return Some(false);
    }
    let lt_like = |code: usize| match code.cmp(&c) {
        std::cmp::Ordering::Less => Some(true),
        std::cmp::Ordering::Greater => Some(false),
        std::cmp::Ordering::Equal => None,
    };
    match op {
        Op::Le if edge => Some(code <= c),
        Op::Gt if edge => Some(code > c),
        Op::Le => lt_like(code),
        Op::Lt => lt_like(code),
        Op::Gt => lt_like(code).map(|b| !b),
        Op::Ge => lt_like(code).map(|b| !b),
        Op::Eq => {
            if code == c {
                None
            } else {
                Some(false)
            }
        }
        Op::Ne => unreachable!("Ne is not allowed on numeric features"),
    }
}

/// A whole rule set lowered onto the columnar engine: one compiled clause
/// per rule, pre-validated as a set so scans are panic-free.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledRuleSet {
    clauses: Vec<CompiledClause>,
}

impl CompiledRuleSet {
    /// Validates every rule of `frs` against `schema` (clauses *and* label
    /// distributions — the once-per-ruleset pre-validation) and compiles
    /// each clause.
    ///
    /// # Errors
    ///
    /// Returns the first [`RuleError`] found.
    pub fn compile(frs: &FeedbackRuleSet, schema: &Schema) -> Result<CompiledRuleSet, RuleError> {
        frs.validate(schema)?;
        let clauses = frs
            .iter()
            .map(|r| CompiledClause::compile(r.clause(), schema))
            .collect::<Result<_, _>>()?;
        Ok(CompiledRuleSet { clauses })
    }

    /// Number of rules.
    pub fn n_rules(&self) -> usize {
        self.clauses.len()
    }

    /// The compiled clause of rule `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= n_rules()`.
    pub fn clause(&self, r: usize) -> &CompiledClause {
        &self.clauses[r]
    }

    /// Per-rule coverage masks over `ds`, in rule order.
    pub fn rule_masks(&self, ds: &Dataset) -> Vec<RowMask> {
        self.clauses.iter().map(|c| c.eval(ds)).collect()
    }

    /// Union coverage (sorted indices covered by at least one rule) — the
    /// compiled twin of [`FeedbackRuleSet::coverage`].
    pub fn coverage(&self, ds: &Dataset) -> Vec<usize> {
        union_mask(&self.rule_masks(ds), ds.n_rows()).indices()
    }

    /// Complement of [`CompiledRuleSet::coverage`].
    pub fn outside_coverage(&self, ds: &Dataset) -> Vec<usize> {
        union_mask(&self.rule_masks(ds), ds.n_rows()).inverted().indices()
    }

    /// First-match attribution — the compiled twin of
    /// [`FeedbackRuleSet::attributed_coverage`]: `out[r]` lists rows whose
    /// first covering rule is `r`, via `mask_r AND NOT (union of earlier)`.
    pub fn attributed_coverage(&self, ds: &Dataset) -> Vec<Vec<usize>> {
        attribute(&self.rule_masks(ds), ds.n_rows())
    }
}

/// OR of per-rule masks (all-false when there are no rules).
fn union_mask(masks: &[RowMask], rows: usize) -> RowMask {
    let mut union = RowMask::all_false(rows);
    for m in masks {
        union.or_assign(m);
    }
    union
}

/// First-match attribution over per-rule masks.
fn attribute(masks: &[RowMask], rows: usize) -> Vec<Vec<usize>> {
    let mut claimed = RowMask::all_false(rows);
    masks
        .iter()
        .map(|m| {
            let mut mine = m.clone();
            mine.and_not_assign(&claimed);
            claimed.or_assign(m);
            mine.indices()
        })
        .collect()
}

/// Per-rule coverage masks kept incrementally in sync with the FROTE
/// loop's append-only active dataset — the rule plane's analogue of
/// `frote_data::EncodedCache`/`BinnedCache`:
///
/// - [`RuleMaskCache::sync`] appends mask bits for rows past the last
///   sync (the first sync evaluates the whole dataset with the blocked
///   parallel sweep);
/// - [`RuleMaskCache::truncate`] rolls rejected candidate rows back.
///
/// Plans depend only on the schema — never on the rows — so unlike the
/// binned cache a truncation is exact and no stale-fit re-check exists.
/// Must only be reused across calls that pass the *same* rule set and the
/// same append-only dataset; hand each FROTE run its own cache.
#[derive(Debug, Clone)]
pub struct RuleMaskCache {
    compiled: CompiledRuleSet,
    masks: Vec<RowMask>,
    rows: usize,
}

impl RuleMaskCache {
    /// Compiles `frs` (pre-validating the whole set) with no rows synced
    /// yet.
    ///
    /// # Errors
    ///
    /// Returns the first [`RuleError`] of [`CompiledRuleSet::compile`].
    pub fn compile(frs: &FeedbackRuleSet, schema: &Schema) -> Result<RuleMaskCache, RuleError> {
        let compiled = CompiledRuleSet::compile(frs, schema)?;
        let masks = vec![RowMask::all_false(0); compiled.n_rules()];
        Ok(RuleMaskCache { compiled, masks, rows: 0 })
    }

    /// Brings the masks in sync with `ds`, whose leading `rows()` rows
    /// must be unchanged since the last sync. The first sync evaluates
    /// every row in parallel ([`SyncOutcome::Rebuilt`] with
    /// [`RebuildReason::FirstFit`](frote_data::RebuildReason::FirstFit));
    /// later syncs append only the new tail. There is no fit to go stale,
    /// so those are the only slow-path variants.
    ///
    /// # Panics
    ///
    /// Panics if `ds` has fewer rows than already synced (truncate first).
    pub fn sync(&mut self, ds: &Dataset) -> SyncOutcome {
        let outcome = self.sync_inner(ds);
        mask_cache_counters().record_sync(&outcome);
        outcome
    }

    fn sync_inner(&mut self, ds: &Dataset) -> SyncOutcome {
        let n = ds.n_rows();
        assert!(n >= self.rows, "dataset shrank below the synced rows; call truncate instead");
        if n == self.rows {
            return SyncOutcome::Unchanged;
        }
        let outcome = if self.rows == 0 {
            self.masks = self.compiled.rule_masks(ds);
            SyncOutcome::Rebuilt(frote_data::RebuildReason::FirstFit)
        } else if frote_faults::point("rules.mask.append").is_err() {
            // An injected fault poisoned the append fast path: degrade to a
            // full re-evaluation — bit-identical masks, only the cost
            // changes.
            self.masks = self.compiled.rule_masks(ds);
            SyncOutcome::Rebuilt(frote_data::RebuildReason::Injected)
        } else {
            for (clause, mask) in self.compiled.clauses.iter().zip(&mut self.masks) {
                for i in self.rows..n {
                    mask.push(clause.holds_row(ds, i));
                }
            }
            SyncOutcome::Appended { rows: n - self.rows }
        };
        self.rows = n;
        outcome
    }

    /// Drops mask bits past the first `rows` rows (rejecting a candidate
    /// batch). Exact — surviving bits stay valid verbatim.
    pub fn truncate(&mut self, rows: usize) {
        if rows < self.rows {
            mask_cache_counters().record_truncate(self.rows - rows);
            for mask in &mut self.masks {
                mask.truncate(rows);
            }
            self.rows = rows;
        }
    }

    /// Rows synced so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of rules.
    pub fn n_rules(&self) -> usize {
        self.masks.len()
    }

    /// The synced per-rule masks, in rule order.
    pub fn masks(&self) -> &[RowMask] {
        &self.masks
    }

    /// Union coverage over the synced rows (sorted indices).
    pub fn coverage(&self) -> Vec<usize> {
        union_mask(&self.masks, self.rows).indices()
    }

    /// Complement of [`RuleMaskCache::coverage`] over the synced rows.
    pub fn outside_coverage(&self) -> Vec<usize> {
        union_mask(&self.masks, self.rows).inverted().indices()
    }

    /// First-match attribution over the synced rows (see
    /// [`CompiledRuleSet::attributed_coverage`]).
    pub fn attributed_coverage(&self) -> Vec<Vec<usize>> {
        attribute(&self.masks, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::rule::FeedbackRule;
    use frote_data::BinnedCache;

    fn schema() -> Schema {
        Schema::builder("y", vec!["a".into(), "b".into()])
            .numeric("x")
            .categorical("k", vec!["p".into(), "q".into(), "r".into()])
            .build()
    }

    /// 10 rows: x = 0..10 with a NaN at row 7; k cycles p,q,r.
    fn ds() -> Dataset {
        let mut d = Dataset::new(schema());
        for i in 0..10 {
            let x = if i == 7 { f64::NAN } else { f64::from(i) };
            d.push_row(&[Value::Num(x), Value::Cat(i % 3)], 0).unwrap();
        }
        d
    }

    fn num(op: Op, t: f64) -> Predicate {
        Predicate::new(0, op, Value::Num(t))
    }

    fn cat(op: Op, c: u32) -> Predicate {
        Predicate::new(1, op, Value::Cat(c))
    }

    #[test]
    fn row_mask_ops() {
        let mut m = RowMask::all_false(70);
        assert_eq!(m.len(), 70);
        assert!(!m.is_empty());
        m.push(true);
        assert_eq!(m.len(), 71);
        assert!(m.get(70));
        assert_eq!(m.count(), 1);
        assert_eq!(m.indices(), vec![70]);
        let t = RowMask::all_true(71);
        assert_eq!(t.count(), 71);
        let mut u = t.clone();
        u.and_assign(&m);
        assert_eq!(u.indices(), vec![70]);
        u.or_assign(&m);
        assert_eq!(u.count(), 1);
        let mut v = t.clone();
        v.and_not_assign(&m);
        assert_eq!(v.count(), 70);
        assert!(!v.get(70));
        assert_eq!(m.inverted().count(), 70);
        u.truncate(70);
        assert_eq!(u.count(), 0);
        assert_eq!(t.inverted().count(), 0, "complement tail bits stay clear");
    }

    #[test]
    fn compiled_matches_interpreter_row_for_row() {
        let d = ds();
        let s = schema();
        let clauses = [
            Clause::always_true(),
            Clause::new(vec![num(Op::Le, 4.0)]),
            Clause::new(vec![num(Op::Gt, 4.0), cat(Op::Ne, 1)]),
            Clause::new(vec![num(Op::Ge, 7.0), cat(Op::Eq, 0)]),
            Clause::new(vec![num(Op::Eq, 3.0)]),
            Clause::new(vec![num(Op::Lt, f64::NAN)]),
        ];
        for c in &clauses {
            let compiled = CompiledClause::compile(c, &s).unwrap();
            let mask = compiled.eval(&d);
            for i in 0..d.n_rows() {
                assert_eq!(mask.get(i), c.satisfied_by(&d.row(i)), "{c} row {i}");
            }
            assert_eq!(compiled.coverage(&d), c.coverage_interpreted(&d), "{c}");
            assert_eq!(compiled.coverage_count(&d), c.coverage_count_interpreted(&d), "{c}");
        }
    }

    #[test]
    fn nan_cell_is_never_covered() {
        // Satellite pin: every numeric operator on a NaN cell is false, in
        // the interpreter and the compiled sweep alike.
        let d = ds();
        let s = schema();
        for op in [Op::Eq, Op::Gt, Op::Ge, Op::Lt, Op::Le] {
            let c = Clause::new(vec![num(op, f64::from(7))]);
            let compiled = CompiledClause::compile(&c, &s).unwrap();
            assert!(!compiled.eval(&d).get(7), "{op:?} must not cover the NaN row");
            assert!(!c.satisfied_by(&d.row(7)), "{op:?} interpreter");
        }
    }

    #[test]
    fn compile_pre_validates() {
        let s = schema();
        let unknown = Clause::new(vec![Predicate::new(9, Op::Lt, Value::Num(1.0))]);
        assert!(matches!(
            CompiledClause::compile(&unknown, &s),
            Err(RuleError::UnknownFeature { index: 9 })
        ));
        let ne_numeric = Clause::new(vec![num(Op::Ne, 1.0)]);
        assert!(matches!(
            CompiledClause::compile(&ne_numeric, &s),
            Err(RuleError::OperatorNotAllowed { .. })
        ));
        let out_of_vocab = Clause::new(vec![cat(Op::Eq, 9)]);
        assert!(matches!(
            CompiledClause::compile(&out_of_vocab, &s),
            Err(RuleError::ValueKindMismatch { .. })
        ));
    }

    /// A finite dataset (bin fitting rejects NaN) with duplicated values so
    /// edges sit between repeated runs.
    fn finite_ds() -> Dataset {
        let mut d = Dataset::new(schema());
        for i in 0..40 {
            d.push_row(&[Value::Num(f64::from(i % 8)), Value::Cat(i % 3)], 0).unwrap();
        }
        d
    }

    #[test]
    fn binned_eval_matches_raw_at_edges_and_ulps() {
        // Satellite pin: Le/Lt/Gt/Ge/Eq agree between raw-value and
        // bin-code evaluation at bin edges, ±1 ULP around them, and at
        // duplicated in-bin values.
        let d = finite_ds();
        let s = schema();
        let cache = BinnedCache::fit(&d, 4); // coarse: real multi-value bins
        let (binner, codes) = (cache.binner(), cache.codes());
        let mut thresholds: Vec<f64> = (0..binner.n_bins(0) - 1)
            .map(|b| binner.threshold(0, b))
            .flat_map(|e| [e, e.next_up(), e.next_down()])
            .collect();
        thresholds.extend([0.0, 3.0, 7.0, 3.5, -1.0, 99.0, f64::NAN]);
        for &t in &thresholds {
            for op in [Op::Eq, Op::Gt, Op::Ge, Op::Lt, Op::Le] {
                let c = Clause::new(vec![num(op, t)]);
                let compiled = CompiledClause::compile(&c, &s).unwrap();
                assert_eq!(
                    compiled.eval_binned(binner, codes, &d),
                    compiled.eval(&d),
                    "op {op:?} threshold {t}"
                );
            }
        }
        // Mixed clause through the binned plane too.
        let c = Clause::new(vec![num(Op::Le, binner.threshold(0, 1)), cat(Op::Ne, 2)]);
        let compiled = CompiledClause::compile(&c, &s).unwrap();
        assert_eq!(compiled.eval_binned(binner, codes, &d), compiled.eval(&d));
    }

    fn frs() -> FeedbackRuleSet {
        FeedbackRuleSet::new(vec![
            FeedbackRule::deterministic(Clause::new(vec![num(Op::Le, 4.0)]), 1),
            FeedbackRule::deterministic(Clause::new(vec![num(Op::Le, 6.0), cat(Op::Eq, 0)]), 1),
            FeedbackRule::deterministic(Clause::new(vec![cat(Op::Eq, 2)]), 1),
        ])
    }

    #[test]
    fn ruleset_masks_match_interpreted_set_scans() {
        let d = ds();
        let f = frs();
        let compiled = CompiledRuleSet::compile(&f, &schema()).unwrap();
        assert_eq!(compiled.n_rules(), 3);
        assert_eq!(compiled.coverage(&d), f.coverage_interpreted(&d));
        assert_eq!(compiled.outside_coverage(&d), f.outside_coverage_interpreted(&d));
        assert_eq!(compiled.attributed_coverage(&d), f.attributed_coverage_interpreted(&d));
        assert_eq!(compiled.clause(0).coverage(&d), f.rule(0).clause().coverage_interpreted(&d));
    }

    #[test]
    fn ruleset_compile_validates_distributions_too() {
        let bad = FeedbackRuleSet::new(vec![FeedbackRule::deterministic(Clause::always_true(), 7)]);
        assert!(matches!(
            CompiledRuleSet::compile(&bad, &schema()),
            Err(RuleError::UnknownClass { class: 7 })
        ));
    }

    #[test]
    fn mask_cache_append_and_truncate_stay_exact() {
        let f = frs();
        let mut cache = RuleMaskCache::compile(&f, &schema()).unwrap();
        assert_eq!(cache.rows(), 0);
        assert_eq!(cache.n_rules(), 3);

        let mut d = ds();
        assert_eq!(
            cache.sync(&d),
            SyncOutcome::Rebuilt(frote_data::RebuildReason::FirstFit),
            "first sync evaluates the whole dataset"
        );
        assert_eq!(cache.rows(), d.n_rows());
        let fresh = CompiledRuleSet::compile(&f, &schema()).unwrap();
        assert_eq!(cache.masks(), fresh.rule_masks(&d).as_slice());

        // Append a tail — incremental bits must equal a from-scratch eval.
        for i in 0..5 {
            d.push_row(&[Value::Num(f64::from(i)), Value::Cat(0)], 1).unwrap();
        }
        assert_eq!(cache.sync(&d), SyncOutcome::Appended { rows: 5 });
        assert_eq!(cache.masks(), fresh.rule_masks(&d).as_slice());
        assert_eq!(cache.coverage(), fresh.coverage(&d));
        assert_eq!(cache.outside_coverage(), fresh.outside_coverage(&d));
        assert_eq!(cache.attributed_coverage(), fresh.attributed_coverage(&d));

        // Reject the tail: truncate is exact, and re-sync is a no-op.
        let base = ds();
        cache.truncate(base.n_rows());
        assert_eq!(cache.sync(&base), SyncOutcome::Unchanged, "exact rollback: nothing to redo");
        assert_eq!(cache.masks(), fresh.rule_masks(&base).as_slice());
    }

    #[test]
    fn injected_append_fault_degrades_mask_cache_to_rebuild() {
        let f = frs();
        let mut cache = RuleMaskCache::compile(&f, &schema()).unwrap();
        let mut d = ds();
        cache.sync(&d);
        d.push_row(&[Value::Num(1.0), Value::Cat(0)], 1).unwrap();
        frote_faults::test_support::with_spec(Some("rules.mask.append:err:1000:3"), || {
            assert_eq!(
                cache.sync(&d),
                SyncOutcome::Rebuilt(frote_data::RebuildReason::Injected),
                "a poisoned append degrades to a full re-evaluation"
            );
        });
        let fresh = CompiledRuleSet::compile(&f, &schema()).unwrap();
        assert_eq!(cache.masks(), fresh.rule_masks(&d).as_slice(), "bit-identical degradation");
        d.push_row(&[Value::Num(2.0), Value::Cat(0)], 1).unwrap();
        assert_eq!(cache.sync(&d), SyncOutcome::Appended { rows: 1 }, "fault cleared");
    }

    #[test]
    fn empty_ruleset_cache_has_full_outside_coverage() {
        let f = FeedbackRuleSet::empty();
        let mut cache = RuleMaskCache::compile(&f, &schema()).unwrap();
        let d = ds();
        cache.sync(&d);
        assert_eq!(cache.rows(), d.n_rows());
        assert!(cache.coverage().is_empty());
        assert_eq!(cache.outside_coverage(), (0..d.n_rows()).collect::<Vec<_>>());
    }
}
