//! Feedback rules `R = (s, π)`.

use std::fmt;

use frote_data::{Dataset, Schema, Value};
use serde::{Deserialize, Serialize};

use crate::clause::Clause;
use crate::dist::LabelDist;
use crate::error::RuleError;

/// A feedback rule: IF the clause holds THEN the label follows the
/// distribution (paper §3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedbackRule {
    clause: Clause,
    dist: LabelDist,
}

impl FeedbackRule {
    /// Creates a rule from a clause and a label distribution.
    pub fn new(clause: Clause, dist: LabelDist) -> Self {
        FeedbackRule { clause, dist }
    }

    /// Convenience constructor for the common deterministic case.
    pub fn deterministic(clause: Clause, class: u32) -> Self {
        FeedbackRule { clause, dist: LabelDist::Deterministic(class) }
    }

    /// The rule's clause `s`.
    pub fn clause(&self) -> &Clause {
        &self.clause
    }

    /// The rule's label distribution `π`.
    pub fn dist(&self) -> &LabelDist {
        &self.dist
    }

    /// Replaces the clause, keeping the distribution (used by relaxation).
    pub fn with_clause(&self, clause: Clause) -> FeedbackRule {
        FeedbackRule { clause, dist: self.dist.clone() }
    }

    /// Whether the rule covers `row`.
    pub fn covers(&self, row: &[Value]) -> bool {
        self.clause.satisfied_by(row)
    }

    /// Row indices of `ds` covered by the rule (paper Eq. 1).
    pub fn coverage(&self, ds: &Dataset) -> Vec<usize> {
        self.clause.coverage(ds)
    }

    /// Number of covered rows.
    pub fn coverage_count(&self, ds: &Dataset) -> usize {
        self.clause.coverage_count(ds)
    }

    /// Whether a label agrees with the rule: for deterministic rules the
    /// label must equal the class; for probabilistic rules any class with
    /// positive probability agrees.
    pub fn label_agrees(&self, label: u32) -> bool {
        self.dist.prob(label) > 0.0
    }

    /// Validates the clause and distribution against `schema`.
    ///
    /// # Errors
    ///
    /// Returns the first [`RuleError`] found.
    pub fn validate(&self, schema: &Schema) -> Result<(), RuleError> {
        self.clause.validate(schema)?;
        self.dist.validate(schema.n_classes())
    }

    /// Renders with feature/category/class names.
    pub fn display_with<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a FeedbackRule, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "IF {} THEN ", self.0.clause.display_with(self.1))?;
                match &self.0.dist {
                    LabelDist::Deterministic(c) => {
                        write!(f, "{} = {}", self.1.label_name(), self.1.class_name(*c))
                    }
                    LabelDist::Probabilistic(p) => {
                        write!(f, "{} ~ [", self.1.label_name())?;
                        for (i, q) in p.iter().enumerate() {
                            if i > 0 {
                                f.write_str(", ")?;
                            }
                            write!(f, "{}: {q:.2}", self.1.class_name(i as u32))?;
                        }
                        f.write_str("]")
                    }
                }
            }
        }
        D(self, schema)
    }
}

impl fmt::Display for FeedbackRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IF {} THEN {:?}", self.clause, self.dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Op, Predicate};
    use frote_data::Schema;

    fn schema() -> Schema {
        Schema::builder("approved", vec!["no".into(), "yes".into()])
            .numeric("age")
            .categorical("job", vec!["eng".into(), "law".into()])
            .build()
    }

    fn rule() -> FeedbackRule {
        FeedbackRule::deterministic(
            Clause::new(vec![Predicate::new(0, Op::Lt, Value::Num(29.0))]),
            1,
        )
    }

    #[test]
    fn covers_and_coverage() {
        let mut ds = Dataset::new(schema());
        ds.push_row(&[Value::Num(20.0), Value::Cat(0)], 0).unwrap();
        ds.push_row(&[Value::Num(40.0), Value::Cat(0)], 1).unwrap();
        let r = rule();
        assert!(r.covers(&ds.row(0)));
        assert!(!r.covers(&ds.row(1)));
        assert_eq!(r.coverage(&ds), vec![0]);
        assert_eq!(r.coverage_count(&ds), 1);
    }

    #[test]
    fn label_agreement() {
        let r = rule();
        assert!(r.label_agrees(1));
        assert!(!r.label_agrees(0));
        let p = FeedbackRule::new(
            Clause::always_true(),
            LabelDist::probabilistic(vec![0.3, 0.7]).unwrap(),
        );
        assert!(p.label_agrees(0) && p.label_agrees(1));
    }

    #[test]
    fn validate_checks_clause_and_dist() {
        let s = schema();
        assert!(rule().validate(&s).is_ok());
        let bad_class = FeedbackRule::deterministic(Clause::always_true(), 5);
        assert!(bad_class.validate(&s).is_err());
        let bad_clause = FeedbackRule::deterministic(
            Clause::new(vec![Predicate::new(0, Op::Ne, Value::Num(1.0))]),
            0,
        );
        assert!(bad_clause.validate(&s).is_err());
    }

    #[test]
    fn with_clause_keeps_dist() {
        let r = rule().with_clause(Clause::always_true());
        assert_eq!(r.dist(), &LabelDist::Deterministic(1));
        assert!(r.clause().is_empty());
    }

    #[test]
    fn display_with_names() {
        let s = schema();
        assert_eq!(rule().display_with(&s).to_string(), "IF age < 29 THEN approved = yes");
        let p = FeedbackRule::new(
            Clause::always_true(),
            LabelDist::probabilistic(vec![0.25, 0.75]).unwrap(),
        );
        assert_eq!(p.display_with(&s).to_string(), "IF TRUE THEN approved ~ [no: 0.25, yes: 0.75]");
    }
}
