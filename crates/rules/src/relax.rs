//! Rule relaxation: the paper's Algorithm 2 (`PreSelectBP`) inner loop.
//!
//! FROTE's generator needs at least `k + 1` covered instances per rule. When
//! a rule has less coverage, its clause is relaxed to a *maximal partial
//! rule*: the version with the fewest condition deletions that attains the
//! largest support. The search is a level-by-level greedy BFS — at each level
//! the condition whose removal yields maximum coverage is deleted — exactly
//! as in Algorithm 2 (lines 7–22); removing the last condition yields the
//! empty clause covering all of `D`.

use frote_data::Dataset;

use crate::clause::Clause;
use crate::rule::FeedbackRule;

/// Result of relaxing one rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Relaxed {
    /// The (possibly) relaxed clause.
    pub clause: Clause,
    /// Its coverage count over the dataset used for relaxation.
    pub support: usize,
    /// Number of conditions deleted (0 means the rule was already wide
    /// enough).
    pub deleted: usize,
}

impl Relaxed {
    /// Whether any condition was deleted.
    pub fn was_relaxed(&self) -> bool {
        self.deleted > 0
    }
}

/// Relaxes `rule`'s clause until it covers at least `min_support` rows of
/// `ds`, deleting greedily max-coverage conditions one level at a time.
///
/// Returns the relaxed clause along with its support and the number of
/// deletions. If the original clause already has enough support it is
/// returned unchanged. If even the empty clause cannot reach `min_support`
/// (i.e. `ds.n_rows() < min_support`), the empty clause is returned with
/// support `ds.n_rows()` — callers decide how to handle datasets that are
/// too small (FROTE's PreSelectBP skips such rules).
pub fn maximal_partial_rule(rule: &FeedbackRule, ds: &Dataset, min_support: usize) -> Relaxed {
    relax_clause(rule.clause(), ds, min_support)
}

/// Clause-level variant of [`maximal_partial_rule`].
pub fn relax_clause(clause: &Clause, ds: &Dataset, min_support: usize) -> Relaxed {
    let mut current = clause.clone();
    let mut support = current.coverage_count(ds);
    let mut deleted = 0;
    while support < min_support && !current.is_empty() {
        // Algorithm 2, lines 8-20: try removing each remaining condition,
        // keep the removal with maximum support.
        let mut best: Option<(usize, usize)> = None; // (condition index, support)
        for idx in 0..current.len() {
            let candidate = current.without(idx);
            let s = if candidate.is_empty() { ds.n_rows() } else { candidate.coverage_count(ds) };
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((idx, s));
            }
        }
        let (idx, s) = best.expect("non-empty clause has at least one condition");
        current = current.without(idx);
        support = s;
        deleted += 1;
    }
    Relaxed { clause: current, support, deleted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::LabelDist;
    use crate::predicate::{Op, Predicate};
    use frote_data::{Dataset, Schema, Value};

    fn schema() -> Schema {
        Schema::builder("y", vec!["a".into(), "b".into()])
            .numeric("x")
            .categorical("k", vec!["p".into(), "q".into()])
            .build()
    }

    /// 10 rows: x = 0..9, k = q only for x >= 8.
    fn ds() -> Dataset {
        let mut d = Dataset::new(schema());
        for i in 0..10 {
            let k = u32::from(i >= 8);
            d.push_row(&[Value::Num(i as f64), Value::Cat(k)], 0).unwrap();
        }
        d
    }

    fn rule(preds: Vec<Predicate>) -> FeedbackRule {
        FeedbackRule::new(Clause::new(preds), LabelDist::Deterministic(1))
    }

    #[test]
    fn no_relaxation_when_support_suffices() {
        let r = rule(vec![Predicate::new(0, Op::Lt, Value::Num(6.0))]);
        let out = maximal_partial_rule(&r, &ds(), 5);
        assert!(!out.was_relaxed());
        assert_eq!(out.support, 6);
        assert_eq!(&out.clause, r.clause());
    }

    #[test]
    fn drops_the_most_restrictive_condition_first() {
        // "x < 2 AND k = q" covers 0 rows; dropping "k = q" covers 2 rows,
        // dropping "x < 2" covers 2 rows; tie — greedy picks the first-best.
        // With min_support 2 one deletion suffices either way.
        let r = rule(vec![
            Predicate::new(0, Op::Lt, Value::Num(2.0)),
            Predicate::new(1, Op::Eq, Value::Cat(1)),
        ]);
        let out = maximal_partial_rule(&r, &ds(), 2);
        assert_eq!(out.deleted, 1);
        assert_eq!(out.support, 2);
        assert_eq!(out.clause.len(), 1);
    }

    #[test]
    fn greedy_prefers_max_coverage_removal() {
        // "x >= 9 AND k = p" covers 0 rows (x=9 has k=q).
        // Dropping "x >= 9" leaves "k = p" covering 8 rows;
        // dropping "k = p" leaves "x >= 9" covering 1 row.
        let r = rule(vec![
            Predicate::new(0, Op::Ge, Value::Num(9.0)),
            Predicate::new(1, Op::Eq, Value::Cat(0)),
        ]);
        let out = maximal_partial_rule(&r, &ds(), 6);
        assert_eq!(out.deleted, 1);
        assert_eq!(out.support, 8);
        assert_eq!(out.clause.predicates()[0], Predicate::new(1, Op::Eq, Value::Cat(0)));
    }

    #[test]
    fn full_relaxation_reaches_empty_clause() {
        let r = rule(vec![Predicate::new(0, Op::Ge, Value::Num(100.0))]);
        let out = maximal_partial_rule(&r, &ds(), 10);
        assert!(out.clause.is_empty());
        assert_eq!(out.support, 10);
        assert_eq!(out.deleted, 1);
    }

    #[test]
    fn impossible_support_returns_empty_clause_with_all_rows() {
        let r = rule(vec![Predicate::new(0, Op::Ge, Value::Num(100.0))]);
        let out = maximal_partial_rule(&r, &ds(), 500);
        assert!(out.clause.is_empty());
        assert_eq!(out.support, 10);
    }

    #[test]
    fn relaxation_only_deletes_conditions() {
        let r = rule(vec![
            Predicate::new(0, Op::Ge, Value::Num(9.0)),
            Predicate::new(1, Op::Eq, Value::Cat(0)),
        ]);
        let out = maximal_partial_rule(&r, &ds(), 6);
        assert!(out.clause.subset_of(r.clause()));
    }

    #[test]
    fn relaxation_never_decreases_support_below_original() {
        let r = rule(vec![
            Predicate::new(0, Op::Lt, Value::Num(3.0)),
            Predicate::new(1, Op::Eq, Value::Cat(1)),
        ]);
        let original_support = r.coverage_count(&ds());
        let out = maximal_partial_rule(&r, &ds(), 4);
        assert!(out.support >= original_support);
    }
}
