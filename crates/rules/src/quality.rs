//! Rule quality metrics against a labelled dataset.
//!
//! Induction, perturbation diagnostics and the examples all need to answer
//! "how good is this rule on this data?" — this module centralizes the
//! standard measures (support, confidence/precision, recall, lift) for
//! deterministic rules and expected-agreement variants for probabilistic
//! ones.

use frote_data::Dataset;

use crate::error::RuleError;
use crate::rule::FeedbackRule;

/// Quality measures of one rule over one dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleQuality {
    /// Covered rows.
    pub support: usize,
    /// Covered fraction of the dataset.
    pub coverage: f64,
    /// Expected agreement of covered rows' labels with the rule's
    /// distribution (precision/confidence for deterministic rules).
    pub confidence: f64,
    /// Fraction of rows agreeing with the rule that the rule covers
    /// (recall; for probabilistic rules, "agreeing" means the row's label is
    /// the rule's mode).
    pub recall: f64,
    /// Confidence relative to the base rate of the rule's mode class;
    /// `> 1` means the rule is informative.
    pub lift: f64,
}

/// Computes [`RuleQuality`] for `rule` over `ds`.
///
/// Empty datasets and zero-coverage rules yield zeroed metrics rather than
/// NaNs. Coverage is scanned by the columnar engine (see
/// [`crate::Clause::coverage`]); [`assess_interpreted`] is the
/// row-at-a-time reference twin.
pub fn assess(rule: &FeedbackRule, ds: &Dataset) -> RuleQuality {
    assess_covered(rule, ds, &rule.coverage(ds))
}

/// [`assess`] over the row-at-a-time interpreter's coverage scan — the
/// reference twin used by differential tests and perf baselines. Metrics
/// are identical to [`assess`] on valid rules.
pub fn assess_interpreted(rule: &FeedbackRule, ds: &Dataset) -> RuleQuality {
    assess_covered(rule, ds, &rule.clause().coverage_interpreted(ds))
}

/// The shared metric math over an already-computed covered-row list.
fn assess_covered(rule: &FeedbackRule, ds: &Dataset, covered: &[usize]) -> RuleQuality {
    let n = ds.n_rows();
    if n == 0 {
        return RuleQuality { support: 0, coverage: 0.0, confidence: 0.0, recall: 0.0, lift: 0.0 };
    }
    let support = covered.len();
    let coverage = support as f64 / n as f64;
    let confidence = if support == 0 {
        0.0
    } else {
        covered.iter().map(|&i| rule.dist().prob(ds.label(i))).sum::<f64>() / support as f64
    };
    let mode = rule.dist().mode();
    let positives = ds.labels().iter().filter(|&&l| l == mode).count();
    let covered_positives = covered.iter().filter(|&&i| ds.label(i) == mode).count();
    let recall = if positives == 0 { 0.0 } else { covered_positives as f64 / positives as f64 };
    let base_rate = positives as f64 / n as f64;
    let mode_precision = if support == 0 { 0.0 } else { covered_positives as f64 / support as f64 };
    let lift = if base_rate > 0.0 { mode_precision / base_rate } else { 0.0 };
    RuleQuality { support, coverage, confidence, recall, lift }
}

/// Assesses every rule of a set, in order. Rules are scanned in parallel
/// across `frote_par::threads()` threads; each rule's metrics are identical
/// to a serial [`assess`] call.
pub fn assess_all(rules: &[FeedbackRule], ds: &Dataset) -> Vec<RuleQuality> {
    frote_par::par_map(rules, |r| assess(r, ds))
}

/// Pre-validated [`assess_all`]: validates every rule against the
/// dataset's schema once up front, so malformed (parsed/expert-submitted)
/// rules surface a [`RuleError`] instead of panicking mid-scan.
///
/// # Errors
///
/// Returns the first [`RuleError`] found.
pub fn try_assess_all(rules: &[FeedbackRule], ds: &Dataset) -> Result<Vec<RuleQuality>, RuleError> {
    rules.iter().try_for_each(|r| r.validate(ds.schema()))?;
    Ok(assess_all(rules, ds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::Clause;
    use crate::dist::LabelDist;
    use crate::predicate::{Op, Predicate};
    use frote_data::{Schema, Value};

    /// 10 rows: x = 0..10; label 1 iff x < 4 (4 positives).
    fn ds() -> Dataset {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut d = Dataset::new(schema);
        for i in 0..10 {
            d.push_row(&[Value::Num(i as f64)], u32::from(i < 4)).unwrap();
        }
        d
    }

    fn rule(threshold: f64, class: u32) -> FeedbackRule {
        FeedbackRule::new(
            Clause::new(vec![Predicate::new(0, Op::Lt, Value::Num(threshold))]),
            LabelDist::Deterministic(class),
        )
    }

    #[test]
    fn perfect_rule() {
        let q = assess(&rule(4.0, 1), &ds());
        assert_eq!(q.support, 4);
        assert!((q.coverage - 0.4).abs() < 1e-12);
        assert_eq!(q.confidence, 1.0);
        assert_eq!(q.recall, 1.0);
        assert!((q.lift - (1.0 / 0.4)).abs() < 1e-12);
    }

    #[test]
    fn partially_correct_rule() {
        // Covers x < 6: 4 positives, 2 negatives.
        let q = assess(&rule(6.0, 1), &ds());
        assert_eq!(q.support, 6);
        assert!((q.confidence - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(q.recall, 1.0);
    }

    #[test]
    fn anti_rule_has_low_lift() {
        // Predicts 1 where labels are 0.
        let q = assess(&rule(10.0, 1), &ds());
        assert!((q.confidence - 0.4).abs() < 1e-12);
        assert!((q.lift - 1.0).abs() < 1e-12); // covers everything -> base rate
        let q = assess(
            &FeedbackRule::new(
                Clause::new(vec![Predicate::new(0, Op::Ge, Value::Num(6.0))]),
                LabelDist::Deterministic(1),
            ),
            &ds(),
        );
        assert_eq!(q.confidence, 0.0);
        assert_eq!(q.lift, 0.0);
    }

    #[test]
    fn zero_coverage_and_empty_dataset() {
        let q = assess(&rule(-5.0, 1), &ds());
        assert_eq!(q.support, 0);
        assert_eq!(q.confidence, 0.0);
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let empty = Dataset::new(schema);
        let q = assess(&rule(4.0, 1), &empty);
        assert_eq!(q.support, 0);
        assert_eq!(q.lift, 0.0);
    }

    #[test]
    fn probabilistic_confidence_is_expected_agreement() {
        let r = FeedbackRule::new(
            Clause::new(vec![Predicate::new(0, Op::Lt, Value::Num(4.0))]),
            LabelDist::probabilistic(vec![0.25, 0.75]).unwrap(),
        );
        // Covered labels are all 1 -> expected agreement 0.75.
        let q = assess(&r, &ds());
        assert!((q.confidence - 0.75).abs() < 1e-12);
    }

    #[test]
    fn assess_all_orders_match() {
        let rules = vec![rule(4.0, 1), rule(6.0, 1)];
        let qs = assess_all(&rules, &ds());
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[0].support, 4);
        assert_eq!(qs[1].support, 6);
    }

    #[test]
    fn interpreted_twin_matches_compiled_assess() {
        let d = ds();
        for r in [rule(4.0, 1), rule(6.0, 0), rule(-5.0, 1)] {
            assert_eq!(assess(&r, &d), assess_interpreted(&r, &d));
        }
    }

    #[test]
    fn try_assess_all_pre_validates() {
        let d = ds();
        // Ne on numeric parses programmatically but fails validation; the
        // scan must error up front, not panic.
        let bad = FeedbackRule::new(
            Clause::new(vec![Predicate::new(0, Op::Ne, Value::Num(1.0))]),
            LabelDist::Deterministic(1),
        );
        assert!(try_assess_all(&[rule(4.0, 1), bad], &d).is_err());
        let qs = try_assess_all(&[rule(4.0, 1)], &d).unwrap();
        assert_eq!(qs[0].support, 4);
    }
}
