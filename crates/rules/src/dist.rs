//! Label distributions `π` attached to feedback rules.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::RuleError;

/// The label distribution of a feedback rule (paper §3.1).
///
/// The common case is deterministic (`Y = c` with probability 1). The paper
/// also allows probabilistic rules, useful for expressing uncertainty in a
/// rule and mitigating over-confident experts (its Table 6 experiment).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LabelDist {
    /// Kronecker delta on one class.
    Deterministic(u32),
    /// Explicit probabilities per class (must sum to 1 within tolerance).
    Probabilistic(Vec<f64>),
}

impl LabelDist {
    /// Creates a deterministic distribution on `class`.
    pub fn deterministic(class: u32) -> Self {
        LabelDist::Deterministic(class)
    }

    /// Creates a probabilistic distribution.
    ///
    /// # Errors
    ///
    /// Returns [`RuleError::InvalidDistribution`] if any probability is
    /// negative/non-finite or the sum is not 1 within `1e-6`.
    pub fn probabilistic(probs: Vec<f64>) -> Result<Self, RuleError> {
        if probs.is_empty() || probs.iter().any(|&p| !p.is_finite() || p < 0.0) {
            return Err(RuleError::InvalidDistribution {
                detail: "probabilities must be finite and non-negative".into(),
            });
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(RuleError::InvalidDistribution {
                detail: format!("probabilities sum to {sum}, expected 1"),
            });
        }
        Ok(LabelDist::Probabilistic(probs))
    }

    /// Whether the distribution is deterministic.
    pub fn is_deterministic(&self) -> bool {
        matches!(self, LabelDist::Deterministic(_))
    }

    /// The most likely class (ties to the lowest index).
    pub fn mode(&self) -> u32 {
        match self {
            LabelDist::Deterministic(c) => *c,
            LabelDist::Probabilistic(p) => p
                .iter()
                .enumerate()
                .max_by(|(i, a), (j, b)| a.partial_cmp(b).expect("finite probs").then(j.cmp(i)))
                .map(|(i, _)| i as u32)
                .expect("validated non-empty"),
        }
    }

    /// Probability assigned to `class`.
    pub fn prob(&self, class: u32) -> f64 {
        match self {
            LabelDist::Deterministic(c) => {
                if *c == class {
                    1.0
                } else {
                    0.0
                }
            }
            LabelDist::Probabilistic(p) => p.get(class as usize).copied().unwrap_or(0.0),
        }
    }

    /// Draws a class.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match self {
            LabelDist::Deterministic(c) => *c,
            LabelDist::Probabilistic(p) => {
                let mut t = rng.random::<f64>();
                for (i, &q) in p.iter().enumerate() {
                    if t < q {
                        return i as u32;
                    }
                    t -= q;
                }
                (p.len() - 1) as u32
            }
        }
    }

    /// The even mixture `(self + other) / 2` over `n_classes` classes —
    /// the paper's conflict-resolution option 2.
    pub fn mixture(&self, other: &LabelDist, n_classes: usize) -> LabelDist {
        let probs =
            (0..n_classes as u32).map(|c| 0.5 * self.prob(c) + 0.5 * other.prob(c)).collect();
        LabelDist::Probabilistic(probs)
    }

    /// Validates against a class count.
    ///
    /// # Errors
    ///
    /// Returns [`RuleError::UnknownClass`] for an out-of-range deterministic
    /// class, or [`RuleError::InvalidDistribution`] for a probability vector
    /// of the wrong arity.
    pub fn validate(&self, n_classes: usize) -> Result<(), RuleError> {
        match self {
            LabelDist::Deterministic(c) => {
                if (*c as usize) < n_classes {
                    Ok(())
                } else {
                    Err(RuleError::UnknownClass { class: *c })
                }
            }
            LabelDist::Probabilistic(p) => {
                if p.len() == n_classes {
                    Ok(())
                } else {
                    Err(RuleError::InvalidDistribution {
                        detail: format!("{} probabilities for {n_classes} classes", p.len()),
                    })
                }
            }
        }
    }
}

impl From<u32> for LabelDist {
    fn from(class: u32) -> Self {
        LabelDist::Deterministic(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_basics() {
        let d = LabelDist::deterministic(2);
        assert!(d.is_deterministic());
        assert_eq!(d.mode(), 2);
        assert_eq!(d.prob(2), 1.0);
        assert_eq!(d.prob(0), 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(d.sample(&mut rng), 2);
    }

    #[test]
    fn probabilistic_validation() {
        assert!(LabelDist::probabilistic(vec![0.5, 0.5]).is_ok());
        assert!(LabelDist::probabilistic(vec![0.5, 0.6]).is_err());
        assert!(LabelDist::probabilistic(vec![-0.1, 1.1]).is_err());
        assert!(LabelDist::probabilistic(vec![]).is_err());
        assert!(LabelDist::probabilistic(vec![f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn sampling_matches_probs() {
        let d = LabelDist::probabilistic(vec![0.2, 0.8]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let ones = (0..n).filter(|_| d.sample(&mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "frac {frac}");
        assert_eq!(d.mode(), 1);
    }

    #[test]
    fn mixture_of_deterministics() {
        let a = LabelDist::deterministic(0);
        let b = LabelDist::deterministic(1);
        let m = a.mixture(&b, 3);
        assert_eq!(m.prob(0), 0.5);
        assert_eq!(m.prob(1), 0.5);
        assert_eq!(m.prob(2), 0.0);
    }

    #[test]
    fn validate_against_class_count() {
        assert!(LabelDist::deterministic(1).validate(2).is_ok());
        assert!(LabelDist::deterministic(2).validate(2).is_err());
        assert!(LabelDist::probabilistic(vec![1.0]).unwrap().validate(2).is_err());
    }

    #[test]
    fn mode_tie_breaks_low() {
        let d = LabelDist::Probabilistic(vec![0.5, 0.5]);
        assert_eq!(d.mode(), 0);
    }
}
