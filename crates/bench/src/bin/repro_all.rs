//! Runs every table/figure reproduction in sequence (smoke scale by
//! default). `EXPERIMENTS.md` archives a full transcript.

use frote::ModStrategy;
use frote_bench::CliOptions;
use frote_data::synth::DatasetKind;
use frote_eval::experiments::{
    benefit, overlay_cmp, probabilistic, progress, rule_count, selection_cmp, table1,
};
use frote_eval::Scale;

fn main() {
    let opts = CliOptions::from_env();
    let scale = opts.scale;
    println!("== FROTE reproduction: all experiments ({} scale) ==\n", scale.name());

    println!("{}", table1::run(scale));

    let fig2_kinds = match scale {
        Scale::Paper | Scale::Medium => {
            vec![DatasetKind::Adult, DatasetKind::WineQuality, DatasetKind::Contraceptive]
        }
        Scale::Smoke => vec![DatasetKind::Car, DatasetKind::Mushroom],
    };
    let tcf_grid: &[f64] = match scale {
        Scale::Paper | Scale::Medium => &benefit::TCF_GRID,
        Scale::Smoke => &[0.0, 0.2],
    };
    for kind in fig2_kinds {
        let cells = benefit::run_dataset(kind, scale, ModStrategy::Relabel, tcf_grid);
        println!("{}", benefit::render_cells(kind, ModStrategy::Relabel, &cells));
    }

    let binary = [DatasetKind::BreastCancer, DatasetKind::Mushroom];
    let cells = overlay_cmp::run_datasets(&binary, scale);
    println!("{}", overlay_cmp::render_delta_j("Table 2: ΔJ̄ vs Overlay", &cells));

    let cells = rule_count::run_dataset(DatasetKind::BreastCancer, scale, &rule_count::SIZE_GRID);
    println!("{}", rule_count::render_cells(DatasetKind::BreastCancer, &cells));

    let sel_kinds = match scale {
        Scale::Paper | Scale::Medium => DatasetKind::ALL.to_vec(),
        Scale::Smoke => vec![DatasetKind::Car, DatasetKind::Mushroom],
    };
    let cells = selection_cmp::run_datasets(&sel_kinds, scale);
    println!("{}", selection_cmp::render_table3(&sel_kinds, &cells));
    println!("{}", selection_cmp::render_table4(&sel_kinds, &cells));
    println!("{}", selection_cmp::render_table5(&sel_kinds, &cells));

    let cells = probabilistic::run_datasets(&[DatasetKind::Mushroom], scale);
    println!("{}", probabilistic::render_cells(&cells));

    let adult = overlay_cmp::run_datasets(&[DatasetKind::Adult], scale);
    println!("{}", overlay_cmp::render_delta_j("Table 7: ΔJ̄ vs Overlay on Adult", &adult));
    println!("{}", overlay_cmp::render_mra_f(&adult));

    let fig9_kind = match scale {
        Scale::Paper | Scale::Medium => DatasetKind::Adult,
        Scale::Smoke => DatasetKind::Car,
    };
    let curves = progress::run_dataset(fig9_kind, scale, &[0.0, 0.2]);
    print!("{}", progress::render_curves(fig9_kind, &curves));
    opts.emit_metrics();
}
