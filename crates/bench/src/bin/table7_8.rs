//! Regenerates the supplement's Tables 7 and 8: the Overlay comparison on
//! Adult (ΔJ̄) and the ΔMRA / ΔF-Score split for all binary datasets.

use frote_bench::CliOptions;
use frote_data::synth::DatasetKind;
use frote_eval::experiments::overlay_cmp;

fn main() {
    let opts = CliOptions::from_env();
    let adult = overlay_cmp::run_datasets(&[DatasetKind::Adult], opts.scale);
    println!("{}", overlay_cmp::render_delta_j("Table 7: ΔJ̄ vs Overlay on Adult", &adult));
    let kinds = [DatasetKind::BreastCancer, DatasetKind::Mushroom, DatasetKind::Adult];
    let cells = overlay_cmp::run_datasets(&kinds, opts.scale);
    println!("{}", overlay_cmp::render_mra_f(&cells));
    opts.emit_metrics();
}
