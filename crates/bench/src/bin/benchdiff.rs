//! CI bench gate: diffs a fresh perfsmoke record against the committed
//! baseline and fails on output-hash regressions (timings are warn-only).
//!
//! ```text
//! benchdiff [--new <path>] [--old <path>]
//! ```
//!
//! `--new` defaults to the `BENCH_FILE` environment variable (the name CI
//! wires everywhere) or the committed record name, in the current
//! directory; `--old` defaults to the highest-numbered other
//! `BENCH_*.json` next to it (CI passes an explicit `--old` pointing at a
//! pre-run copy of the committed record, so the fresh run gates against
//! its own committed baseline).

use std::path::PathBuf;
use std::process::ExitCode;

use frote_bench::benchgate::{compare, default_bench_file, discover_baseline, GateFile};

fn parse_file(path: &PathBuf) -> GateFile {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {}: {e:?}", path.display()))
}

fn main() -> ExitCode {
    let mut new_path: Option<PathBuf> = None;
    let mut old_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--new" => new_path = Some(args.next().expect("--new requires a path").into()),
            "--old" => old_path = Some(args.next().expect("--old requires a path").into()),
            other => panic!("unknown argument {other:?} (benchdiff [--new <path>] [--old <path>])"),
        }
    }
    let new_path = new_path.unwrap_or_else(|| PathBuf::from(default_bench_file()));
    let old_path = old_path.unwrap_or_else(|| {
        let dir = new_path.parent().filter(|p| !p.as_os_str().is_empty());
        let exclude = new_path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        discover_baseline(dir.unwrap_or(std::path::Path::new(".")), exclude)
            .unwrap_or_else(|| panic!("no baseline BENCH_*.json found next to {new_path:?}"))
    });
    println!("benchdiff: {} (fresh) vs {} (baseline)", new_path.display(), old_path.display());

    let outcome = compare(&parse_file(&old_path), &parse_file(&new_path));
    for line in &outcome.table {
        println!("  {line}");
    }
    for note in &outcome.notes {
        println!("  note: {note}");
    }
    if outcome.passed() {
        println!("bench gate: OK (timings are warn-only; output hashes unchanged)");
        ExitCode::SUCCESS
    } else {
        for f in &outcome.failures {
            eprintln!("bench gate FAILURE: {f}");
        }
        ExitCode::FAILURE
    }
}
