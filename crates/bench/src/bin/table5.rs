//! Regenerates the supplement's Table 5: ΔMRA and ΔF-Score reported
//! separately for IP and random selection.

use frote_bench::CliOptions;
use frote_data::synth::DatasetKind;
use frote_eval::experiments::selection_cmp;
use frote_eval::Scale;

fn main() {
    let opts = CliOptions::from_env();
    let kinds: Vec<DatasetKind> = if opts.all_datasets || opts.scale == Scale::Paper {
        DatasetKind::ALL.to_vec()
    } else {
        vec![DatasetKind::Car, DatasetKind::Mushroom]
    };
    let cells = selection_cmp::run_datasets(&kinds, opts.scale);
    println!("{}", selection_cmp::render_table5(&kinds, &cells));
    opts.emit_metrics();
}
