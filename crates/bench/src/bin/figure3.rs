//! Regenerates Figure 3: effect of the feedback rule set size on Breast
//! Cancer (use `--all-datasets` for the supplement's Figure 10 datasets).

use frote_bench::CliOptions;
use frote_data::synth::DatasetKind;
use frote_eval::experiments::rule_count;

fn main() {
    let opts = CliOptions::from_env();
    let kinds: Vec<DatasetKind> = if opts.all_datasets {
        vec![
            DatasetKind::BreastCancer,
            DatasetKind::Car,
            DatasetKind::Contraceptive,
            DatasetKind::Nursery,
            DatasetKind::Splice,
        ]
    } else {
        vec![DatasetKind::BreastCancer]
    };
    for kind in kinds {
        let cells = rule_count::run_dataset(kind, opts.scale, &rule_count::SIZE_GRID);
        println!("{}", rule_count::render_cells(kind, &cells));
    }
    opts.emit_metrics();
}
