//! Regenerates Table 2: FROTE vs Overlay (soft/hard constraints) on the
//! binary datasets Breast Cancer and Mushroom.

use frote_bench::CliOptions;
use frote_data::synth::DatasetKind;
use frote_eval::experiments::overlay_cmp;

fn main() {
    let opts = CliOptions::from_env();
    let kinds = [DatasetKind::BreastCancer, DatasetKind::Mushroom];
    let cells = overlay_cmp::run_datasets(&kinds, opts.scale);
    println!(
        "{}",
        overlay_cmp::render_delta_j("Table 2: ΔJ̄ vs Overlay on binary datasets", &cells)
    );
    opts.emit_metrics();
}
