//! Regenerates Figure 2 (and, with `--mod-strategy none|drop` and
//! `--all-datasets`, the supplement's Figures 4-8): the benefit of
//! augmentation across training coverage fractions.

use frote_bench::CliOptions;
use frote_data::synth::DatasetKind;
use frote_eval::experiments::benefit;
use frote_eval::Scale;

fn main() {
    let opts = CliOptions::from_env();
    let kinds: Vec<DatasetKind> = if opts.all_datasets {
        DatasetKind::ALL.to_vec()
    } else {
        // The main paper's Figure 2 shows Adult, Wine and Contraceptive; at
        // smoke scale the shapes are clearest on the smaller three.
        match opts.scale {
            Scale::Paper | Scale::Medium => {
                vec![DatasetKind::Adult, DatasetKind::WineQuality, DatasetKind::Contraceptive]
            }
            Scale::Smoke => {
                vec![DatasetKind::Car, DatasetKind::Mushroom, DatasetKind::Contraceptive]
            }
        }
    };
    let tcf_grid: &[f64] = match opts.scale {
        Scale::Paper | Scale::Medium => &benefit::TCF_GRID,
        Scale::Smoke => &[0.0, 0.1, 0.2],
    };
    for kind in kinds {
        let cells = benefit::run_dataset(kind, opts.scale, opts.mod_strategy, tcf_grid);
        println!("{}", benefit::render_cells(kind, opts.mod_strategy, &cells));
    }
    opts.emit_metrics();
}
