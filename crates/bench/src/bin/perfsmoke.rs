//! Perf smoke: times the parallelized hot paths at 1 and N threads and
//! writes a `BENCH_*.json` record (default `BENCH_pr8.json` at the
//! repository root; override with `--out <path>`), including an end-of-run
//! `frote-obs` metrics snapshot whose thread-invariant counters `benchdiff`
//! gates like output hashes.
//!
//! Probes cover the `frote-par` runtime (kNN batch query, SMOTE generation,
//! one full FROTE iteration), the dense data plane (batch encoding into
//! `FeatureMatrix`, batch `predict_dataset` scoring for the RF / LGBM / LR
//! families), the quantized training plane (DT / GBDT fits in exact vs
//! histogram split mode), the numeric kernel layer (`lr_fit` blocked
//! logistic-regression training, `knn_batch` brute mixed-distance scans,
//! `rf_hist_subsample` compact candidate histograms), and the compiled
//! columnar rule engine (`rule_coverage` clause scans, `rule_quality_scan`
//! whole-set quality assessment — each against its row-at-a-time
//! interpreted twin, with the two sides' digests asserted equal). Every
//! serial/parallel pair cross-checks the determinism contract — the outputs
//! must match exactly — and records a *stable* FNV-1a output digest so
//! `benchdiff` can gate later runs against this one. Timings are recorded,
//! not gated: single-core CI hosts will legitimately report ~1× speedups,
//! and the reduction kernels are chain-bound by the byte-identical contract
//! (`f64` sums cannot be reassociated), so their single-thread gains are
//! modest by design — the parallel gradient and the cache reuse are where
//! the training-loop time goes.
//!
//! PR 8 adds the sharded data plane: `shard_hist_fit` (histogram tree
//! training with 64-row shards, per-shard builds merged in shard order)
//! and `smote_sharded` (SMOTE generation over per-shard kNN scans), each
//! digest-asserted equal to its unsharded twin, plus a dataset-size
//! `scaling` section (WineQuality at the three `frote_eval::Scale` row
//! counts) recording how the sharded and unsharded fits scale together.
//!
//! PR 9 adds the serving plane: a `serve` section with `serve_latency`
//! (sequential single-client request p50/p99 over the wire) and a
//! `serve_sweep_rows{1,16,128}` batch-size sweep under 4 concurrent
//! clients, every probe's responses digest-asserted bit-identical to a
//! direct `predict_rows` call on the same rows. `benchdiff` hard-gates the
//! response digests and warns on latency movement.

use std::hash::{Hash, Hasher};
use std::time::Instant;

use frote::{Frote, FroteConfig, SelectionStrategy};
use frote_bench::benchgate::{default_bench_file, FnvHasher};
use frote_bench::CliOptions;
use frote_data::encode::Encoder;
use frote_data::synth::{DatasetKind, SynthConfig};
use frote_data::{Binner, Dataset, FeatureMatrix, Value};
use frote_eval::Scale;
use frote_ml::balltree::BallTree;
use frote_ml::distance::{MixedDistance, MixedMetric};
use frote_ml::forest::{ForestParams, RandomForestTrainer};
use frote_ml::gbdt::{Gbdt, GbdtParams, GbdtTrainer};
use frote_ml::histogram::subsample_hist_probe;
use frote_ml::knn::k_nearest_of_rows;
use frote_ml::logreg::{LogRegParams, LogisticRegression, LogisticRegressionTrainer};
use frote_ml::tree::{DecisionTreeTrainer, TreeParams};
use frote_ml::{Classifier, SplitMode, TrainAlgorithm};
use frote_rules::parse::parse_rule;
use frote_rules::quality::{assess_all, assess_interpreted, RuleQuality};
use frote_rules::{Clause, FeedbackRule, FeedbackRuleSet, Op, Predicate};
use frote_smote::{Smote, SmoteParams};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// One hot path's serial/parallel timing pair.
#[derive(Debug, Serialize)]
struct BenchRecord {
    name: String,
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
    /// Whether the serial and parallel outputs were bit-identical.
    identical: bool,
    /// Stable FNV-1a digest of the probe's output (hex) — the value
    /// `benchdiff` gates across runs.
    output_fnv: String,
}

/// One baseline-vs-optimized comparison of serial (single-thread) legs:
/// exact vs histogram training, the pre-kernel scalar LR loop vs the
/// kernel/blocked fit, the full-layout vs compact candidate histograms.
#[derive(Debug, Serialize)]
struct ModeComparison {
    name: String,
    baseline_ms: f64,
    optimized_ms: f64,
    speedup: f64,
}

impl ModeComparison {
    fn new(name: &str, baseline_ms: f64, optimized_ms: f64) -> Self {
        ModeComparison {
            name: name.to_string(),
            baseline_ms,
            optimized_ms,
            speedup: baseline_ms / optimized_ms,
        }
    }
}

/// One point of the dataset-size scaling curve: the same histogram tree
/// fit, unsharded vs 64-row shards, at one `frote_eval::Scale` row count.
#[derive(Debug, Serialize)]
struct ScalingPoint {
    scale: String,
    n_rows: usize,
    unsharded_ms: f64,
    sharded_ms: f64,
    /// Whether the sharded fit's predictions matched the unsharded fit's
    /// bit for bit (always asserted, recorded for the JSON reader).
    identical: bool,
}

/// One serve-path probe: request latencies over the wire through the
/// micro-batcher, with the responses digest-asserted against a direct
/// `predict_rows` call on the same rows.
#[derive(Debug, Serialize)]
struct ServeRecord {
    name: String,
    requests: usize,
    rows_per_request: usize,
    concurrency: usize,
    p50_ms: f64,
    p99_ms: f64,
    /// Whether the wire responses were bit-identical to direct scoring
    /// (always asserted; recorded for `benchdiff`).
    matches_direct: bool,
    /// Stable FNV-1a digest of all response labels in request order.
    response_fnv: String,
    /// Fraction of score attempts shed by admission control — only the
    /// PR 10 `serve_overload` probe; `None` for the latency probes.
    /// Timing-dependent, so `benchdiff` treats drift as warn-only.
    shed_rate: Option<f64>,
}

/// The whole perf-smoke report.
#[derive(Debug, Serialize)]
struct PerfSmoke {
    host_parallelism: usize,
    threads_compared: Vec<usize>,
    benches: Vec<BenchRecord>,
    mode_comparisons: Vec<ModeComparison>,
    /// Dataset-size scaling of the sharded vs unsharded histogram fit.
    scaling: Vec<ScalingPoint>,
    /// Serve-path probes: latency percentiles + response digests of the
    /// PR 9 serving plane (`serve_latency`, the batch-size sweep).
    serve: Vec<ServeRecord>,
    /// End-of-run `frote-obs` snapshot: the interior counters (cache
    /// appends, FROTE accepts, histogram nodes, …) behind the timings.
    /// `benchdiff` gates the thread-invariant counters like output hashes.
    metrics: frote_obs::MetricsSnapshot,
    note: String,
}

/// Drives a capacity-2 batch queue past saturation under an injected
/// 25ms drain delay and measures the shed rate plus per-request completion
/// latency (retries included). Every request retries its way to a `200`,
/// so the digest is deterministic and gate-comparable; the shed rate is
/// arrival-timing-dependent and recorded warn-only.
///
/// Runs with `frote-obs` metrics *disabled*: a shed request is parsed and
/// guard-checked before admission control turns it away, so the engine's
/// thread-invariant counters (`rule_engine.eval_raw`, …) would otherwise
/// move with the timing-dependent shed count and flake the hard gate. The
/// probe's own record (latencies, shed rate, response digest) is computed
/// locally and unaffected.
fn run_overload_probe(
    workload: &frote_serve::Workload,
    serve_ds: &frote_data::Dataset,
    direct_model: &dyn frote_ml::Classifier,
) -> ServeRecord {
    use std::hash::Hash as _;
    use std::hash::Hasher as _;

    const REQUESTS: usize = 64;
    const ROWS: usize = 8;
    const CONCURRENCY: usize = 8;

    frote_obs::set_metrics_enabled(false);
    frote_faults::set_spec(Some("serve.batch.drain:delay:1000:21:25")).expect("valid delay spec");
    let guard = frote_serve::RowGuard::not_null(serve_ds.schema()).expect("guard compiles");
    let snapshot = frote_serve::Snapshot::fit(&*workload.trainer(), serve_ds, guard);
    let registry = std::sync::Arc::new(frote_serve::ModelRegistry::new());
    registry.register(workload.name(), snapshot, None);
    let config = frote_serve::ServeConfig {
        workers: CONCURRENCY,
        max_queue_depth: 2,
        ..frote_serve::ServeConfig::default()
    };
    let server = std::sync::Arc::new(
        frote_serve::Server::bind(&config, registry).expect("bind overload loopback"),
    );
    let accept = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };
    let addr = server.local_addr().to_string();

    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::scope(|scope| {
        for worker in 0..CONCURRENCY {
            let tx = tx.clone();
            let addr = addr.clone();
            scope.spawn(move || {
                let mut client =
                    frote_serve::Client::connect(&addr).expect("connect overload client");
                let mut backoff = frote_serve::Backoff::new(
                    0x0DD + worker as u64,
                    std::time::Duration::from_millis(2),
                    std::time::Duration::from_millis(40),
                );
                let mut i = worker;
                while i < REQUESTS {
                    let body = workload.probe_body(serve_ds, i * ROWS, ROWS);
                    let start = Instant::now();
                    let mut sheds = 0usize;
                    let labels = loop {
                        let resp = client
                            .request("POST", &format!("/score/{}", workload.name()), &body)
                            .expect("overload request transports");
                        match resp.status {
                            200 => {
                                break frote_serve::client::parse_score_body(&resp.body)
                                    .expect("well-formed 200 body")
                                    .1
                            }
                            503 => {
                                sheds += 1;
                                std::thread::sleep(backoff.next_delay(None));
                            }
                            other => panic!("overload probe: unexpected status {other}"),
                        }
                    };
                    let ms = start.elapsed().as_secs_f64() * 1e3;
                    tx.send((i, ms, sheds, labels)).expect("collector alive");
                    i += CONCURRENCY;
                }
            });
        }
    });
    drop(tx);
    frote_faults::set_spec(None).expect("disarm");

    let mut slots: Vec<Option<(f64, usize, Vec<String>)>> = (0..REQUESTS).map(|_| None).collect();
    for (i, ms, sheds, labels) in rx {
        slots[i] = Some((ms, sheds, labels));
    }
    let responses: Vec<(f64, usize, Vec<String>)> =
        slots.into_iter().map(|s| s.expect("every request answered")).collect();
    let total_sheds: usize = responses.iter().map(|(_, sheds, _)| *sheds).sum();
    let attempts = REQUESTS + total_sheds;
    let mut wire = FnvHasher::new();
    let mut direct = FnvHasher::new();
    for (i, (_, _, labels)) in responses.iter().enumerate() {
        let indices: Vec<usize> = (0..ROWS).map(|k| (i * ROWS + k) % serve_ds.n_rows()).collect();
        for &p in &direct_model.predict_rows(serve_ds, &indices) {
            serve_ds.schema().class_name(p).hash(&mut direct);
        }
        for label in labels {
            label.hash(&mut wire);
        }
    }
    let matches_direct = wire.finish() == direct.finish();
    assert!(matches_direct, "serve_overload: retried responses diverged from direct predict_rows");
    let mut latencies: Vec<f64> = responses.iter().map(|(ms, _, _)| *ms).collect();
    latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| latencies[((latencies.len() as f64 - 1.0) * p).round() as usize];

    server.trigger_shutdown();
    accept.join().expect("overload accept loop joins");
    frote_obs::set_metrics_enabled(true);

    ServeRecord {
        name: "serve_overload".to_string(),
        requests: REQUESTS,
        rows_per_request: ROWS,
        concurrency: CONCURRENCY,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        matches_direct,
        response_fnv: format!("{:016x}", wire.finish()),
        shed_rate: Some(total_sheds as f64 / attempts as f64),
    }
}

/// Best-of-`reps` wall-clock in milliseconds plus the output digest.
fn time_best(reps: usize, mut f: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut digest = 0;
    for _ in 0..reps {
        let start = Instant::now();
        digest = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (best, digest)
}

fn record(name: &str, threads: usize, reps: usize, mut f: impl FnMut() -> u64) -> BenchRecord {
    frote_par::set_threads(1);
    let (serial_ms, serial_digest) = time_best(reps, &mut f);
    frote_par::set_threads(threads);
    let (parallel_ms, parallel_digest) = time_best(reps, &mut f);
    frote_par::set_threads(1);
    BenchRecord {
        name: name.to_string(),
        serial_ms,
        parallel_ms,
        speedup: serial_ms / parallel_ms,
        identical: serial_digest == parallel_digest,
        output_fnv: format!("{parallel_digest:016x}"),
    }
}

fn hash_of<T: Hash>(value: &T) -> u64 {
    let mut h = FnvHasher::new();
    value.hash(&mut h);
    h.finish()
}

fn hash_f64s(values: &[f64]) -> u64 {
    let mut h = FnvHasher::new();
    for v in values {
        v.to_bits().hash(&mut h);
    }
    h.finish()
}

/// The pre-kernel (PR 3/4 era) logistic-regression training loop, verbatim:
/// scalar dot products and one sequential gradient chain over all rows.
/// Kept only as the measured baseline of the `lr_fit` mode comparison —
/// production training lives in `frote_ml::logreg` on the kernel layer.
/// Ends with the same encode + whole-dataset scoring pass the optimized
/// leg's `predict_dataset` performs, so the two legs time identical work.
fn naive_scalar_lr_fit(ds: &Dataset, params: &LogRegParams) -> u64 {
    let encoder = Encoder::fit(ds);
    let x = encoder.encode_dataset(ds);
    let labels = ds.labels();
    let (n, d, k) = (x.n_rows(), encoder.width(), ds.n_classes());
    let mut weights = FeatureMatrix::from_raw(d + 1, vec![0.0; (d + 1) * k]);
    let mut probs = vec![0.0; k];
    let mut grads = FeatureMatrix::from_raw(d + 1, vec![0.0; (d + 1) * k]);
    for _ in 0..params.max_iter {
        grads.as_mut_slice().fill(0.0);
        for (xi, &yi) in x.rows().zip(labels) {
            for (o, w) in probs.iter_mut().zip(weights.rows()) {
                let mut z = w[d];
                for (wj, xj) in w[..d].iter().zip(xi) {
                    z += wj * xj;
                }
                *o = z;
            }
            let max = probs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for o in probs.iter_mut() {
                *o = (*o - max).exp();
                sum += *o;
            }
            for o in probs.iter_mut() {
                *o /= sum;
            }
            for (c, &p) in probs.iter().enumerate() {
                let g = grads.row_mut(c);
                let err = p - f64::from(c as u32 == yi);
                for (gj, &xj) in g.iter_mut().zip(xi) {
                    *gj += err * xj;
                }
                g[d] += err;
            }
        }
        let inv_n = 1.0 / n as f64;
        let mut max_grad: f64 = 0.0;
        for c in 0..k {
            let (w, g) = (weights.row_mut(c), grads.row(c));
            for (j, (wj, &gj)) in w.iter_mut().zip(g).enumerate() {
                let reg = if j < d { params.l2 * *wj } else { 0.0 };
                let step = gj * inv_n + reg;
                max_grad = max_grad.max(step.abs());
                *wj -= params.learning_rate * step;
            }
        }
        if max_grad < params.tol {
            break;
        }
    }
    // The scoring pass of the optimized leg, scalar-style: encode once,
    // softmax-argmax every row.
    let x = encoder.encode_dataset(ds);
    let mut h = FnvHasher::new();
    for xi in x.rows() {
        for (o, w) in probs.iter_mut().zip(weights.rows()) {
            let mut z = w[d];
            for (wj, xj) in w[..d].iter().zip(xi) {
                z += wj * xj;
            }
            *o = z;
        }
        let max = probs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for o in probs.iter_mut() {
            *o = (*o - max).exp();
            sum += *o;
        }
        for o in probs.iter_mut() {
            *o /= sum;
        }
        let mut best = 0usize;
        for (c, &p) in probs.iter().enumerate().skip(1) {
            if p > probs[best] {
                best = c;
            }
        }
        (best as u32).hash(&mut h);
    }
    h.finish()
}

fn main() {
    // `FROTE_THREADS` outranks `set_threads` in the resolver, which would
    // pin both sides of every comparison; this binary owns its thread count.
    // Likewise `FROTE_SHARD_ROWS` outranks `set_shard_rows`, and the
    // sharded probes below own their shard size (their unsharded twins
    // must really run unsharded for the digest cross-checks to mean
    // anything), so the binary clears it too.
    std::env::remove_var("FROTE_THREADS");
    std::env::remove_var("FROTE_SHARD_ROWS");
    let opts = CliOptions::from_env();
    // Interior counters feed the record's `metrics` section. Recording is
    // observation-only — every digest asserted below is pinned by the
    // determinism contract whether the registry is on or off.
    frote_obs::set_metrics_enabled(true);
    let threads = opts.threads.unwrap_or(4);
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("perfsmoke: serial vs {threads} threads (host parallelism {host})");

    let mut benches = Vec::new();

    // 1. Ball-tree batch kNN: build once, time the query fan-out.
    let mut rng = StdRng::seed_from_u64(11);
    let points: Vec<Vec<f64>> =
        (0..6000).map(|_| (0..8).map(|_| rng.random_range(-10.0..10.0)).collect()).collect();
    let queries: Vec<Vec<f64>> =
        (0..600).map(|_| (0..8).map(|_| rng.random_range(-10.0..10.0)).collect()).collect();
    let queries = frote_data::FeatureMatrix::from_rows(queries);
    let tree = BallTree::build(points.into());
    benches.push(record("knn_batch_query", threads, 3, || {
        let hits = tree.k_nearest_batch(&queries, 10);
        hash_of(&hits.iter().flat_map(|h| h.iter().map(|n| n.index as u64)).collect::<Vec<_>>())
    }));

    // 2. SMOTE generation on an all-numeric synthetic dataset.
    let ds = DatasetKind::WineQuality.generate(&SynthConfig { n_rows: 1500, ..Default::default() });
    let minority = (0..ds.n_classes() as u32)
        .min_by_key(|&c| ds.indices_of_class(c).len())
        .expect("has classes");
    let smote = Smote::new(SmoteParams::default());
    let smote_probe = || {
        let mut rng = StdRng::seed_from_u64(7);
        let out = smote.generate(&ds, minority, 1500, &mut rng).expect("generation succeeds");
        hash_of(&format!("{out:?}"))
    };
    let smote_rec = record("smote_generation", threads, 3, smote_probe);
    let smote_fnv = smote_rec.output_fnv.clone();
    benches.push(smote_rec);

    // 3. Rule-coverage scan over a wide synthetic dataset: the compiled
    // columnar engine (`frote_rules::engine`, what `Clause::coverage` now
    // runs on) against the row-at-a-time interpreter it replaced. Both
    // scans must return the same rows, so the digests double as a
    // correctness cross-check.
    let mut mode_comparisons = Vec::new();
    let big = DatasetKind::Adult.generate(&SynthConfig { n_rows: 40_000, ..Default::default() });
    let clause = Clause::new(vec![
        Predicate::new(0, Op::Ge, Value::Num(30.0)),
        Predicate::new(0, Op::Lt, Value::Num(60.0)),
    ]);
    let rule_cov = record("rule_coverage", threads, 5, || hash_of(&clause.coverage(&big)));
    frote_par::set_threads(1);
    let (interp_cov_ms, interp_cov_digest) =
        time_best(5, || hash_of(&clause.coverage_interpreted(&big)));
    assert_eq!(
        format!("{interp_cov_digest:016x}"),
        rule_cov.output_fnv,
        "compiled and interpreted rule-coverage scans diverged"
    );
    mode_comparisons.push(ModeComparison::new("rule_coverage", interp_cov_ms, rule_cov.serial_ms));
    benches.push(rule_cov);

    // 4. Encode throughput: the whole Adult table into one FeatureMatrix.
    let encoder = Encoder::fit(&big);
    benches.push(record("encode_dataset", threads, 5, || {
        let m = encoder.encode_dataset(&big);
        hash_f64s(m.as_slice())
    }));

    // 5. Batch predict_dataset throughput per model family (train once at a
    // pinned thread count so every timing scores the same model).
    let scoring = DatasetKind::Adult.generate(&SynthConfig { n_rows: 8000, ..Default::default() });
    frote_par::set_threads(1);
    let rf = RandomForestTrainer::new(ForestParams { n_trees: 20, ..Default::default() }, 42)
        .train(&scoring);
    let lgbm = GbdtTrainer::new(GbdtParams { n_rounds: 10, ..Default::default() }).train(&scoring);
    let lr = LogisticRegressionTrainer::default().train(&scoring);
    for (name, model) in
        [("predict_dataset_rf", &rf), ("predict_dataset_lgbm", &lgbm), ("predict_dataset_lr", &lr)]
    {
        benches.push(record(name, threads, 3, || hash_of(&model.predict_dataset(&scoring))));
    }

    // 6. Tree training in exact vs histogram split mode, on a numeric-heavy
    // table where the exact search's per-node sorts dominate. The serial
    // legs feed the mode comparison; the serial/parallel pair of each mode
    // additionally pins the histogram engine's thread-determinism.
    let fit_ds =
        DatasetKind::WineQuality.generate(&SynthConfig { n_rows: 6000, ..Default::default() });
    let dt_fit = |mode: SplitMode| {
        let params = TreeParams { max_depth: 8, split_mode: mode, ..Default::default() };
        let model = DecisionTreeTrainer::new(params, 42).train(&fit_ds);
        hash_of(&model.predict_dataset(&fit_ds))
    };
    let gbdt_fit = |mode: SplitMode| {
        let params = GbdtParams { n_rounds: 6, split_mode: mode, ..Default::default() };
        let model: Box<dyn frote_ml::Classifier> = Box::new(Gbdt::fit(&fit_ds, &params));
        hash_of(&model.predict_dataset(&fit_ds))
    };
    let dt_exact = record("dt_fit_exact", threads, 2, || dt_fit(SplitMode::Exact));
    let dt_hist = record("dt_fit_hist", threads, 2, || dt_fit(SplitMode::histogram()));
    mode_comparisons.push(ModeComparison::new("dt_fit", dt_exact.serial_ms, dt_hist.serial_ms));
    let (dt_hist_fnv, dt_hist_serial_ms) = (dt_hist.output_fnv.clone(), dt_hist.serial_ms);
    benches.push(dt_exact);
    benches.push(dt_hist);
    let gbdt_exact = record("gbdt_fit_exact", threads, 2, || gbdt_fit(SplitMode::Exact));
    let gbdt_hist = record("gbdt_fit_hist", threads, 2, || gbdt_fit(SplitMode::histogram()));
    mode_comparisons.push(ModeComparison::new(
        "gbdt_fit",
        gbdt_exact.serial_ms,
        gbdt_hist.serial_ms,
    ));
    benches.push(gbdt_exact);
    benches.push(gbdt_hist);

    // 6b. The PR 8 sharded data plane. `shard_hist_fit`: the same histogram
    // DT fit with the rows chunked into 64-row shards — per-shard class
    // histograms merged in shard order. Integer counts are exact in f64,
    // so the fit must reproduce the unsharded model's predictions bit for
    // bit; the digest cross-check enforces it. `smote_sharded`: the SMOTE
    // probe again with every kNN scan decomposed into per-shard local
    // top-k scans merged globally — same bit-identity contract.
    frote_data::sharded::set_shard_rows(64);
    let shard_hist = record("shard_hist_fit", threads, 2, || dt_fit(SplitMode::histogram()));
    let smote_sharded = record("smote_sharded", threads, 3, smote_probe);
    frote_data::sharded::clear_shard_rows_override();
    assert_eq!(shard_hist.output_fnv, dt_hist_fnv, "sharded and unsharded histogram fits diverged");
    assert_eq!(
        smote_sharded.output_fnv, smote_fnv,
        "sharded and unsharded SMOTE generation diverged"
    );
    mode_comparisons.push(ModeComparison::new(
        "shard_hist_fit",
        dt_hist_serial_ms,
        shard_hist.serial_ms,
    ));
    benches.push(shard_hist);
    benches.push(smote_sharded);

    // 6c. Dataset-size scaling: the histogram DT fit at the three
    // `frote_eval::Scale` WineQuality row counts (600 / 2000 / 4898),
    // unsharded vs 64-row shards, timed at the parallel thread count. The
    // curve documents that sharding's merge overhead stays flat relative
    // to dataset size; `identical` is asserted at every point.
    let mut scaling = Vec::new();
    for scale in [Scale::Smoke, Scale::Medium, Scale::Paper] {
        let kind = DatasetKind::WineQuality;
        let n_rows = match scale.n_rows(kind) {
            0 => kind.paper_n_rows(),
            n => n,
        };
        let scale_ds = kind.generate(&SynthConfig { n_rows, ..Default::default() });
        let fit = || {
            let params = TreeParams {
                max_depth: 8,
                split_mode: SplitMode::histogram(),
                ..Default::default()
            };
            let model = DecisionTreeTrainer::new(params, 42).train(&scale_ds);
            hash_of(&model.predict_dataset(&scale_ds))
        };
        frote_par::set_threads(threads);
        let (unsharded_ms, unsharded_digest) = time_best(2, fit);
        frote_data::sharded::set_shard_rows(64);
        let (sharded_ms, sharded_digest) = time_best(2, fit);
        frote_data::sharded::clear_shard_rows_override();
        frote_par::set_threads(1);
        assert_eq!(
            sharded_digest,
            unsharded_digest,
            "sharded fit diverged at scale {} ({n_rows} rows)",
            scale.name()
        );
        scaling.push(ScalingPoint {
            scale: scale.name().to_string(),
            n_rows,
            unsharded_ms,
            sharded_ms,
            identical: sharded_digest == unsharded_digest,
        });
    }

    // 7. The PR 5 kernel layer. `lr_fit`: the blocked/kernel logistic-
    // regression fit, gated on its prediction digest and compared against
    // the pre-kernel scalar gradient loop (reimplemented below as the
    // measured baseline). The two arrange their f64 sums differently
    // (blocked fixed-order vs one sequential chain), so only timings are
    // compared here — the kernel path's own thread-determinism is what the
    // serial/parallel digest pair pins.
    let lr_params = LogRegParams { max_iter: 60, ..Default::default() };
    let lr_fit = record("lr_fit", threads, 3, || {
        let model = LogisticRegression::fit(&fit_ds, &lr_params);
        hash_of(&model.predict_dataset(&fit_ds))
    });
    frote_par::set_threads(1);
    let (naive_lr_ms, _) = time_best(3, || naive_scalar_lr_fit(&fit_ds, &lr_params));
    mode_comparisons.push(ModeComparison::new("lr_fit", naive_lr_ms, lr_fit.serial_ms));
    benches.push(lr_fit);

    // 8. `rule_quality_scan`: whole-set rule quality (support, confidence,
    // recall, lift) for a multi-rule WineQuality feedback set. Every
    // coverage scan inside `assess_all` runs on the compiled engine; the
    // interpreted row-at-a-time twin is the measured baseline. Identical
    // metrics are required, so the digests double as a correctness
    // cross-check.
    let wine_frs = FeedbackRuleSet::new(vec![
        // High-alcohol, low-volatile-acidity wines score well...
        FeedbackRule::deterministic(
            Clause::new(vec![
                Predicate::new(10, Op::Ge, Value::Num(12.6)),
                Predicate::new(1, Op::Lt, Value::Num(0.25)),
            ]),
            5,
        ),
        FeedbackRule::deterministic(
            Clause::new(vec![
                Predicate::new(10, Op::Ge, Value::Num(11.5)),
                Predicate::new(7, Op::Lt, Value::Num(0.994)),
            ]),
            4,
        ),
        // ...while high volatile acidity and residual sugar drag scores down.
        FeedbackRule::deterministic(
            Clause::new(vec![
                Predicate::new(1, Op::Gt, Value::Num(0.35)),
                Predicate::new(2, Op::Lt, Value::Num(0.3)),
            ]),
            1,
        ),
        FeedbackRule::deterministic(
            Clause::new(vec![
                Predicate::new(3, Op::Gt, Value::Num(9.0)),
                Predicate::new(5, Op::Le, Value::Num(40.0)),
            ]),
            2,
        ),
    ]);
    wine_frs.validate(fit_ds.schema()).expect("wine rules are valid");
    let hash_quality = |qs: &[RuleQuality]| {
        let mut h = FnvHasher::new();
        for q in qs {
            (q.support as u64).hash(&mut h);
            q.coverage.to_bits().hash(&mut h);
            q.confidence.to_bits().hash(&mut h);
            q.recall.to_bits().hash(&mut h);
            q.lift.to_bits().hash(&mut h);
        }
        h.finish()
    };
    let quality_scan = record("rule_quality_scan", threads, 5, || {
        hash_quality(&assess_all(wine_frs.rules(), &fit_ds))
    });
    frote_par::set_threads(1);
    let (interp_q_ms, interp_q_digest) = time_best(5, || {
        let qs: Vec<RuleQuality> =
            wine_frs.rules().iter().map(|r| assess_interpreted(r, &fit_ds)).collect();
        hash_quality(&qs)
    });
    assert_eq!(
        format!("{interp_q_digest:016x}"),
        quality_scan.output_fnv,
        "compiled and interpreted rule-quality scans diverged"
    );
    mode_comparisons.push(ModeComparison::new(
        "rule_quality_scan",
        interp_q_ms,
        quality_scan.serial_ms,
    ));
    benches.push(quality_scan);

    // 9. `knn_batch`: brute-force mixed-distance kNN over the columnar
    // store — the block distance kernel under a parallel query fan-out.
    let knn_rows: Vec<usize> = (0..scoring.n_rows()).step_by(16).collect();
    let knn_cands: Vec<usize> = (0..scoring.n_rows()).collect();
    let dist = MixedDistance::fit(&scoring, MixedMetric::SmoteNc);
    benches.push(record("knn_batch", threads, 2, || {
        let hits = k_nearest_of_rows(&scoring, &knn_rows, &knn_cands, 10, &dist);
        let mut h = FnvHasher::new();
        for n in hits.iter().flatten() {
            (n.index as u64).hash(&mut h);
            n.distance.to_bits().hash(&mut h);
        }
        h.finish()
    }));

    // 10. `rf_hist_subsample`: per-node candidate-feature class histograms
    // for forest-like nodes (√F sampled features, 500-row nodes — the
    // deep-node regime where the full buffer's zero/reduce cost dominates
    // the accumulate) on the wide Adult table, compact layout vs the
    // pre-compact full-buffer baseline. Both layouts must produce identical
    // counts, so the digests double as a correctness cross-check.
    let binner = Binner::fit(&scoring, 64);
    let codes = binner.bin_dataset(&scoring);
    let mut node_rng = StdRng::seed_from_u64(99);
    let m = (scoring.n_features() as f64).sqrt().round().max(1.0) as usize;
    let nodes: Vec<(Vec<usize>, Vec<usize>)> = (0..400)
        .map(|_| {
            let indices: Vec<usize> =
                (0..500).map(|_| node_rng.random_range(0..scoring.n_rows())).collect();
            let mut features: Vec<usize> = (0..scoring.n_features()).collect();
            features.shuffle(&mut node_rng);
            features.truncate(m);
            (indices, features)
        })
        .collect();
    let hist_nodes = |compact: bool| {
        let mut h = FnvHasher::new();
        for (indices, features) in &nodes {
            let hist = subsample_hist_probe(
                &binner,
                &codes,
                scoring.labels(),
                indices,
                features,
                scoring.n_classes(),
                compact,
            );
            for v in &hist {
                v.to_bits().hash(&mut h);
            }
        }
        h.finish()
    };
    let rf_hist = record("rf_hist_subsample", threads, 3, || hist_nodes(true));
    frote_par::set_threads(1);
    let (full_ms, full_digest) = time_best(3, || hist_nodes(false));
    assert_eq!(
        format!("{full_digest:016x}"),
        rf_hist.output_fnv,
        "compact and full-layout candidate histograms diverged"
    );
    mode_comparisons.push(ModeComparison::new("rf_hist_subsample", full_ms, rf_hist.serial_ms));
    benches.push(rf_hist);

    // 11. One FROTE iteration end to end (select → generate → retrain).
    let car = DatasetKind::Car.generate(&SynthConfig { n_rows: 400, ..Default::default() });
    let rule = parse_rule("safety = low AND buying = low => acc", car.schema()).expect("rule");
    let frs = FeedbackRuleSet::new(vec![rule]);
    let trainer = RandomForestTrainer::new(ForestParams { n_trees: 16, ..Default::default() }, 42);
    let config =
        FroteConfig { iteration_limit: 1, instances_per_iteration: Some(40), ..Default::default() };
    benches.push(record("frote_iteration", threads, 2, || {
        let mut rng = StdRng::seed_from_u64(42);
        let out = Frote::new(config).run(&car, &trainer, &frs, &mut rng).expect("frote runs");
        hash_of(&format!("{:?}{:?}", out.dataset, out.report))
    }));

    // 12. Three FROTE iterations with the online-proxy selector under
    // histogram-mode RF retrains on the categorical Car table — the
    // configuration that drives all three incremental caches (encoded,
    // binned, rule-mask) through their *append* paths (categorical
    // encoder/binner fits don't move when rows are appended, so syncs
    // stay incremental instead of rebuilding), giving the `metrics`
    // section below nonzero `*.sync.append` counters for `benchdiff`
    // to gate.
    let hist_trainer = RandomForestTrainer::new(
        ForestParams {
            n_trees: 8,
            tree: TreeParams {
                max_depth: 6,
                split_mode: SplitMode::histogram(),
                ..Default::default()
            },
        },
        42,
    );
    let online_config = FroteConfig {
        iteration_limit: 3,
        instances_per_iteration: Some(30),
        selection: SelectionStrategy::OnlineProxy,
        ..Default::default()
    };
    benches.push(record("frote_loop_online_hist", threads, 2, || {
        let mut rng = StdRng::seed_from_u64(42);
        let out =
            Frote::new(online_config).run(&car, &hist_trainer, &frs, &mut rng).expect("frote runs");
        hash_of(&format!("{:?}{:?}", out.dataset, out.report))
    }));

    // 13. The PR 9 serving plane: an in-process server on an ephemeral
    // loopback port, scored over the wire through the micro-batcher.
    // `serve_latency` measures sequential single-client request latency;
    // the sweep drives 4 concurrent clients at growing rows-per-request so
    // batches actually aggregate. Every probe's responses are collected in
    // request order and digest-asserted bit-identical to a direct
    // `predict_rows` call on the same rows — the wire, the boundary
    // validation, and the batcher must be prediction-transparent.
    frote_par::set_threads(threads);
    let workload = frote_serve::workload::by_name("wine-rf").expect("cataloged workload");
    let serve_ds = workload.dataset();
    let direct_model = workload.trainer().train(&serve_ds);
    let serve = {
        let guard = frote_serve::RowGuard::not_null(serve_ds.schema()).expect("guard compiles");
        let snapshot = frote_serve::Snapshot::fit(&*workload.trainer(), &serve_ds, guard);
        let registry = std::sync::Arc::new(frote_serve::ModelRegistry::new());
        registry.register(workload.name(), snapshot, None);
        let server = std::sync::Arc::new(
            frote_serve::Server::bind(&frote_serve::ServeConfig::default(), registry)
                .expect("bind loopback"),
        );
        let accept = {
            let server = std::sync::Arc::clone(&server);
            std::thread::spawn(move || server.run())
        };
        let addr = server.local_addr().to_string();

        let run_probe = |name: &str, requests: usize, rows: usize, concurrency: usize| {
            let (tx, rx) = std::sync::mpsc::channel();
            std::thread::scope(|scope| {
                for worker in 0..concurrency {
                    let tx = tx.clone();
                    let addr = addr.clone();
                    let serve_ds = &serve_ds;
                    scope.spawn(move || {
                        let mut client =
                            frote_serve::Client::connect(&addr).expect("connect probe client");
                        let mut i = worker;
                        while i < requests {
                            let body = workload.probe_body(serve_ds, i * rows, rows);
                            let start = Instant::now();
                            let (_generation, labels) = client
                                .score(workload.name(), &body)
                                .expect("score request succeeds");
                            let ms = start.elapsed().as_secs_f64() * 1e3;
                            tx.send((i, ms, labels)).expect("collector alive");
                            i += concurrency;
                        }
                    });
                }
            });
            drop(tx);
            let mut slots: Vec<Option<(f64, Vec<String>)>> = (0..requests).map(|_| None).collect();
            for (i, ms, labels) in rx {
                slots[i] = Some((ms, labels));
            }
            let responses: Vec<(f64, Vec<String>)> =
                slots.into_iter().map(|s| s.expect("every request answered")).collect();
            let mut wire = FnvHasher::new();
            let mut direct = FnvHasher::new();
            for (i, (_, labels)) in responses.iter().enumerate() {
                let indices: Vec<usize> =
                    (0..rows).map(|k| (i * rows + k) % serve_ds.n_rows()).collect();
                for &p in &direct_model.predict_rows(&serve_ds, &indices) {
                    serve_ds.schema().class_name(p).hash(&mut direct);
                }
                for label in labels {
                    label.hash(&mut wire);
                }
            }
            let matches_direct = wire.finish() == direct.finish();
            assert!(matches_direct, "{name}: wire responses diverged from direct predict_rows");
            let mut latencies: Vec<f64> = responses.iter().map(|(ms, _)| *ms).collect();
            latencies.sort_by(f64::total_cmp);
            let pct = |p: f64| {
                let k = ((latencies.len() as f64 - 1.0) * p).round() as usize;
                latencies[k]
            };
            ServeRecord {
                name: name.to_string(),
                requests,
                rows_per_request: rows,
                concurrency,
                p50_ms: pct(0.50),
                p99_ms: pct(0.99),
                matches_direct,
                response_fnv: format!("{:016x}", wire.finish()),
                shed_rate: None,
            }
        };

        let mut serve = vec![run_probe("serve_latency", 120, 8, 1)];
        for rows in [1usize, 16, 128] {
            serve.push(run_probe(&format!("serve_sweep_rows{rows}"), 40, rows, 4));
        }
        server.trigger_shutdown();
        accept.join().expect("accept loop joins");

        // 14. The PR 10 overload probe: a deliberately tiny server (batch
        // queue depth 2) with an injected 25ms drain delay, driven by 8
        // clients at once — admission control must shed with structured
        // `503` + `Retry-After`, and clients retry each shed request until
        // it succeeds, so the response set (and its digest) is exactly the
        // fault-free one: the shed path costs retries, never answers.
        serve.push(run_overload_probe(&workload, &serve_ds, &*direct_model));
        serve
    };
    frote_par::set_threads(1);

    for b in &benches {
        println!(
            "  {:<22} serial {:>8.2} ms | {} threads {:>8.2} ms | speedup {:>5.2}x | identical {} | fnv {}",
            b.name, b.serial_ms, threads, b.parallel_ms, b.speedup, b.identical, b.output_fnv
        );
        assert!(b.identical, "{}: serial and parallel outputs diverged", b.name);
    }
    for m in &mode_comparisons {
        println!(
            "  {:<22} baseline {:>8.2} ms | optimized {:>8.2} ms | speedup {:>5.2}x",
            m.name, m.baseline_ms, m.optimized_ms, m.speedup
        );
    }
    for p in &scaling {
        println!(
            "  scaling {:<8} {:>6} rows | unsharded {:>8.2} ms | sharded {:>8.2} ms | identical {}",
            p.scale, p.n_rows, p.unsharded_ms, p.sharded_ms, p.identical
        );
    }
    for s in &serve {
        println!(
            "  {:<22} {:>3} reqs x {:>3} rows @ c{} | p50 {:>7.2} ms | p99 {:>7.2} ms | direct-match {} | fnv {}",
            s.name, s.requests, s.rows_per_request, s.concurrency, s.p50_ms, s.p99_ms,
            s.matches_direct, s.response_fnv
        );
    }

    let report = PerfSmoke {
        host_parallelism: host,
        threads_compared: vec![1, threads],
        benches,
        mode_comparisons,
        scaling,
        serve,
        metrics: frote_obs::snapshot(),
        note: "speedups are recorded, not gated; single-core hosts report ~1x parallel speedups"
            .to_string(),
    };
    // `--out` wins, then `BENCH_FILE`/committed default at the repo root.
    let path = opts.out.unwrap_or_else(|| {
        format!("{}/../../{}", env!("CARGO_MANIFEST_DIR"), default_bench_file())
    });
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    std::fs::write(&path, json + "\n").expect("write the bench record");
    println!("wrote {path}");
}
