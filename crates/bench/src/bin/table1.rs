//! Regenerates Table 1: dataset properties.

use frote_bench::CliOptions;
use frote_eval::experiments::table1;

fn main() {
    let opts = CliOptions::from_env();
    print!("{}", table1::run(opts.scale));
    opts.emit_metrics();
}
