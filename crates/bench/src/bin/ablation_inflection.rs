//! Ablation for the paper's §6 discussion: "there is generally an inflection
//! point in terms of the number of data points added where the cost to
//! overall model performance starts to outweigh the improvement in MRA."
//!
//! Sweeps the oversampling fraction `q` and reports MRA, outside-coverage
//! F1, and J̄ on a held-out test set — the F1 column eventually decays while
//! MRA saturates, locating the inflection.

use frote::objective::paper_j;
use frote::{Frote, FroteConfig, ModStrategy};
use frote_bench::CliOptions;
use frote_data::synth::DatasetKind;
use frote_eval::render;
use frote_eval::runner::{prepare_run, RunSpec};
use frote_eval::setup::prepare;
use frote_eval::ModelKind;

fn main() {
    let opts = CliOptions::from_env();
    let setup = prepare(DatasetKind::Car, opts.scale, 42);
    // LGBM responds to small batches (depth-3 forests often reject whole
    // batches outright), and a generous per-iteration count lets large q
    // actually spend its quota so the inflection becomes visible.
    let spec = RunSpec { tcf: 0.05, ..RunSpec::new(ModelKind::Lgbm, opts.scale) };
    let eta = (setup.dataset.n_rows() / 15).max(20);
    let mut rows = Vec::new();
    for q in [0.1, 0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut mras = Vec::new();
        let mut f1s = Vec::new();
        let mut js = Vec::new();
        let mut added = Vec::new();
        for run in 0..opts.scale.runs() {
            let Some(mut p) = prepare_run(&setup, &spec, 80_000 + run as u64 * 7) else {
                continue;
            };
            let modified = ModStrategy::Relabel.apply(&p.train, &p.frs);
            let trainer = spec.model.trainer(opts.scale);
            let config = FroteConfig {
                oversampling_fraction: q,
                iteration_limit: opts.scale.iteration_limit().max(30),
                instances_per_iteration: Some(eta),
                mod_strategy: ModStrategy::None,
                ..Default::default()
            };
            let Ok(out) = Frote::new(config).run(&modified, trainer.as_ref(), &p.frs, &mut p.rng)
            else {
                continue;
            };
            let v = paper_j(out.model.as_ref(), &p.test, &p.frs);
            mras.push(v.mra);
            f1s.push(v.f1);
            js.push(v.j);
            added.push(out.report.instances_added as f64 / p.train.n_rows() as f64);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        rows.push(vec![
            format!("{q:.2}"),
            format!("{:.3}", mean(&added)),
            format!("{:.3}", mean(&mras)),
            format!("{:.3}", mean(&f1s)),
            format!("{:.3}", mean(&js)),
        ]);
    }
    println!(
        "{}",
        render::table(
            "Ablation: the §6 inflection point — sweep of the oversampling fraction q (Car, LGBM, mod=none)",
            &["q", "added/|D|", "MRA", "F1 outside", "J̄"],
            &rows,
        )
    );
    opts.emit_metrics();
}
