//! Regenerates the supplement's Figure 9: augmentation progress (held-out
//! test J̄ vs number of instances added) per model and tcf.

use frote_bench::CliOptions;
use frote_data::synth::DatasetKind;
use frote_eval::experiments::progress;
use frote_eval::Scale;

fn main() {
    let opts = CliOptions::from_env();
    // The paper plots Adult; at smoke scale Car gives the same shapes fast.
    let kind = match opts.scale {
        Scale::Paper | Scale::Medium => DatasetKind::Adult,
        Scale::Smoke => DatasetKind::Car,
    };
    let tcf_grid: &[f64] = match opts.scale {
        Scale::Paper | Scale::Medium => &[0.0, 0.1, 0.2, 0.4],
        Scale::Smoke => &[0.0, 0.2],
    };
    let curves = progress::run_dataset(kind, opts.scale, tcf_grid);
    print!("{}", progress::render_curves(kind, &curves));
    opts.emit_metrics();
}
