//! Regenerates the supplement's Figure 10: rule-set-size sweeps on the Car,
//! Contraceptive, Nursery and Splice datasets.

use frote_bench::CliOptions;
use frote_data::synth::DatasetKind;
use frote_eval::experiments::rule_count;

fn main() {
    let opts = CliOptions::from_env();
    for kind in
        [DatasetKind::Car, DatasetKind::Contraceptive, DatasetKind::Nursery, DatasetKind::Splice]
    {
        let cells = rule_count::run_dataset(kind, opts.scale, &rule_count::SIZE_GRID);
        println!("{}", rule_count::render_cells(kind, &cells));
    }
    opts.emit_metrics();
}
