//! Regenerates Table 3: random vs IP base-instance selection (ΔJ̄).

use frote_bench::CliOptions;
use frote_data::synth::DatasetKind;
use frote_eval::experiments::selection_cmp;
use frote_eval::Scale;

fn main() {
    let opts = CliOptions::from_env();
    let kinds: Vec<DatasetKind> = if opts.all_datasets || opts.scale == Scale::Paper {
        DatasetKind::ALL.to_vec()
    } else {
        vec![DatasetKind::Car, DatasetKind::Mushroom]
    };
    let cells = selection_cmp::run_datasets(&kinds, opts.scale);
    if opts.json {
        use frote_eval::export::{CellRecord, ExperimentRecord};
        let records: Vec<CellRecord> = cells
            .iter()
            .map(|c| {
                CellRecord::new()
                    .dim("dataset", c.kind.name())
                    .dim("model", c.model.name())
                    .dim("strategy", c.strategy.name())
                    .summary("delta_j", c.delta_j)
                    .summary("delta_mra", c.delta_mra)
                    .summary("delta_f1", c.delta_f1)
                    .summary("added_fraction", c.added_fraction)
            })
            .collect();
        println!("{}", ExperimentRecord::new("table3", opts.scale, records).to_json());
    } else {
        println!("{}", selection_cmp::render_table3(&kinds, &cells));
    }
    opts.emit_metrics();
}
