//! `loadgen`: deterministic load driver for the serving plane.
//!
//! ```text
//! loadgen --addr HOST:PORT [--workload NAME] [--requests N]
//!         [--rows-per-req R] [--concurrency C] [--wait-secs S]
//!         [--malformed M] [--publish-every P] [--backoff]
//! ```
//!
//! Drives a running `frote-serve` instance with a fixed, seed-free request
//! schedule: request `i` carries rows `i*R .. i*R+R` (wrapping) of the
//! workload's training table, rendered in the wire row format. Because the
//! workload names a deterministic dataset + fixed-seed trainer, loadgen
//! rebuilds the *same* model locally and asserts every response — and the
//! FNV digest over all responses in request order — bit-identical to
//! direct `predict_rows` calls. `--publish-every P` interleaves rule-less
//! publishes (a retrain on the same dataset produces the same model, so
//! predictions must stay identical across generations while the
//! generation counter advances). `--malformed M` follows up with `M`
//! malformed score requests, asserting each is rejected with a structured
//! `400` and that the connection keeps serving afterwards — boundary
//! validation must never kill a worker. `--backoff` drives the requests
//! through the client retry contract (capped exponential backoff with
//! deterministic jitter, reconnect on drop, `Retry-After` honored) and
//! additionally tolerates-and-retries transient `500 injected fault`
//! responses — the mode the CI chaos-smoke job runs against a server with
//! `FROTE_FAULTS` armed. The response digest is computed over the locally
//! predicted expected labels, so it is identical with and without faults.
//!
//! Exit status: 0 when every assertion held, 1 otherwise — the CI
//! serve-smoke job's pass/fail.

use std::hash::{Hash, Hasher};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use frote_bench::benchgate::FnvHasher;
use frote_serve::client::parse_score_body;
use frote_serve::workload::by_name;
use frote_serve::{Backoff, Client};

struct Options {
    addr: String,
    workload: String,
    requests: usize,
    rows_per_req: usize,
    concurrency: usize,
    wait_secs: u64,
    malformed: usize,
    publish_every: usize,
    backoff: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen --addr HOST:PORT [--workload NAME] [--requests N] [--rows-per-req R] \
         [--concurrency C] [--wait-secs S] [--malformed M] [--publish-every P] [--backoff]"
    );
    std::process::exit(2)
}

fn parse_options() -> Options {
    let mut opts = Options {
        addr: String::new(),
        workload: "wine-rf".to_string(),
        requests: 200,
        rows_per_req: 8,
        concurrency: 4,
        wait_secs: 10,
        malformed: 0,
        publish_every: 0,
        backoff: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr"),
            "--workload" => opts.workload = value("--workload"),
            "--requests" => opts.requests = value("--requests").parse().unwrap_or_else(|_| usage()),
            "--rows-per-req" => {
                opts.rows_per_req = value("--rows-per-req").parse().unwrap_or_else(|_| usage());
            }
            "--concurrency" => {
                opts.concurrency = value("--concurrency").parse().unwrap_or_else(|_| usage());
            }
            "--wait-secs" => {
                opts.wait_secs = value("--wait-secs").parse().unwrap_or_else(|_| usage());
            }
            "--malformed" => {
                opts.malformed = value("--malformed").parse().unwrap_or_else(|_| usage());
            }
            "--publish-every" => {
                opts.publish_every = value("--publish-every").parse().unwrap_or_else(|_| usage());
            }
            "--backoff" => opts.backoff = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if opts.addr.is_empty() || opts.requests == 0 || opts.rows_per_req == 0 || opts.concurrency == 0
    {
        usage()
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_options();
    let workload = match by_name(&opts.workload) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    // The local twin of the server's model: same dataset recipe, same
    // fixed-seed trainer. Its predictions are the ground truth every
    // response is asserted against.
    let ds = workload.dataset();
    let model = workload.trainer().train(&ds);
    let expected_labels = |request: usize| -> Vec<String> {
        let indices: Vec<usize> = (0..opts.rows_per_req)
            .map(|k| (request * opts.rows_per_req + k) % ds.n_rows())
            .collect();
        model
            .predict_rows(&ds, &indices)
            .into_iter()
            .map(|c| ds.schema().class_name(c).to_string())
            .collect()
    };

    if let Err(e) = Client::connect_with_retry(&opts.addr, Duration::from_secs(opts.wait_secs)) {
        eprintln!("server at {} not ready: {e}", opts.addr);
        return ExitCode::FAILURE;
    }

    let start = Instant::now();
    let mut failures = 0usize;
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for worker in 0..opts.concurrency {
            let opts = &opts;
            let ds = &ds;
            let expected_labels = &expected_labels;
            workers.push(scope.spawn(move || -> Result<(), String> {
                let mut client = Client::connect(&opts.addr)
                    .map_err(|e| format!("worker {worker}: connect: {e}"))?;
                let mut backoff = opts.backoff.then(|| {
                    Backoff::new(
                        0xB0FF ^ worker as u64,
                        Duration::from_millis(5),
                        Duration::from_millis(500),
                    )
                });
                let mut last_generation = 0u64;
                let mut i = worker;
                while i < opts.requests {
                    let body = workload.probe_body(ds, i * opts.rows_per_req, opts.rows_per_req);
                    let (generation, labels) =
                        score_with_policy(&mut client, backoff.as_mut(), workload.name(), &body)
                            .map_err(|e| format!("request {i}: {e}"))?;
                    if labels != expected_labels(i) {
                        return Err(format!(
                            "request {i}: generation {generation} response diverged from the \
                             local model"
                        ));
                    }
                    if generation < last_generation {
                        return Err(format!(
                            "request {i}: generation went backwards ({last_generation} -> \
                             {generation})"
                        ));
                    }
                    last_generation = generation;
                    // Rule-less publishes from worker 0: the retrain sees
                    // the same dataset, so responses stay identical while
                    // the generation counter advances under load.
                    if worker == 0 && opts.publish_every > 0 && i % opts.publish_every == 0 {
                        match client.publish(workload.name(), None) {
                            Ok(_) => {}
                            Err(e) if opts.backoff => {
                                // Transient under chaos: a failed publish
                                // rolled back server-side and the connection
                                // may be gone — re-dial and keep scoring.
                                eprintln!("loadgen: tolerated publish failure: {e}");
                                let _ = client.reconnect();
                            }
                            Err(e) => return Err(format!("publish after request {i}: {e}")),
                        }
                    }
                    i += opts.concurrency;
                }
                Ok(())
            }));
        }
        for worker in workers {
            if let Err(msg) = worker.join().expect("worker thread joins") {
                eprintln!("loadgen FAILURE: {msg}");
                failures += 1;
            }
        }
    });

    // The malformed phase: structured 400s, and the connection must keep
    // serving well-formed requests afterwards.
    if failures == 0 && opts.malformed > 0 {
        match malformed_phase(&opts, &workload, &ds, &expected_labels) {
            Ok(()) => {}
            Err(msg) => {
                eprintln!("loadgen FAILURE: {msg}");
                failures += 1;
            }
        }
    }

    if failures > 0 {
        return ExitCode::FAILURE;
    }

    // The digest over all asserted responses, in request order — printed
    // for the CI log and for cross-checking against `BENCH_pr9.json`.
    let mut h = FnvHasher::new();
    for i in 0..opts.requests {
        for label in expected_labels(i) {
            label.hash(&mut h);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "loadgen OK: {} requests x {} rows @ c{} in {elapsed:.2}s ({:.0} req/s), {} malformed \
         rejected, digest {:016x}",
        opts.requests,
        opts.rows_per_req,
        opts.concurrency,
        opts.requests as f64 / elapsed,
        opts.malformed,
        h.finish(),
    );
    ExitCode::SUCCESS
}

/// Scores one request. Without a backoff this is [`Client::score`]. With
/// one, the request rides the client retry contract (`503`/`408`/transport
/// → capped-exponential delay + reconnect) and additionally retries
/// transient `500 injected fault` responses — the chaos-smoke contract:
/// every terminal answer is either a correct `200` or a hard error.
fn score_with_policy(
    client: &mut Client,
    backoff: Option<&mut Backoff>,
    model: &str,
    body: &str,
) -> Result<(u64, Vec<String>), String> {
    let Some(backoff) = backoff else {
        return client.score(model, body).map_err(|e| e.to_string());
    };
    let path = format!("/score/{model}");
    for _ in 0..12 {
        let resp = match client.request_with_retry("POST", &path, body, 6, backoff) {
            Ok(resp) => resp,
            Err(_) => {
                let _ = client.reconnect();
                continue;
            }
        };
        match resp.status {
            200 => return parse_score_body(&resp.body).map_err(|e| e.to_string()),
            500 if resp.body.contains("injected fault") => {
                std::thread::sleep(backoff.next_delay(None));
            }
            503 | 408 => std::thread::sleep(backoff.next_delay(None)),
            other => return Err(format!("status {other}: {}", resp.body.trim_end())),
        }
    }
    Err("request kept failing after bounded retries".to_string())
}

/// Sends `opts.malformed` bad score requests round-robin over three shapes
/// (wrong arity, unknown token in the first cell, empty body) and asserts
/// each comes back as a structured `400` with the boundary's message —
/// then proves the same connection still scores well-formed rows.
fn malformed_phase(
    opts: &Options,
    workload: &frote_serve::Workload,
    ds: &frote_data::Dataset,
    expected_labels: &dyn Fn(usize) -> Vec<String>,
) -> Result<(), String> {
    let mut client =
        Client::connect(&opts.addr).map_err(|e| format!("malformed phase: connect: {e}"))?;
    let shapes: [(&str, &str); 3] = [
        ("wrong arity", "1.0\n"),
        ("unknown token", "definitely-not-a-cell\n"),
        ("empty body", "\n"),
    ];
    let mut backoff = Backoff::new(0xBAD, Duration::from_millis(5), Duration::from_millis(500));
    for m in 0..opts.malformed {
        let (what, body) = shapes[m % shapes.len()];
        let path = format!("/score/{}", workload.name());
        let resp = if opts.backoff {
            // Under chaos the transport itself may fail or an injected
            // fault may answer first; retry until the *boundary's* verdict
            // comes through.
            let mut verdict = None;
            for _ in 0..12 {
                match client.request_with_retry("POST", &path, body, 6, &mut backoff) {
                    Ok(r) if r.status == 500 && r.body.contains("injected fault") => {
                        std::thread::sleep(backoff.next_delay(None));
                    }
                    Ok(r) if r.status == 503 || r.status == 408 => {
                        std::thread::sleep(backoff.next_delay(None));
                    }
                    Ok(r) => {
                        verdict = Some(r);
                        break;
                    }
                    Err(_) => {
                        let _ = client.reconnect();
                    }
                }
            }
            verdict.ok_or_else(|| format!("malformed request {m} ({what}): no verdict"))?
        } else {
            client
                .request("POST", &path, body)
                .map_err(|e| format!("malformed request {m} ({what}): {e}"))?
        };
        if resp.status != 400 {
            return Err(format!(
                "malformed request {m} ({what}): expected 400, got {} with body {:?}",
                resp.status, resp.body
            ));
        }
        if !resp.body.contains("row 1") && !resp.body.contains("bad request") {
            return Err(format!(
                "malformed request {m} ({what}): unstructured error body {:?}",
                resp.body
            ));
        }
    }
    // The worker survived every rejection: the same connection scores.
    let (_generation, labels) = score_with_policy(
        &mut client,
        opts.backoff.then_some(&mut backoff),
        workload.name(),
        &workload.probe_body(ds, 0, opts.rows_per_req),
    )
    .map_err(|e| format!("post-malformed score: {e}"))?;
    if labels != expected_labels(0) {
        return Err("post-malformed score diverged from the local model".to_string());
    }
    Ok(())
}
