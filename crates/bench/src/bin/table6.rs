//! Regenerates the supplement's Table 6: probabilistic rules under a wrong
//! expert (Mushroom, Wine, Breast Cancer; LR; |F| = 1; tcf = 0).

use frote_bench::CliOptions;
use frote_data::synth::DatasetKind;
use frote_eval::experiments::probabilistic;

fn main() {
    let opts = CliOptions::from_env();
    let kinds = [DatasetKind::Mushroom, DatasetKind::WineQuality, DatasetKind::BreastCancer];
    let cells = probabilistic::run_datasets(&kinds, opts.scale);
    println!("{}", probabilistic::render_cells(&cells));
    opts.emit_metrics();
}
