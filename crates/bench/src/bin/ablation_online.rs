//! Ablation: the supplement's online-learning proxy selection strategy vs
//! random and IP. The supplement judged the full evaluation-based variant
//! impractical; this measures what the O(|P|) proxy variant buys.

use frote::SelectionStrategy;
use frote_bench::CliOptions;
use frote_data::synth::DatasetKind;
use frote_eval::aggregate::Summary;
use frote_eval::runner::{run_many, RunSpec};
use frote_eval::setup::prepare;
use frote_eval::{render, ModelKind};

fn main() {
    let opts = CliOptions::from_env();
    let kinds = [DatasetKind::Car, DatasetKind::Mushroom, DatasetKind::Contraceptive];
    let mut rows = Vec::new();
    for kind in kinds {
        let setup = prepare(kind, opts.scale, 42);
        for model in [ModelKind::Rf, ModelKind::Lr] {
            let mut cols = vec![kind.name().to_string(), model.name().to_string()];
            for strategy in [
                SelectionStrategy::Random,
                SelectionStrategy::Ip,
                SelectionStrategy::OnlineProxy,
                SelectionStrategy::JointNeighbors,
            ] {
                let spec = RunSpec { selection: strategy, ..RunSpec::new(model, opts.scale) };
                let results = run_many(&setup, &spec, opts.scale.runs(), 70_000);
                let dj: Vec<f64> = results.iter().map(|r| r.delta_j()).collect();
                cols.push(Summary::of(&dj).display());
            }
            rows.push(cols);
        }
    }
    println!(
        "{}",
        render::table(
            "Ablation: ΔJ̄ by selection strategy (random / IP / online proxy / joint)",
            &["Dataset", "Model", "ΔJ random", "ΔJ IP", "ΔJ online", "ΔJ joint"],
            &rows,
        )
    );
    opts.emit_metrics();
}
