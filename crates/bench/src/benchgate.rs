//! The CI bench-regression gate behind the `benchdiff` binary.
//!
//! Compares a fresh perfsmoke record against the committed baseline:
//! **output hashes are gated** (a probe whose stable FNV digest moved, or
//! whose serial/parallel outputs diverged, fails the job) while **timings
//! are warn-only** — shared CI runners make wall-clock too noisy to gate,
//! so the delta table is printed for humans instead.
//!
//! Since PR 7 the record also carries a `metrics` section (the `frote-obs`
//! snapshot taken at the end of the perfsmoke run). Its **thread-invariant
//! counters are gated like output hashes** — they count interior work
//! (cache appends, FROTE accepts, histogram nodes) that is pinned by the
//! determinism contract, so a moved count is a behaviour change. Counters
//! tagged `thread_variant`, gauges, and latency histograms are
//! timing-adjacent and stay warn-only.

use frote_obs::MetricsSnapshot;
use serde::{Deserialize, Serialize};

/// FNV-1a as a [`std::hash::Hasher`] — the canonical stable digest shared
/// by the producer (`perfsmoke` records `output_fnv` with it) and this
/// gate. `DefaultHasher` is only stable within one std build, which is
/// useless for a cross-run comparison.
#[derive(Debug)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl FnvHasher {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        FnvHasher::default()
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The bench-record filename in force: the `BENCH_FILE` environment
/// variable (which CI sets once for every step) or this PR generation's
/// committed default. Shared by `perfsmoke` (writer) and `benchdiff`
/// (reader) so the name is wired in exactly one place.
pub fn default_bench_file() -> String {
    std::env::var("BENCH_FILE").unwrap_or_else(|_| "BENCH_pr10.json".to_string())
}

/// The per-probe fields the gate reads (a subset of perfsmoke's record, so
/// older committed baselines without `output_fnv` still parse).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GateRecord {
    /// Probe name (the join key between baseline and fresh runs).
    pub name: String,
    /// Serial wall-clock, milliseconds.
    pub serial_ms: f64,
    /// Parallel wall-clock, milliseconds.
    pub parallel_ms: f64,
    /// Whether the run's serial and parallel outputs were bit-identical.
    pub identical: bool,
    /// Stable FNV-1a output digest (absent in pre-gate baselines).
    pub output_fnv: Option<String>,
}

/// One serve-path probe's fields the gate reads (since PR 9): latency
/// percentiles of scoring over the wire, plus the response digest that
/// `perfsmoke` asserts equal to a direct `predict_rows` call.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeGateRecord {
    /// Probe name (`serve_latency`, `serve_sweep_rows64`, …).
    pub name: String,
    /// Median request latency, milliseconds (warn-only).
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds (warn-only).
    pub p99_ms: f64,
    /// Whether the over-the-wire responses matched a direct
    /// `predict_rows` call bit for bit (hard-gated).
    pub matches_direct: bool,
    /// Stable FNV-1a digest of all response labels (hard-gated).
    pub response_fnv: Option<String>,
    /// Fraction of score attempts shed by admission control (PR 10
    /// overload probe only; timing-dependent, so warn-only). Absent in
    /// pre-PR 10 baselines and on the latency probes.
    pub shed_rate: Option<f64>,
}

/// The slice of a `BENCH_*.json` file the gate consumes.
#[derive(Debug, Deserialize)]
pub struct GateFile {
    /// All probe records.
    pub benches: Vec<GateRecord>,
    /// The `frote-obs` snapshot of the run (absent in pre-PR 7 baselines).
    pub metrics: Option<MetricsSnapshot>,
    /// Serve-path probes (absent in pre-PR 9 baselines).
    pub serve: Option<Vec<ServeGateRecord>>,
}

/// The gate's verdict: a human delta table, warn-only notes, and the
/// failures that should break the job.
#[derive(Debug)]
pub struct GateOutcome {
    /// Per-probe timing delta lines (warn-only).
    pub table: Vec<String>,
    /// Informational notes (added/removed probes, incomparable hashes).
    pub notes: Vec<String>,
    /// Hard failures: determinism breaks and output-hash regressions.
    pub failures: Vec<String>,
}

impl GateOutcome {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn delta_pct(old: f64, new: f64) -> String {
    if old <= 0.0 {
        return "    n/a".to_string();
    }
    format!("{:+6.1}%", (new - old) / old * 100.0)
}

/// Compares a fresh record against the committed baseline. Identical-output
/// and hash mismatches populate `failures`; everything timing-shaped is
/// advisory.
pub fn compare(old: &GateFile, new: &GateFile) -> GateOutcome {
    let mut outcome = GateOutcome { table: Vec::new(), notes: Vec::new(), failures: Vec::new() };
    outcome.table.push(format!(
        "{:<22} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "probe", "old ser", "new ser", "Δser", "old par", "new par", "Δpar"
    ));
    for rec in &new.benches {
        if !rec.identical {
            outcome.failures.push(format!(
                "{}: serial and parallel outputs diverged in the fresh run",
                rec.name
            ));
        }
        match old.benches.iter().find(|o| o.name == rec.name) {
            None => outcome.notes.push(format!("{}: new probe (no baseline)", rec.name)),
            Some(o) => {
                outcome.table.push(format!(
                    "{:<22} {:>8.2}ms {:>8.2}ms {:>8} {:>8.2}ms {:>8.2}ms {:>8}",
                    rec.name,
                    o.serial_ms,
                    rec.serial_ms,
                    delta_pct(o.serial_ms, rec.serial_ms),
                    o.parallel_ms,
                    rec.parallel_ms,
                    delta_pct(o.parallel_ms, rec.parallel_ms),
                ));
                match (&o.output_fnv, &rec.output_fnv) {
                    (Some(old_fnv), Some(new_fnv)) if old_fnv != new_fnv => {
                        outcome.failures.push(format!(
                            "{}: output hash changed ({old_fnv} -> {new_fnv}) — behaviour \
                             regression, or an intentional change that needs a regenerated \
                             baseline",
                            rec.name
                        ));
                    }
                    (None, _) | (_, None) => outcome.notes.push(format!(
                        "{}: baseline has no output hash; gating starts next run",
                        rec.name
                    )),
                    _ => {}
                }
            }
        }
    }
    for o in &old.benches {
        if !new.benches.iter().any(|r| r.name == o.name) {
            outcome.notes.push(format!("{}: probe removed since the baseline", o.name));
        }
    }
    match (&old.serve, &new.serve) {
        (_, None) => {}
        (None, Some(n)) => {
            outcome
                .notes
                .push("baseline has no serve section; serve gating starts next run".to_string());
            // Digest gating needs a baseline, but a wire/direct divergence
            // is a determinism break in the fresh run alone.
            compare_serve(&[], n, &mut outcome);
        }
        (Some(o), Some(n)) => compare_serve(o, n, &mut outcome),
    }
    match (&old.metrics, &new.metrics) {
        (_, None) => outcome
            .notes
            .push("fresh run carries no metrics section; interior counters not gated".to_string()),
        (None, Some(_)) => outcome
            .notes
            .push("baseline has no metrics section; metric gating starts next run".to_string()),
        (Some(o), Some(n)) => compare_metrics(o, n, &mut outcome),
    }
    outcome
}

/// Diffs the serve-path probes into `outcome`: a response digest that is
/// not bit-identical to direct `predict_rows` (or that moved against the
/// baseline) is a hard failure; latency percentiles are warn-only, same
/// rationale as the bench timings.
fn compare_serve(old: &[ServeGateRecord], new: &[ServeGateRecord], outcome: &mut GateOutcome) {
    for rec in new {
        if !rec.matches_direct {
            outcome.failures.push(format!(
                "{}: wire responses diverged from direct predict_rows in the fresh run",
                rec.name
            ));
        }
        let Some(o) = old.iter().find(|o| o.name == rec.name) else {
            outcome.notes.push(format!("{}: new serve probe (no baseline)", rec.name));
            continue;
        };
        match (&o.response_fnv, &rec.response_fnv) {
            (Some(old_fnv), Some(new_fnv)) if old_fnv != new_fnv => {
                outcome.failures.push(format!(
                    "{}: serve response digest changed ({old_fnv} -> {new_fnv}) — behaviour \
                     regression, or an intentional change that needs a regenerated baseline",
                    rec.name
                ));
            }
            (None, _) | (_, None) => outcome.notes.push(format!(
                "{}: baseline has no serve response digest; gating starts next run",
                rec.name
            )),
            _ => {}
        }
        outcome.table.push(format!(
            "{:<22} p50 {:>8.2}ms -> {:>8.2}ms {:>8}   p99 {:>8.2}ms -> {:>8.2}ms {:>8}",
            rec.name,
            o.p50_ms,
            rec.p50_ms,
            delta_pct(o.p50_ms, rec.p50_ms),
            o.p99_ms,
            rec.p99_ms,
            delta_pct(o.p99_ms, rec.p99_ms),
        ));
        // Shed rate is arrival-timing-dependent: drift is a warning, not a
        // gate — but a probe that stopped shedding entirely (or started
        // from zero) usually means the overload harness changed shape.
        if let (Some(old_rate), Some(new_rate)) = (o.shed_rate, rec.shed_rate) {
            if (new_rate - old_rate).abs() > 0.15 {
                outcome.notes.push(format!(
                    "{}: shed rate drifted {:.2} -> {:.2} (warn-only)",
                    rec.name, old_rate, new_rate
                ));
            }
        }
    }
    for o in old {
        if !new.iter().any(|r| r.name == o.name) {
            outcome.notes.push(format!("{}: serve probe removed since the baseline", o.name));
        }
    }
}

/// Diffs the two runs' metric snapshots into `outcome`. Thread-invariant
/// counter mismatches are hard failures (same contract as the output
/// hashes); everything timing-adjacent — `thread_variant` counters, gauges,
/// latency histograms — lands in the warn-only notes.
fn compare_metrics(old: &MetricsSnapshot, new: &MetricsSnapshot, outcome: &mut GateOutcome) {
    for c in &new.counters {
        let Some(o) = old.counters.iter().find(|o| o.name == c.name) else {
            outcome.notes.push(format!("{}: new counter (no baseline)", c.name));
            continue;
        };
        if o.value == c.value {
            continue;
        }
        if o.variance == "invariant" && c.variance == "invariant" {
            outcome.failures.push(format!(
                "{}: invariant counter changed ({} -> {}) — behaviour regression, or an \
                 intentional change that needs a regenerated baseline",
                c.name, o.value, c.value
            ));
        } else {
            outcome.notes.push(format!(
                "{}: thread-variant counter moved ({} -> {}); warn-only",
                c.name, o.value, c.value
            ));
        }
    }
    for o in &old.counters {
        if !new.counters.iter().any(|c| c.name == o.name) {
            outcome.notes.push(format!("{}: counter removed since the baseline", o.name));
        }
    }
    for g in &new.gauges {
        if let Some(o) = old.gauges.iter().find(|o| o.name == g.name) {
            if o.value.to_bits() != g.value.to_bits() {
                outcome.notes.push(format!(
                    "{}: gauge moved ({} -> {}); warn-only",
                    g.name, o.value, g.value
                ));
            }
        }
    }
    for h in &new.histograms {
        if let Some(o) = old.histograms.iter().find(|o| o.name == h.name) {
            if o.count != h.count {
                outcome.notes.push(format!(
                    "{}: histogram span count moved ({} -> {}); warn-only",
                    h.name, o.count, h.count
                ));
            }
        }
    }
}

/// Picks the baseline `BENCH_*.json` in `dir`: the highest-numbered
/// `BENCH_pr<N>.json` (lexicographic fallback for other names) that is not
/// `exclude`. Returns `None` when the directory holds no candidate.
pub fn discover_baseline(dir: &std::path::Path, exclude: &str) -> Option<std::path::PathBuf> {
    let mut candidates: Vec<(u64, String)> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json") && n != exclude)
        .map(|n| {
            let digits: String =
                n.trim_start_matches("BENCH_pr").chars().take_while(char::is_ascii_digit).collect();
            (digits.parse().unwrap_or(0), n)
        })
        .collect();
    candidates.sort();
    candidates.pop().map(|(_, n)| dir.join(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, fnv: Option<&str>, identical: bool) -> GateRecord {
        GateRecord {
            name: name.to_string(),
            serial_ms: 10.0,
            parallel_ms: 5.0,
            identical,
            output_fnv: fnv.map(str::to_string),
        }
    }

    #[test]
    fn fnv_hasher_matches_known_vectors() {
        use std::hash::Hasher;
        assert_eq!(FnvHasher::new().finish(), 0xcbf2_9ce4_8422_2325, "offset basis");
        let mut h = FnvHasher::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c, "FNV-1a of \"a\"");
    }

    #[test]
    fn clean_run_passes() {
        let old = GateFile { serve: None, metrics: None, benches: vec![rec("a", Some("1"), true)] };
        let new = GateFile { serve: None, metrics: None, benches: vec![rec("a", Some("1"), true)] };
        let out = compare(&old, &new);
        assert!(out.passed(), "{:?}", out.failures);
        assert_eq!(out.table.len(), 2, "header + one probe");
    }

    #[test]
    fn hash_mismatch_fails() {
        let old = GateFile { serve: None, metrics: None, benches: vec![rec("a", Some("1"), true)] };
        let new = GateFile { serve: None, metrics: None, benches: vec![rec("a", Some("2"), true)] };
        let out = compare(&old, &new);
        assert!(!out.passed());
        assert!(out.failures[0].contains("output hash changed"), "{}", out.failures[0]);
    }

    #[test]
    fn determinism_break_fails_even_without_baseline() {
        let old = GateFile { serve: None, metrics: None, benches: Vec::new() };
        let new =
            GateFile { serve: None, metrics: None, benches: vec![rec("a", Some("1"), false)] };
        let out = compare(&old, &new);
        assert!(!out.passed());
        assert!(out.failures[0].contains("diverged"));
    }

    #[test]
    fn missing_baseline_hash_warns_only() {
        let old = GateFile { serve: None, metrics: None, benches: vec![rec("a", None, true)] };
        let new = GateFile { serve: None, metrics: None, benches: vec![rec("a", Some("2"), true)] };
        let out = compare(&old, &new);
        assert!(out.passed(), "pre-gate baselines must not fail the job");
        assert!(out.notes.iter().any(|n| n.contains("gating starts next run")));
    }

    #[test]
    fn added_and_removed_probes_are_notes() {
        let old =
            GateFile { serve: None, metrics: None, benches: vec![rec("gone", Some("1"), true)] };
        let new =
            GateFile { serve: None, metrics: None, benches: vec![rec("fresh", Some("2"), true)] };
        let out = compare(&old, &new);
        assert!(out.passed());
        assert!(out.notes.iter().any(|n| n.contains("new probe")));
        assert!(out.notes.iter().any(|n| n.contains("removed")));
    }

    #[test]
    fn timing_regressions_never_fail() {
        let mut slow = rec("a", Some("1"), true);
        slow.serial_ms = 1000.0;
        slow.parallel_ms = 900.0;
        let old = GateFile { serve: None, metrics: None, benches: vec![rec("a", Some("1"), true)] };
        let new = GateFile { serve: None, metrics: None, benches: vec![slow] };
        let out = compare(&old, &new);
        assert!(out.passed(), "timings are warn-only");
        assert!(out.table[1].contains('%'));
    }

    fn serve_rec(name: &str, fnv: Option<&str>, matches_direct: bool) -> ServeGateRecord {
        ServeGateRecord {
            name: name.to_string(),
            p50_ms: 1.0,
            p99_ms: 2.0,
            matches_direct,
            response_fnv: fnv.map(str::to_string),
            shed_rate: None,
        }
    }

    fn with_serve(records: Vec<ServeGateRecord>) -> GateFile {
        GateFile { serve: Some(records), metrics: None, benches: vec![rec("a", Some("1"), true)] }
    }

    #[test]
    fn serve_digest_change_fails() {
        let old = with_serve(vec![serve_rec("serve_latency", Some("1"), true)]);
        let new = with_serve(vec![serve_rec("serve_latency", Some("2"), true)]);
        let out = compare(&old, &new);
        assert!(!out.passed());
        assert!(out.failures[0].contains("serve response digest changed"), "{}", out.failures[0]);
    }

    #[test]
    fn serve_direct_divergence_fails_even_without_baseline() {
        let old = GateFile { serve: None, metrics: None, benches: vec![rec("a", Some("1"), true)] };
        let new = with_serve(vec![serve_rec("serve_latency", Some("1"), false)]);
        let out = compare(&old, &new);
        assert!(!out.passed());
        assert!(
            out.failures[0].contains("diverged from direct predict_rows"),
            "{}",
            out.failures[0]
        );
    }

    #[test]
    fn missing_baseline_serve_section_warns_only() {
        let old = GateFile { serve: None, metrics: None, benches: vec![rec("a", Some("1"), true)] };
        let new = with_serve(vec![serve_rec("serve_latency", Some("1"), true)]);
        let out = compare(&old, &new);
        assert!(out.passed(), "pre-PR 9 baselines must not fail the job: {:?}", out.failures);
        assert!(out.notes.iter().any(|n| n.contains("serve gating starts next run")));
    }

    #[test]
    fn serve_latency_regressions_never_fail() {
        let mut slow = serve_rec("serve_latency", Some("1"), true);
        slow.p50_ms = 50.0;
        slow.p99_ms = 500.0;
        let old = with_serve(vec![serve_rec("serve_latency", Some("1"), true)]);
        let new = with_serve(vec![slow]);
        let out = compare(&old, &new);
        assert!(out.passed(), "serve latencies are warn-only: {:?}", out.failures);
    }

    #[test]
    fn shed_rate_drift_warns_but_never_fails() {
        let mut was = serve_rec("serve_overload", Some("1"), true);
        was.shed_rate = Some(0.60);
        let mut now = serve_rec("serve_overload", Some("1"), true);
        now.shed_rate = Some(0.10);
        let out = compare(&with_serve(vec![was]), &with_serve(vec![now]));
        assert!(out.passed(), "shed rate is warn-only: {:?}", out.failures);
        assert!(out.notes.iter().any(|n| n.contains("shed rate drifted")), "{:?}", out.notes);

        // Small drift stays silent; a digest change still hard-fails even
        // with matching shed rates.
        let mut was = serve_rec("serve_overload", Some("1"), true);
        was.shed_rate = Some(0.50);
        let mut now = serve_rec("serve_overload", Some("2"), true);
        now.shed_rate = Some(0.55);
        let out = compare(&with_serve(vec![was]), &with_serve(vec![now]));
        assert!(!out.passed(), "overload digest is hard-gated");
        assert!(!out.notes.iter().any(|n| n.contains("shed rate drifted")), "{:?}", out.notes);
    }

    fn counter(name: &str, variance: &str, value: u64) -> frote_obs::CounterSnapshot {
        frote_obs::CounterSnapshot { name: name.to_string(), variance: variance.to_string(), value }
    }

    fn with_metrics(counters: Vec<frote_obs::CounterSnapshot>) -> GateFile {
        GateFile {
            serve: None,
            benches: vec![rec("a", Some("1"), true)],
            metrics: Some(MetricsSnapshot { counters, ..Default::default() }),
        }
    }

    #[test]
    fn invariant_counter_change_fails() {
        let old = with_metrics(vec![counter("frote.accepted", "invariant", 3)]);
        let new = with_metrics(vec![counter("frote.accepted", "invariant", 2)]);
        let out = compare(&old, &new);
        assert!(!out.passed());
        assert!(out.failures[0].contains("invariant counter changed"), "{}", out.failures[0]);
    }

    #[test]
    fn thread_variant_counter_change_warns_only() {
        let old = with_metrics(vec![counter("par.tasks", "thread_variant", 100)]);
        let new = with_metrics(vec![counter("par.tasks", "thread_variant", 250)]);
        let out = compare(&old, &new);
        assert!(out.passed(), "{:?}", out.failures);
        assert!(out.notes.iter().any(|n| n.contains("warn-only")), "{:?}", out.notes);
    }

    #[test]
    fn matching_metrics_pass_silently() {
        let old = with_metrics(vec![counter("frote.accepted", "invariant", 3)]);
        let new = with_metrics(vec![counter("frote.accepted", "invariant", 3)]);
        let out = compare(&old, &new);
        assert!(out.passed());
        assert!(out.notes.is_empty(), "{:?}", out.notes);
    }

    #[test]
    fn missing_baseline_metrics_warns_only() {
        let old = GateFile { serve: None, metrics: None, benches: vec![rec("a", Some("1"), true)] };
        let new = with_metrics(vec![counter("frote.accepted", "invariant", 3)]);
        let out = compare(&old, &new);
        assert!(out.passed(), "pre-PR 7 baselines must not fail the job");
        assert!(out.notes.iter().any(|n| n.contains("metric gating starts next run")));
    }

    #[test]
    fn added_and_removed_counters_are_notes() {
        let old = with_metrics(vec![counter("gone", "invariant", 1)]);
        let new = with_metrics(vec![counter("fresh", "invariant", 2)]);
        let out = compare(&old, &new);
        assert!(out.passed());
        assert!(out.notes.iter().any(|n| n.contains("new counter")));
        assert!(out.notes.iter().any(|n| n.contains("counter removed")));
    }

    #[test]
    fn gate_file_parses_with_metrics_section() {
        let parsed: GateFile = serde_json::from_str(
            r#"{"benches":[{"name":"a","serial_ms":1.0,"parallel_ms":2.0,"identical":true}],
                "metrics":{"counters":[{"name":"frote.accepted","variance":"invariant",
                "value":3}],"gauges":[],"histograms":[]}}"#,
        )
        .expect("parses with metrics");
        let metrics = parsed.metrics.expect("metrics present");
        assert_eq!(metrics.counter("frote.accepted"), Some(3));
    }

    #[test]
    fn gate_file_parses_with_and_without_hashes() {
        let with: GateFile = serde_json::from_str(
            r#"{"benches":[{"name":"a","serial_ms":1.0,"parallel_ms":2.0,"speedup":0.5,
                "identical":true,"output_fnv":"deadbeef"}],"note":"x"}"#,
        )
        .expect("parses");
        assert_eq!(with.benches[0].output_fnv.as_deref(), Some("deadbeef"));
        let without: GateFile = serde_json::from_str(
            r#"{"benches":[{"name":"a","serial_ms":1.0,"parallel_ms":2.0,"identical":true}]}"#,
        )
        .expect("parses without output_fnv");
        assert_eq!(without.benches[0].output_fnv, None);
    }

    #[test]
    fn baseline_discovery_prefers_highest_pr_number() {
        let dir = std::env::temp_dir().join("frote-benchgate-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["BENCH_pr2.json", "BENCH_pr10.json", "BENCH_pr4.json"] {
            std::fs::write(dir.join(name), "{}").unwrap();
        }
        let found = discover_baseline(&dir, "BENCH_pr10.json").expect("found");
        assert!(found.ends_with("BENCH_pr4.json"), "{found:?}");
        let found = discover_baseline(&dir, "BENCH_pr4.json").expect("found");
        assert!(found.ends_with("BENCH_pr10.json"), "numeric, not lexicographic: {found:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
