//! The one shared command-line surface of every experiment binary.
//!
//! Each repro bin used to hand-roll its own `--threads`/`--split-mode`/
//! `--out` parsing; [`CliOptions`] centralizes the flag set so a new flag
//! (like `--metrics-out`) lands once instead of once per binary. Parsing
//! panics with a usage message on unknown input — appropriate for the
//! small experiment binaries this serves.

use frote_eval::Scale;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOptions {
    /// Experiment scale (default smoke).
    pub scale: Scale,
    /// Run on all applicable datasets rather than the paper's headline
    /// subset (`--all-datasets`).
    pub all_datasets: bool,
    /// Modification strategy override (`--mod-strategy none|relabel|drop`).
    pub mod_strategy: frote::ModStrategy,
    /// Emit machine-readable JSON (via `frote_eval::export`) instead of the
    /// text table, where the binary supports it (`--json`).
    pub json: bool,
    /// Worker-thread override for the `frote-par` runtime (`--threads N`).
    /// `None` leaves the `frote_par::threads()` resolution untouched
    /// (`FROTE_THREADS` env var → available parallelism). Results are
    /// bit-identical at any setting; only wall-clock changes.
    pub threads: Option<usize>,
    /// Tree split-search override
    /// (`--split-mode exact|histogram|histogram:<bins>`). `None` leaves the
    /// process-wide default (exact) untouched; `Some` installs the mode via
    /// [`frote_ml::set_default_split_mode`] so every tree trainer the
    /// experiment harness constructs picks it up.
    pub split_mode: Option<frote_ml::SplitMode>,
    /// Output-path override for binaries that write a report file
    /// (`--out <path>`, currently `perfsmoke`).
    pub out: Option<String>,
    /// Write a JSON metrics snapshot to this path at the end of the run
    /// (`--metrics-out <path>`). Implies metric recording: `apply` turns
    /// the registry on via [`frote_obs::set_metrics_enabled`], the same
    /// process-default pattern as `--threads`/`--split-mode`.
    pub metrics_out: Option<String>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            scale: Scale::Smoke,
            all_datasets: false,
            mod_strategy: frote::ModStrategy::Relabel,
            json: false,
            threads: None,
            split_mode: None,
            out: None,
            metrics_out: None,
        }
    }
}

impl CliOptions {
    /// Parses options from an argument iterator (excluding `argv[0]`).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown arguments — appropriate for
    /// the small experiment binaries this serves.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> CliOptions {
        let mut opts = CliOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = iter.next().expect("--scale requires a value");
                    opts.scale = Scale::parse(&v)
                        .unwrap_or_else(|| panic!("unknown scale {v:?} (smoke|paper)"));
                }
                "--all-datasets" => opts.all_datasets = true,
                "--json" => opts.json = true,
                "--threads" => {
                    let v = iter.next().expect("--threads requires a value");
                    let n: usize =
                        v.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                            panic!("--threads wants a positive integer, got {v:?}")
                        });
                    opts.threads = Some(n);
                }
                "--split-mode" => {
                    let v = iter.next().expect("--split-mode requires a value");
                    let mode = frote_ml::SplitMode::parse(&v).unwrap_or_else(|| {
                        panic!("unknown split mode {v:?} (exact|histogram|histogram:<bins>)")
                    });
                    opts.split_mode = Some(mode);
                }
                "--out" => {
                    let v = iter.next().expect("--out requires a value");
                    opts.out = Some(v);
                }
                "--metrics-out" => {
                    let v = iter.next().expect("--metrics-out requires a value");
                    opts.metrics_out = Some(v);
                }
                "--mod-strategy" => {
                    let v = iter.next().expect("--mod-strategy requires a value");
                    opts.mod_strategy = match v.as_str() {
                        "none" => frote::ModStrategy::None,
                        "relabel" => frote::ModStrategy::Relabel,
                        "drop" => frote::ModStrategy::Drop,
                        other => panic!("unknown mod strategy {other:?}"),
                    };
                }
                other => panic!("unknown argument {other:?}"),
            }
        }
        opts
    }

    /// Parses from the process arguments and applies side-effect options
    /// (currently `--threads` → [`frote_par::set_threads`]).
    pub fn from_env() -> CliOptions {
        let opts = CliOptions::parse(std::env::args().skip(1));
        opts.apply();
        opts
    }

    /// Applies side-effect options: installs the `--threads` override into
    /// the `frote-par` resolver (the `FROTE_THREADS` env var still wins, by
    /// the resolver's documented precedence), the `--split-mode` override
    /// into the `frote-ml` split-mode default, and — when `--metrics-out`
    /// was given — turns metric recording on.
    pub fn apply(&self) {
        if let Some(n) = self.threads {
            frote_par::set_threads(n);
        }
        if let Some(mode) = self.split_mode {
            frote_ml::set_default_split_mode(mode);
        }
        if self.metrics_out.is_some() {
            frote_obs::set_metrics_enabled(true);
        }
    }

    /// End-of-run metrics surfacing, called once by each binary after its
    /// work: writes the JSON snapshot to `--metrics-out` (if given) and
    /// prints the human-readable summary table whenever recording was on —
    /// via the flag or `FROTE_METRICS=1`. A no-op when metrics are off.
    pub fn emit_metrics(&self) {
        if !frote_obs::metrics_enabled() {
            return;
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, frote_obs::snapshot_json())
                .unwrap_or_else(|e| panic!("writing metrics to {path:?}: {e}"));
            println!("metrics written to {path}");
        }
        println!("\n== metrics ==");
        print!("{}", frote_obs::summary_table());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> CliOptions {
        CliOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert_eq!(o.scale, Scale::Smoke);
        assert!(!o.all_datasets);
        assert_eq!(o.metrics_out, None);
    }

    #[test]
    fn full_parse() {
        let o = parse(&[
            "--scale",
            "paper",
            "--all-datasets",
            "--mod-strategy",
            "drop",
            "--json",
            "--threads",
            "8",
            "--split-mode",
            "histogram:128",
            "--out",
            "BENCH_custom.json",
            "--metrics-out",
            "metrics.json",
        ]);
        assert_eq!(o.scale, Scale::Paper);
        assert!(o.all_datasets);
        assert_eq!(o.mod_strategy, frote::ModStrategy::Drop);
        assert!(o.json);
        assert_eq!(o.threads, Some(8));
        assert_eq!(o.split_mode, Some(frote_ml::SplitMode::Histogram { max_bins: 128 }));
        assert_eq!(o.out.as_deref(), Some("BENCH_custom.json"));
        assert_eq!(o.metrics_out.as_deref(), Some("metrics.json"));
    }

    #[test]
    fn split_mode_applies_to_the_process_default() {
        // Safe to flip here: this test binary trains no models.
        assert_eq!(frote_ml::default_split_mode(), frote_ml::SplitMode::Exact);
        parse(&["--split-mode", "histogram"]).apply();
        assert_eq!(frote_ml::default_split_mode(), frote_ml::SplitMode::histogram());
        parse(&["--split-mode", "exact"]).apply();
        assert_eq!(frote_ml::default_split_mode(), frote_ml::SplitMode::Exact);
        // No flag: the default is left untouched.
        parse(&[]).apply();
        assert_eq!(frote_ml::default_split_mode(), frote_ml::SplitMode::Exact);
    }

    #[test]
    fn metrics_out_enables_recording() {
        // Safe to flip here: assertions read only the gate, not counters.
        frote_obs::clear_metrics_override();
        parse(&["--metrics-out", "/tmp/m.json"]).apply();
        assert!(frote_obs::metrics_enabled(), "--metrics-out implies recording");
        frote_obs::set_metrics_enabled(false);
        // No flag: the gate is left untouched (env resolution still wins).
        parse(&[]).apply();
        assert!(!frote_obs::metrics_enabled());
        frote_obs::clear_metrics_override();
    }

    #[test]
    #[should_panic(expected = "unknown split mode")]
    fn bad_split_mode_rejected() {
        parse(&["--split-mode", "sorted"]);
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn zero_threads_rejected() {
        parse(&["--threads", "0"]);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_argument_panics() {
        parse(&["--wat"]);
    }

    #[test]
    #[should_panic(expected = "unknown scale")]
    fn unknown_scale_panics() {
        parse(&["--scale", "galactic"]);
    }
}
