//! # frote-bench
//!
//! Benchmark harness for the FROTE reproduction:
//!
//! - **binaries** (`src/bin/`) regenerate every table and figure of the
//!   paper (`table1`, `figure2`, `table2`, `figure3`, `table3`, `table4`,
//!   `table5`, `table6`, `table7_8`, `figure9`, `figure10`,
//!   `ablation_online`, `repro_all`). All accept
//!   `--scale {smoke,paper}` (default `smoke`).
//! - **criterion benches** (`benches/`) time the core operations:
//!   SMOTE generation, model training, rule coverage, `PreSelectBP`, the
//!   selection IP, a full FROTE iteration, Overlay prediction, and kNN
//!   search.

#![warn(missing_docs)]

pub mod benchgate;
pub mod cli;

pub use cli::CliOptions;
