//! # frote-bench
//!
//! Benchmark harness for the FROTE reproduction:
//!
//! - **binaries** (`src/bin/`) regenerate every table and figure of the
//!   paper (`table1`, `figure2`, `table2`, `figure3`, `table3`, `table4`,
//!   `table5`, `table6`, `table7_8`, `figure9`, `figure10`,
//!   `ablation_online`, `repro_all`). All accept
//!   `--scale {smoke,paper}` (default `smoke`).
//! - **criterion benches** (`benches/`) time the core operations:
//!   SMOTE generation, model training, rule coverage, `PreSelectBP`, the
//!   selection IP, a full FROTE iteration, Overlay prediction, and kNN
//!   search.

#![warn(missing_docs)]

pub mod benchgate;

use frote_eval::Scale;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOptions {
    /// Experiment scale (default smoke).
    pub scale: Scale,
    /// Run on all applicable datasets rather than the paper's headline
    /// subset (`--all-datasets`).
    pub all_datasets: bool,
    /// Modification strategy override (`--mod-strategy none|relabel|drop`).
    pub mod_strategy: frote::ModStrategy,
    /// Emit machine-readable JSON (via `frote_eval::export`) instead of the
    /// text table, where the binary supports it (`--json`).
    pub json: bool,
    /// Worker-thread override for the `frote-par` runtime (`--threads N`).
    /// `None` leaves the `frote_par::threads()` resolution untouched
    /// (`FROTE_THREADS` env var → available parallelism). Results are
    /// bit-identical at any setting; only wall-clock changes.
    pub threads: Option<usize>,
    /// Tree split-search override
    /// (`--split-mode exact|histogram|histogram:<bins>`). `None` leaves the
    /// process-wide default (exact) untouched; `Some` installs the mode via
    /// [`frote_ml::set_default_split_mode`] so every tree trainer the
    /// experiment harness constructs picks it up.
    pub split_mode: Option<frote_ml::SplitMode>,
    /// Output-path override for binaries that write a report file
    /// (`--out <path>`, currently `perfsmoke`).
    pub out: Option<String>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            scale: Scale::Smoke,
            all_datasets: false,
            mod_strategy: frote::ModStrategy::Relabel,
            json: false,
            threads: None,
            split_mode: None,
            out: None,
        }
    }
}

impl CliOptions {
    /// Parses options from an argument iterator (excluding `argv[0]`).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown arguments — appropriate for
    /// the small experiment binaries this serves.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> CliOptions {
        let mut opts = CliOptions::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = iter.next().expect("--scale requires a value");
                    opts.scale = Scale::parse(&v)
                        .unwrap_or_else(|| panic!("unknown scale {v:?} (smoke|paper)"));
                }
                "--all-datasets" => opts.all_datasets = true,
                "--json" => opts.json = true,
                "--threads" => {
                    let v = iter.next().expect("--threads requires a value");
                    let n: usize =
                        v.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                            panic!("--threads wants a positive integer, got {v:?}")
                        });
                    opts.threads = Some(n);
                }
                "--split-mode" => {
                    let v = iter.next().expect("--split-mode requires a value");
                    let mode = frote_ml::SplitMode::parse(&v).unwrap_or_else(|| {
                        panic!("unknown split mode {v:?} (exact|histogram|histogram:<bins>)")
                    });
                    opts.split_mode = Some(mode);
                }
                "--out" => {
                    let v = iter.next().expect("--out requires a value");
                    opts.out = Some(v);
                }
                "--mod-strategy" => {
                    let v = iter.next().expect("--mod-strategy requires a value");
                    opts.mod_strategy = match v.as_str() {
                        "none" => frote::ModStrategy::None,
                        "relabel" => frote::ModStrategy::Relabel,
                        "drop" => frote::ModStrategy::Drop,
                        other => panic!("unknown mod strategy {other:?}"),
                    };
                }
                other => panic!("unknown argument {other:?}"),
            }
        }
        opts
    }

    /// Parses from the process arguments and applies side-effect options
    /// (currently `--threads` → [`frote_par::set_threads`]).
    pub fn from_env() -> CliOptions {
        let opts = CliOptions::parse(std::env::args().skip(1));
        opts.apply();
        opts
    }

    /// Applies side-effect options: installs the `--threads` override into
    /// the `frote-par` resolver (the `FROTE_THREADS` env var still wins, by
    /// the resolver's documented precedence) and the `--split-mode` override
    /// into the `frote-ml` split-mode default.
    pub fn apply(&self) {
        if let Some(n) = self.threads {
            frote_par::set_threads(n);
        }
        if let Some(mode) = self.split_mode {
            frote_ml::set_default_split_mode(mode);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> CliOptions {
        CliOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert_eq!(o.scale, Scale::Smoke);
        assert!(!o.all_datasets);
    }

    #[test]
    fn full_parse() {
        let o = parse(&[
            "--scale",
            "paper",
            "--all-datasets",
            "--mod-strategy",
            "drop",
            "--json",
            "--threads",
            "8",
            "--split-mode",
            "histogram:128",
            "--out",
            "BENCH_custom.json",
        ]);
        assert_eq!(o.scale, Scale::Paper);
        assert!(o.all_datasets);
        assert_eq!(o.mod_strategy, frote::ModStrategy::Drop);
        assert!(o.json);
        assert_eq!(o.threads, Some(8));
        assert_eq!(o.split_mode, Some(frote_ml::SplitMode::Histogram { max_bins: 128 }));
        assert_eq!(o.out.as_deref(), Some("BENCH_custom.json"));
    }

    #[test]
    fn split_mode_applies_to_the_process_default() {
        // Safe to flip here: this test binary trains no models.
        assert_eq!(frote_ml::default_split_mode(), frote_ml::SplitMode::Exact);
        parse(&["--split-mode", "histogram"]).apply();
        assert_eq!(frote_ml::default_split_mode(), frote_ml::SplitMode::histogram());
        parse(&["--split-mode", "exact"]).apply();
        assert_eq!(frote_ml::default_split_mode(), frote_ml::SplitMode::Exact);
        // No flag: the default is left untouched.
        parse(&[]).apply();
        assert_eq!(frote_ml::default_split_mode(), frote_ml::SplitMode::Exact);
    }

    #[test]
    #[should_panic(expected = "unknown split mode")]
    fn bad_split_mode_rejected() {
        parse(&["--split-mode", "sorted"]);
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn zero_threads_rejected() {
        parse(&["--threads", "0"]);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_argument_panics() {
        parse(&["--wat"]);
    }

    #[test]
    #[should_panic(expected = "unknown scale")]
    fn unknown_scale_panics() {
        parse(&["--scale", "galactic"]);
    }
}
