//! Times a short end-to-end FROTE run (select -> generate -> retrain -> score).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use frote::{Frote, FroteConfig, SelectionStrategy};
use frote_data::synth::{DatasetKind, SynthConfig};
use frote_eval::{ModelKind, Scale};
use frote_rules::{parse::parse_rule, FeedbackRuleSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 400, ..Default::default() });
    let rule = parse_rule("safety = low AND buying = low => acc", ds.schema()).unwrap();
    let frs = FeedbackRuleSet::new(vec![rule]);
    let trainer = ModelKind::Rf.trainer(Scale::Smoke);
    let mut group = c.benchmark_group("frote_3_iterations");
    group.sample_size(10);
    for strategy in [SelectionStrategy::Random, SelectionStrategy::Ip] {
        let config = FroteConfig {
            iteration_limit: 3,
            instances_per_iteration: Some(20),
            selection: strategy,
            ..Default::default()
        };
        group.bench_function(strategy.name(), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(42);
                black_box(Frote::new(config).run(&ds, trainer.as_ref(), &frs, &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
