//! Times PreSelectBP (Algorithm 2), including rule relaxation.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use frote::preselect::BasePopulation;
use frote_data::synth::{DatasetKind, SynthConfig};
use frote_data::Value;
use frote_rules::FeedbackRuleSet;
use frote_rules::{Clause, FeedbackRule, LabelDist, Op, Predicate};

fn bench(c: &mut Criterion) {
    let ds = DatasetKind::Adult.generate(&SynthConfig { n_rows: 2000, ..Default::default() });
    // A wide rule (no relaxation) and a zero-coverage one (full relaxation).
    let wide = FeedbackRule::new(
        Clause::new(vec![Predicate::new(0, Op::Ge, Value::Num(40.0))]),
        LabelDist::Deterministic(1),
    );
    let narrow = FeedbackRule::new(
        Clause::new(vec![
            Predicate::new(0, Op::Ge, Value::Num(95.0)),
            Predicate::new(3, Op::Ge, Value::Num(90.0)),
            Predicate::new(6, Op::Eq, Value::Cat(3)),
        ]),
        LabelDist::Deterministic(1),
    );
    let frs = FeedbackRuleSet::new(vec![wide, narrow]);
    c.bench_function("preselect_bp_with_relaxation", |b| {
        b.iter(|| black_box(BasePopulation::pre_select(&ds, &frs, 5)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
