//! Times rule coverage scans — the hot loop of objectives and pre-selection.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use frote_data::synth::DatasetKind;
use frote_eval::setup::{draw_conflict_free_frs, prepare};
use frote_eval::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let setup = prepare(DatasetKind::Mushroom, Scale::Smoke, 42);
    let mut rng = StdRng::seed_from_u64(1);
    let frs = draw_conflict_free_frs(&setup, 5, &mut rng);
    c.bench_function("frs_union_coverage", |b| b.iter(|| black_box(frs.coverage(&setup.dataset))));
    c.bench_function("frs_attributed_coverage", |b| {
        b.iter(|| black_box(frs.attributed_coverage(&setup.dataset)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
