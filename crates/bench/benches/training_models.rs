//! Times one training call per model family — the unit cost of each FROTE
//! iteration (Algorithm 1 retrains every round).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use frote_data::synth::{DatasetKind, SynthConfig};
use frote_eval::{ModelKind, Scale};

fn bench(c: &mut Criterion) {
    let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 800, ..Default::default() });
    let mut group = c.benchmark_group("train_800_rows");
    group.sample_size(10);
    for kind in ModelKind::ALL {
        let trainer = kind.trainer(Scale::Smoke);
        group.bench_function(kind.name(), |b| b.iter(|| black_box(trainer.train(&ds))));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
