//! Times the Eq. 5 selection IP (simplex relaxation + rounding + repair).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use frote_opt::SelectionProblem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn problem(p: usize, rules: usize, seed: u64) -> SelectionProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f64> = (0..p).map(|_| rng.random_range(1.0..4.0)).collect();
    let coverage: Vec<Vec<usize>> =
        (0..rules).map(|_| (0..p).filter(|_| rng.random::<f64>() < 0.4).collect()).collect();
    SelectionProblem::new(weights, coverage, 6, 20)
}

fn bench(c: &mut Criterion) {
    for (p, rules) in [(50usize, 3usize), (200, 5)] {
        let prob = problem(p, rules, 42);
        c.bench_function(&format!("ip_lp_rounding_p{p}_m{rules}"), |b| {
            b.iter(|| black_box(prob.solve()))
        });
        let greedy = problem(p, rules, 42);
        c.bench_function(&format!("ip_greedy_p{p}_m{rules}"), |b| {
            b.iter(|| black_box(greedy.solve_greedy()))
        });
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
