//! Times mixed-type brute-force kNN vs the numeric ball tree.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use frote_data::encode::Encoder;
use frote_data::synth::{DatasetKind, SynthConfig};
use frote_ml::balltree::BallTree;
use frote_ml::distance::{MixedDistance, MixedMetric};
use frote_ml::knn::k_nearest_of_row;

fn bench(c: &mut Criterion) {
    let ds = DatasetKind::BreastCancer.generate(&SynthConfig { n_rows: 569, ..Default::default() });
    let dist = MixedDistance::fit(&ds, MixedMetric::SmoteNc);
    let all: Vec<usize> = (0..ds.n_rows()).collect();
    c.bench_function("brute_force_knn_k5", |b| {
        b.iter(|| black_box(k_nearest_of_row(&ds, 0, &all, 5, &dist)))
    });

    let encoder = Encoder::fit(&ds);
    let points = encoder.encode_dataset(&ds);
    let query = points.row(0).to_vec();
    c.bench_function("ball_tree_build", |b| b.iter(|| black_box(BallTree::build(points.clone()))));
    let tree = BallTree::build(points);
    c.bench_function("ball_tree_knn_k5", |b| b.iter(|| black_box(tree.k_nearest(&query, 5))));
}

criterion_group!(benches, bench);
criterion_main!(benches);
