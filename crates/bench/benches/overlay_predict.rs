//! Times Overlay post-processing prediction vs the raw model — the latency
//! overhead the paper cites as a reason to prefer editing the model.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use frote_data::synth::{DatasetKind, SynthConfig};
use frote_eval::{ModelKind, Scale};
use frote_overlay::{Overlay, OverlayMode};
use frote_rules::{parse::parse_rule, FeedbackRuleSet};

fn bench(c: &mut Criterion) {
    let ds = DatasetKind::Mushroom.generate(&SynthConfig { n_rows: 1000, ..Default::default() });
    let rule = parse_rule("odor = odor-3 => edible", ds.schema()).unwrap();
    let frs = FeedbackRuleSet::new(vec![rule]);
    let model = ModelKind::Rf.trainer(Scale::Smoke).train(&ds);
    let rows: Vec<Vec<frote_data::Value>> = (0..200).map(|i| ds.row(i)).collect();

    c.bench_function("raw_model_200_predictions", |b| {
        b.iter(|| {
            for row in &rows {
                black_box(model.predict(row));
            }
        })
    });
    for (mode, name) in
        [(OverlayMode::Hard, "overlay_hard_200"), (OverlayMode::Soft, "overlay_soft_200")]
    {
        let ov = Overlay::new(model.as_ref(), frs.clone(), mode, &ds);
        c.bench_function(name, |b| {
            b.iter(|| {
                for row in &rows {
                    black_box(ov.predict(row));
                }
            })
        });
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
