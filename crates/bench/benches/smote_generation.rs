//! Times SMOTE / SMOTE-NC generation and FROTE's rule-constrained generator.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use frote::generate::{Generator, LabelPolicy};
use frote::preselect::BasePopulation;
use frote::select::BaseInstance;
use frote_data::synth::{DatasetKind, SynthConfig};
use frote_rules::{parse::parse_rule, FeedbackRuleSet};
use frote_smote::{SmoteNc, SmoteParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let ds =
        DatasetKind::Contraceptive.generate(&SynthConfig { n_rows: 1000, ..Default::default() });

    c.bench_function("smote_nc_generate_100", |b| {
        let smote = SmoteNc::new(SmoteParams::default());
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(42);
            black_box(smote.generate(&ds, 1, 100, &mut rng).unwrap())
        })
    });

    let rule = parse_rule("wife-age < 30 AND n-children >= 2 => short-term", ds.schema())
        .expect("rule parses");
    let frs = FeedbackRuleSet::new(vec![rule]);
    let bp = BasePopulation::pre_select(&ds, &frs, 5);
    let members = bp.population(0).members.clone();
    let base: Vec<BaseInstance> =
        (0..100).map(|i| BaseInstance::new(0, members[i % members.len()])).collect();
    c.bench_function("frote_generate_100_rule_constrained", |b| {
        b.iter(|| {
            let generator = Generator::new(&ds, &frs, &bp, 5, LabelPolicy::FromRule);
            let mut rng = StdRng::seed_from_u64(42);
            black_box(generator.generate(&base, &mut rng))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
