//! Classic SMOTE and SMOTE-NC.

use frote_data::stats::CategoricalStats;
use frote_data::{Dataset, FeatureKind, Value};
use frote_ml::distance::{MixedDistance, MixedMetric};
use frote_ml::knn::{k_nearest_of_row, Neighbor};
use frote_par::SeedSplit;
use rand::seq::IndexedRandom;
use rand::Rng;

use crate::error::SmoteError;

/// Shared oversampling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmoteParams {
    /// Number of nearest neighbours (the paper and Chawla et al. use 5).
    pub k: usize,
}

impl Default for SmoteParams {
    fn default() -> Self {
        SmoteParams { k: 5 }
    }
}

/// Classic SMOTE over all-numeric datasets (Chawla et al. 2002).
///
/// Synthetic points are convex combinations of a random minority base
/// instance and one of its `k` same-class nearest neighbours
/// (the paper's Eq. 6: `f_v = x_i^f + (x_j^f - x_i^f) * w`, `w ~ U(0,1)`).
#[derive(Debug, Clone)]
pub struct Smote {
    params: SmoteParams,
}

impl Smote {
    /// Creates the oversampler.
    pub fn new(params: SmoteParams) -> Self {
        Smote { params }
    }

    /// Generates `n_new` synthetic rows of class `class`.
    ///
    /// # Errors
    ///
    /// - [`SmoteError::CategoricalFeatures`] if the dataset has nominal
    ///   columns,
    /// - [`SmoteError::UnknownClass`] for an out-of-range class,
    /// - [`SmoteError::NotEnoughInstances`] if the class has fewer than
    ///   `k + 1` rows.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        ds: &Dataset,
        class: u32,
        n_new: usize,
        rng: &mut R,
    ) -> Result<Dataset, SmoteError> {
        if ds.schema().n_categorical() > 0 {
            return Err(SmoteError::CategoricalFeatures);
        }
        generate_impl(ds, class, n_new, self.params.k, rng)
    }
}

/// SMOTE-NC over mixed numeric/nominal datasets (Chawla et al. 2002 §6.1).
///
/// Numeric features interpolate as in classic SMOTE; nominal features take
/// the majority value among the `k` nearest neighbours; distances use the
/// SMOTE-NC median-std metric.
#[derive(Debug, Clone)]
pub struct SmoteNc {
    params: SmoteParams,
}

impl SmoteNc {
    /// Creates the oversampler.
    pub fn new(params: SmoteParams) -> Self {
        SmoteNc { params }
    }

    /// Generates `n_new` synthetic rows of class `class`.
    ///
    /// # Errors
    ///
    /// As [`Smote::generate`], except categorical features are supported.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        ds: &Dataset,
        class: u32,
        n_new: usize,
        rng: &mut R,
    ) -> Result<Dataset, SmoteError> {
        generate_impl(ds, class, n_new, self.params.k, rng)
    }
}

fn generate_impl<R: Rng + ?Sized>(
    ds: &Dataset,
    class: u32,
    n_new: usize,
    k: usize,
    rng: &mut R,
) -> Result<Dataset, SmoteError> {
    if (class as usize) >= ds.n_classes() {
        return Err(SmoteError::UnknownClass { class });
    }
    let members = ds.indices_of_class(class);
    if members.len() < k + 1 {
        return Err(SmoteError::NotEnoughInstances { available: members.len(), required: k + 1 });
    }
    let dist = MixedDistance::fit(ds, MixedMetric::SmoteNc);
    // Each synthetic row owns an independent RNG stream derived from one
    // draw of the caller's generator, so rows synthesize in parallel and the
    // output is bit-identical at any `FROTE_THREADS` (including the serial
    // fallback at 1 thread).
    let split = SeedSplit::from_rng(rng);
    let row_ids: Vec<u64> = (0..n_new as u64).collect();
    let rows = frote_par::par_map(&row_ids, |&t| {
        let mut rng = split.stream(t);
        let &base = members.choose(&mut rng).expect("non-empty members");
        let neighbors = k_nearest_of_row(ds, base, &members, k, &dist);
        let &Neighbor { index: neighbor, .. } =
            neighbors.choose(&mut rng).expect("k >= 1 neighbours exist");
        interpolate_row(ds, base, neighbor, &neighbors, &mut rng)
    });
    let mut out = Dataset::with_shared_schema(ds.schema_handle());
    for row in rows {
        out.push_row(&row, class).expect("synthesized row matches schema");
    }
    Ok(out)
}

/// Builds one synthetic row between `base` and `neighbor`; nominal features
/// take the majority among `neighbors`.
pub(crate) fn interpolate_row<R: Rng + ?Sized>(
    ds: &Dataset,
    base: usize,
    neighbor: usize,
    neighbors: &[Neighbor],
    rng: &mut R,
) -> Vec<Value> {
    let mut row = Vec::with_capacity(ds.n_features());
    for j in 0..ds.n_features() {
        match ds.schema().feature(j).kind() {
            FeatureKind::Numeric => {
                let a = ds.value(base, j).expect_num();
                let b = ds.value(neighbor, j).expect_num();
                let w: f64 = rng.random::<f64>();
                row.push(Value::Num(a + (b - a) * w));
            }
            FeatureKind::Categorical { categories } => {
                let values: Vec<u32> =
                    neighbors.iter().map(|n| ds.value(n.index, j).expect_cat()).collect();
                let stats = CategoricalStats::of(&values, categories.len());
                row.push(Value::Cat(stats.mode().expect("non-empty vocabulary")));
            }
        }
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::{Schema, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn numeric_ds() -> Dataset {
        let schema = Schema::builder("y", vec!["maj".into(), "min".into()])
            .numeric("x1")
            .numeric("x2")
            .build();
        let mut ds = Dataset::new(schema);
        for i in 0..40 {
            ds.push_row(&[Value::Num(i as f64), Value::Num(100.0 - i as f64)], 0).unwrap();
        }
        for i in 0..10 {
            ds.push_row(&[Value::Num(50.0 + i as f64), Value::Num(50.0 + i as f64)], 1).unwrap();
        }
        ds
    }

    #[test]
    fn synthetic_points_lie_in_minority_bounding_box() {
        let ds = numeric_ds();
        let mut rng = StdRng::seed_from_u64(42);
        let out = Smote::new(SmoteParams::default()).generate(&ds, 1, 100, &mut rng).unwrap();
        assert_eq!(out.n_rows(), 100);
        for i in 0..out.n_rows() {
            let x1 = out.value(i, 0).expect_num();
            let x2 = out.value(i, 1).expect_num();
            assert!((50.0..=59.0).contains(&x1), "x1 {x1}");
            assert!((50.0..=59.0).contains(&x2), "x2 {x2}");
            assert_eq!(out.label(i), 1);
        }
    }

    #[test]
    fn classic_rejects_categorical() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .categorical("k", vec!["p".into(), "q".into()])
            .build();
        let ds = Dataset::new(schema);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            Smote::new(SmoteParams::default()).generate(&ds, 0, 5, &mut rng),
            Err(SmoteError::CategoricalFeatures)
        );
    }

    #[test]
    fn too_small_class_errors() {
        let ds = numeric_ds();
        let mut rng = StdRng::seed_from_u64(0);
        let smote = Smote::new(SmoteParams { k: 20 });
        assert_eq!(
            smote.generate(&ds, 1, 5, &mut rng),
            Err(SmoteError::NotEnoughInstances { available: 10, required: 21 })
        );
        assert_eq!(smote.generate(&ds, 7, 5, &mut rng), Err(SmoteError::UnknownClass { class: 7 }));
    }

    #[test]
    fn smotenc_handles_mixed_features() {
        let schema = Schema::builder("y", vec!["maj".into(), "min".into()])
            .numeric("x")
            .categorical("k", vec!["p".into(), "q".into(), "r".into()])
            .build();
        let mut ds = Dataset::new(schema);
        for i in 0..30 {
            ds.push_row(&[Value::Num(i as f64), Value::Cat(0)], 0).unwrap();
        }
        for i in 0..10 {
            // Minority cluster mostly category 2.
            let c = if i % 5 == 0 { 1 } else { 2 };
            ds.push_row(&[Value::Num(100.0 + i as f64), Value::Cat(c)], 1).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(7);
        let out = SmoteNc::new(SmoteParams::default()).generate(&ds, 1, 50, &mut rng).unwrap();
        assert_eq!(out.n_rows(), 50);
        for i in 0..out.n_rows() {
            let x = out.value(i, 0).expect_num();
            assert!((100.0..=109.0).contains(&x));
            // Majority-of-neighbours should heavily favour category 2.
        }
        let twos = (0..out.n_rows()).filter(|&i| out.value(i, 1).expect_cat() == 2).count();
        assert!(twos > 25, "majority category underrepresented: {twos}");
    }

    #[test]
    fn determinism_per_seed() {
        let ds = numeric_ds();
        let s = Smote::new(SmoteParams::default());
        let a = s.generate(&ds, 1, 20, &mut StdRng::seed_from_u64(5)).unwrap();
        let b = s.generate(&ds, 1, 20, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn generation_is_shard_size_and_thread_invariant() {
        // The per-shard kNN scans under the generator must not move a bit:
        // synthetic rows are identical at any shard size × thread count.
        let ds = numeric_ds();
        let s = Smote::new(SmoteParams::default());
        let baseline = s.generate(&ds, 1, 40, &mut StdRng::seed_from_u64(9)).unwrap();
        for shard_rows in [4usize, 64] {
            for threads in [1usize, 2, 4] {
                let out = frote_par::test_support::with_threads(threads, || {
                    frote_data::sharded::test_support::with_shard_rows(shard_rows, || {
                        s.generate(&ds, 1, 40, &mut StdRng::seed_from_u64(9)).unwrap()
                    })
                });
                assert_eq!(
                    out, baseline,
                    "SMOTE drifted at shard_rows={shard_rows} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn zero_new_rows_is_fine() {
        let ds = numeric_ds();
        let mut rng = StdRng::seed_from_u64(1);
        let out = Smote::new(SmoteParams::default()).generate(&ds, 1, 0, &mut rng).unwrap();
        assert!(out.is_empty());
    }
}
