//! Borderline instance triage (Han et al. 2005).
//!
//! Instances are classified by how many of their `m` nearest neighbours carry
//! a *different* label `m'`:
//!
//! - `m' == m` — **noisy** (surrounded by the other classes),
//! - `m/2 <= m' < m` — **borderline** ("danger": near the decision boundary),
//! - `m' < m/2` — **safe**.
//!
//! FROTE's IP selection strategy weights borderline instances highest
//! (supplement A: `w = 3` borderline, `w = 1` noisy/safe, computed with
//! `k = 10` neighbours against the *model's predicted* labels).

use frote_data::Dataset;
use frote_ml::distance::{MixedDistance, MixedMetric};
use frote_ml::knn::{k_nearest_of_row, k_nearest_of_rows};
use frote_par::SeedSplit;

/// Triage category of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstanceKind {
    /// All neighbours disagree with the instance's label.
    Noisy,
    /// At least half (but not all) neighbours disagree.
    Borderline,
    /// Most neighbours agree.
    Safe,
}

impl InstanceKind {
    /// The IP-selection weight from the paper's supplement
    /// (borderline 3, otherwise 1).
    pub fn weight(self) -> f64 {
        match self {
            InstanceKind::Borderline => 3.0,
            InstanceKind::Noisy | InstanceKind::Safe => 1.0,
        }
    }
}

/// Classifies each row of `ds` among `candidates` using labels `labels`
/// (pass model *predictions* for FROTE's weighting, or ground-truth labels
/// for classic Borderline-SMOTE) and `m` nearest neighbours.
///
/// Returns one [`InstanceKind`] per entry of `candidates`.
///
/// # Panics
///
/// Panics if `labels.len() != ds.n_rows()` or `m == 0`.
pub fn classify_instances(
    ds: &Dataset,
    labels: &[u32],
    candidates: &[usize],
    m: usize,
) -> Vec<InstanceKind> {
    assert_eq!(labels.len(), ds.n_rows(), "one label per dataset row");
    assert!(m > 0, "neighbour count must be positive");
    let dist = MixedDistance::fit(ds, MixedMetric::SmoteNc);
    let all: Vec<usize> = (0..ds.n_rows()).collect();
    // The kNN scan dominates this triage; batch it across threads (results
    // are per-candidate and order-preserving, so the triage is identical at
    // any thread count).
    let neighborhoods = k_nearest_of_rows(ds, candidates, &all, m, &dist);
    candidates
        .iter()
        .zip(&neighborhoods)
        .map(|(&i, neighbors)| {
            let m_eff = neighbors.len().max(1);
            let differing = neighbors.iter().filter(|n| labels[n.index] != labels[i]).count();
            if differing == m_eff {
                InstanceKind::Noisy
            } else if differing * 2 >= m_eff {
                InstanceKind::Borderline
            } else {
                InstanceKind::Safe
            }
        })
        .collect()
}

/// Convenience: the supplement's IP weights for `candidates`, using `k = 10`
/// neighbours over `predicted` labels.
pub fn borderline_weights(ds: &Dataset, predicted: &[u32], candidates: &[usize]) -> Vec<f64> {
    classify_instances(ds, predicted, candidates, 10)
        .into_iter()
        .map(InstanceKind::weight)
        .collect()
}

/// Borderline-SMOTE1 (Han et al. 2005): oversample only the *danger*
/// (borderline) instances of the minority class, interpolating toward
/// same-class neighbours.
#[derive(Debug, Clone)]
pub struct BorderlineSmote {
    /// Neighbours for the danger triage (`m` in the paper).
    pub m: usize,
    /// Neighbours for interpolation (`k`).
    pub k: usize,
}

impl Default for BorderlineSmote {
    fn default() -> Self {
        BorderlineSmote { m: 5, k: 5 }
    }
}

impl BorderlineSmote {
    /// Generates `n_new` synthetic minority instances from borderline bases.
    ///
    /// # Errors
    ///
    /// - [`crate::SmoteError::UnknownClass`] for a bad class,
    /// - [`crate::SmoteError::NotEnoughInstances`] when the minority class
    ///   has fewer than `k + 1` members **or** no borderline members exist
    ///   (nothing is in danger, so Borderline-SMOTE has no work).
    pub fn generate<R: rand::Rng + ?Sized>(
        &self,
        ds: &Dataset,
        class: u32,
        n_new: usize,
        rng: &mut R,
    ) -> Result<Dataset, crate::SmoteError> {
        use crate::SmoteError;
        if (class as usize) >= ds.n_classes() {
            return Err(SmoteError::UnknownClass { class });
        }
        let members = ds.indices_of_class(class);
        if members.len() < self.k + 1 {
            return Err(SmoteError::NotEnoughInstances {
                available: members.len(),
                required: self.k + 1,
            });
        }
        let kinds = classify_instances(ds, ds.labels(), &members, self.m);
        let danger: Vec<usize> = members
            .iter()
            .zip(&kinds)
            .filter_map(|(&i, &k)| (k == InstanceKind::Borderline).then_some(i))
            .collect();
        if danger.is_empty() {
            return Err(SmoteError::NotEnoughInstances { available: 0, required: 1 });
        }
        let dist = MixedDistance::fit(ds, MixedMetric::SmoteNc);
        use rand::seq::IndexedRandom;
        // Per-row RNG streams (one split draw from the caller's generator)
        // keep the output bit-identical at any `FROTE_THREADS`.
        let split = SeedSplit::from_rng(rng);
        let row_ids: Vec<u64> = (0..n_new as u64).collect();
        let rows = frote_par::par_map(&row_ids, |&t| {
            let mut rng = split.stream(t);
            let &base = danger.choose(&mut rng).expect("non-empty danger set");
            let neighbors = k_nearest_of_row(ds, base, &members, self.k, &dist);
            if neighbors.is_empty() {
                return None;
            }
            let neighbor = neighbors.choose(&mut rng).expect("non-empty").index;
            Some(crate::smote_interpolate(ds, base, neighbor, &neighbors, &mut rng))
        });
        let mut out = frote_data::Dataset::with_shared_schema(ds.schema_handle());
        for row in rows.into_iter().flatten() {
            out.push_row(&row, class).expect("interpolated row matches schema");
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::{Schema, Value};

    /// Two 1-D clusters with a contested middle: [0..10) class 0,
    /// [10..20) class 1, plus one class-0 point deep inside class 1.
    fn ds() -> (Dataset, Vec<u32>) {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut d = Dataset::new(schema);
        for i in 0..10 {
            d.push_row(&[Value::Num(i as f64)], 0).unwrap();
        }
        for i in 10..20 {
            d.push_row(&[Value::Num(i as f64)], 1).unwrap();
        }
        d.push_row(&[Value::Num(17.5)], 0).unwrap(); // noisy point, idx 20
        let labels = d.labels().to_vec();
        (d, labels)
    }

    #[test]
    fn noisy_safe_borderline_triage() {
        let (d, labels) = ds();
        let all: Vec<usize> = (0..d.n_rows()).collect();
        let kinds = classify_instances(&d, &labels, &all, 5);
        // Deep interior of class 0 is safe.
        assert_eq!(kinds[2], InstanceKind::Safe);
        // The planted intruder is noisy: all 5 neighbours are class 1.
        assert_eq!(kinds[20], InstanceKind::Noisy);
        // Points at the 9/10 boundary see a mixed neighbourhood.
        assert!(matches!(kinds[9], InstanceKind::Borderline | InstanceKind::Safe));
        let n_borderline = kinds.iter().filter(|&&k| k == InstanceKind::Borderline).count();
        assert!(n_borderline >= 1, "expected a contested boundary, got {kinds:?}");
        // The cluster-boundary point 10 sees 3/5 differing neighbours.
        assert_eq!(kinds[10], InstanceKind::Borderline);
    }

    #[test]
    fn weights_follow_supplement() {
        assert_eq!(InstanceKind::Borderline.weight(), 3.0);
        assert_eq!(InstanceKind::Safe.weight(), 1.0);
        assert_eq!(InstanceKind::Noisy.weight(), 1.0);
    }

    #[test]
    fn borderline_weights_shape() {
        let (d, labels) = ds();
        let cands = vec![0, 9, 20];
        let w = borderline_weights(&d, &labels, &cands);
        assert_eq!(w.len(), 3);
        assert!(w.iter().all(|&x| x == 1.0 || x == 3.0));
    }

    #[test]
    fn classify_against_predictions_not_truth() {
        let (d, _) = ds();
        // Pretend a model predicts everything as class 0: then nothing
        // disagrees with anything -> all safe.
        let preds = vec![0u32; d.n_rows()];
        let all: Vec<usize> = (0..d.n_rows()).collect();
        let kinds = classify_instances(&d, &preds, &all, 5);
        assert!(kinds.iter().all(|&k| k == InstanceKind::Safe));
    }

    #[test]
    #[should_panic(expected = "one label per dataset row")]
    fn label_arity_checked() {
        let (d, _) = ds();
        classify_instances(&d, &[0, 1], &[0], 5);
    }

    #[test]
    fn small_candidate_sets() {
        let (d, labels) = ds();
        let kinds = classify_instances(&d, &labels, &[], 5);
        assert!(kinds.is_empty());
    }

    #[test]
    fn borderline_smote_generates_near_the_boundary() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (d, _) = ds();
        let mut rng = StdRng::seed_from_u64(42);
        let out = BorderlineSmote::default().generate(&d, 1, 30, &mut rng).unwrap();
        assert_eq!(out.n_rows(), 30);
        // Danger members of class 1 sit near x = 10; synthetic points are
        // convex combinations within the class, so they stay in [10, 20].
        for i in 0..out.n_rows() {
            let x = out.value(i, 0).expect_num();
            assert!((10.0..=20.0).contains(&x), "x = {x}");
            assert_eq!(out.label(i), 1);
        }
    }

    #[test]
    fn borderline_smote_errors_without_danger() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Two far-apart pure clusters: nothing is borderline.
        let schema =
            frote_data::Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut d = Dataset::new(schema);
        for i in 0..10 {
            d.push_row(&[frote_data::Value::Num(i as f64)], 0).unwrap();
            d.push_row(&[frote_data::Value::Num(1000.0 + i as f64)], 1).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(0);
        let err = BorderlineSmote::default().generate(&d, 1, 5, &mut rng).unwrap_err();
        assert!(matches!(err, crate::SmoteError::NotEnoughInstances { .. }));
    }

    #[test]
    fn borderline_smote_validates_class() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (d, _) = ds();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            BorderlineSmote::default().generate(&d, 9, 5, &mut rng),
            Err(crate::SmoteError::UnknownClass { class: 9 })
        ));
    }
}
