//! Error type for the smote crate.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by oversampling.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SmoteError {
    /// The target class has too few instances for the requested `k`.
    NotEnoughInstances {
        /// Instances available in the class.
        available: usize,
        /// Minimum required (`k + 1`).
        required: usize,
    },
    /// The requested class does not exist in the dataset's schema.
    UnknownClass {
        /// The offending class.
        class: u32,
    },
    /// Classic SMOTE was asked to run on a dataset with categorical
    /// features; use SMOTE-NC instead.
    CategoricalFeatures,
}

impl fmt::Display for SmoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmoteError::NotEnoughInstances { available, required } => {
                write!(f, "class has {available} instances, oversampling needs {required}")
            }
            SmoteError::UnknownClass { class } => write!(f, "unknown class {class}"),
            SmoteError::CategoricalFeatures => {
                write!(f, "classic smote requires all-numeric features; use smote-nc")
            }
        }
    }
}

impl StdError for SmoteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            SmoteError::NotEnoughInstances { available: 2, required: 6 }.to_string(),
            "class has 2 instances, oversampling needs 6"
        );
        assert_eq!(SmoteError::UnknownClass { class: 9 }.to_string(), "unknown class 9");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<SmoteError>();
    }
}
