//! # frote-smote
//!
//! The oversampling substrates FROTE builds on: classic SMOTE (Chawla et
//! al. 2002), SMOTE-NC for mixed numeric/nominal data, and the
//! Borderline-SMOTE instance triage (Han et al. 2005) that FROTE's IP
//! selection strategy reuses for instance weighting.
//!
//! FROTE's own generator (in the `frote` crate) extends these: neighbours are
//! constrained by feedback-rule coverage instead of class, and generated
//! instances must satisfy the rule's clause. The classic algorithms here are
//! the baselines those extensions are measured against and are exercised by
//! the benchmark suite.
//!
//! ```
//! use frote_data::synth::{DatasetKind, SynthConfig};
//! use frote_smote::{SmoteNc, SmoteParams};
//! use rand::SeedableRng;
//!
//! let ds = DatasetKind::Contraceptive
//!     .generate(&SynthConfig { n_rows: 300, ..Default::default() });
//! let minority = 1; // oversample class 1
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let synthetic = SmoteNc::new(SmoteParams::default())
//!     .generate(&ds, minority, 50, &mut rng)
//!     .unwrap();
//! assert_eq!(synthetic.n_rows(), 50);
//! assert!(synthetic.labels().iter().all(|&l| l == minority));
//! ```

#![warn(missing_docs)]

pub mod borderline;
mod error;
mod smote;

pub use borderline::{borderline_weights, classify_instances, BorderlineSmote, InstanceKind};
pub use error::SmoteError;
pub use smote::{Smote, SmoteNc, SmoteParams};

pub(crate) use smote::interpolate_row as smote_interpolate;
