//! # frote-overlay
//!
//! The Overlay baseline (Daly et al. 2021, "User driven model adjustment via
//! boolean rule explanations") that FROTE is compared against in the paper's
//! Table 2 and supplement Tables 7–8.
//!
//! Overlay is a *post-processing layer*: the underlying model is never
//! retrained. When a prediction request arrives, Overlay checks whether a
//! feedback rule covers the point and, if so:
//!
//! - **Hard constraints** ([`OverlayMode::Hard`]): return the feedback
//!   rule's class outright.
//! - **Soft constraints** ([`OverlayMode::Soft`]): transform the point into
//!   the model's own region for the rule's class and return the model's
//!   prediction on the transformed point, letting the model keep a say.
//!
//! Daly et al. derive the soft transformation from mappings between the
//! model's original explanation rules and the edited feedback rules. This
//! reproduction learns an equivalent data-driven transformation: features
//! constrained by the rule's clause stay fixed (they define the user's
//! region), while the remaining features are replaced by a *prototype* —
//! per-feature median/mode of the training points the model already assigns
//! to the target class. When the model never predicts the class, the
//! transformation has nothing to anchor to and Soft falls back to the raw
//! model prediction — reproducing the paper's finding that Overlay degrades
//! when feedback rules "differ too significantly from the underlying model"
//! (see DESIGN.md §3).

#![warn(missing_docs)]

use frote_data::{Column, Dataset, Value};
use frote_ml::Classifier;
use frote_rules::{Clause, FeedbackRuleSet};

/// Hard vs. soft constraint handling (paper §5.2 "Comparison with the
/// existing work").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlayMode {
    /// Feedback rules override the model inside their coverage.
    Hard,
    /// Covered inputs are transformed toward the model's region for the
    /// rule's class; the model's prediction on the transformed input wins.
    Soft,
}

/// The Overlay post-processing layer wrapping a trained model.
pub struct Overlay<'a> {
    model: &'a dyn Classifier,
    frs: FeedbackRuleSet,
    mode: OverlayMode,
    /// Trigger clauses aligned with the rules: the patch for rule `r` fires
    /// when the input matches the feedback clause **or** `triggers[r]`. In
    /// Daly et al. the trigger is the *original* model-explanation rule the
    /// user edited — the layer keys on the model's own region, which is what
    /// makes the patch misfire when the feedback deviates strongly. Empty
    /// triggers (the [`Overlay::new`] path) fall back to feedback clauses
    /// only.
    triggers: Vec<Option<Clause>>,
    /// `prototypes[c]` is the per-feature prototype of model-class `c`, or
    /// `None` when the model predicts `c` nowhere on the reference data.
    prototypes: Vec<Option<Vec<Value>>>,
}

impl<'a> Overlay<'a> {
    /// Builds an overlay over `model` with feedback rules `frs`, learning
    /// soft-transformation prototypes from `reference` (the training data).
    pub fn new(
        model: &'a dyn Classifier,
        frs: FeedbackRuleSet,
        mode: OverlayMode,
        reference: &Dataset,
    ) -> Self {
        let triggers = vec![None; frs.len()];
        Self::with_triggers(model, frs, triggers, mode, reference)
    }

    /// Builds an overlay whose rule `r` additionally fires on rows matching
    /// `triggers[r]` (the original explanation rule the user edited; see the
    /// field docs).
    ///
    /// # Panics
    ///
    /// Panics if `triggers.len() != frs.len()`.
    pub fn with_triggers(
        model: &'a dyn Classifier,
        frs: FeedbackRuleSet,
        triggers: Vec<Option<Clause>>,
        mode: OverlayMode,
        reference: &Dataset,
    ) -> Self {
        assert_eq!(triggers.len(), frs.len(), "one trigger slot per rule");
        let prototypes = match mode {
            OverlayMode::Hard => vec![None; model.n_classes()],
            OverlayMode::Soft => build_prototypes(model, reference),
        };
        Overlay { model, frs, mode, triggers, prototypes }
    }

    /// Index of the first rule whose feedback clause or trigger matches.
    fn applicable_rule(&self, row: &[Value]) -> Option<usize> {
        (0..self.frs.len()).find(|&r| {
            self.frs.rule(r).covers(row)
                || self.triggers[r].as_ref().is_some_and(|t| t.satisfied_by(row))
        })
    }

    /// The constraint mode.
    pub fn mode(&self) -> OverlayMode {
        self.mode
    }

    /// The wrapped rule set.
    pub fn rules(&self) -> &FeedbackRuleSet {
        &self.frs
    }

    /// Predicts with post-processing applied.
    pub fn predict(&self, row: &[Value]) -> u32 {
        match self.applicable_rule(row) {
            None => self.model.predict(row),
            Some(r) => {
                let rule = self.frs.rule(r);
                let target = rule.dist().mode();
                match self.mode {
                    OverlayMode::Hard => target,
                    OverlayMode::Soft => match self.transform(row, rule.clause(), target) {
                        Some(t) => self.model.predict(&t),
                        None => self.model.predict(row),
                    },
                }
            }
        }
    }

    /// Predictions for the dataset rows listed in `rows` (in that order),
    /// with a reused row scratch.
    pub fn predict_rows(&self, ds: &Dataset, rows: &[usize]) -> Vec<u32> {
        let mut row = Vec::with_capacity(ds.n_features());
        rows.iter()
            .map(|&i| {
                ds.row_into(i, &mut row);
                self.predict(&row)
            })
            .collect()
    }

    /// Predictions for a whole dataset, computed in parallel over row
    /// blocks with a reused row scratch (identical to the serial per-row
    /// loop at any `FROTE_THREADS`).
    pub fn predict_dataset(&self, ds: &Dataset) -> Vec<u32> {
        frote_par::par_blocks_map(ds.n_rows(), 256, |_, rows| {
            let mut row = Vec::with_capacity(ds.n_features());
            let mut out = Vec::with_capacity(rows.len());
            for i in rows {
                ds.row_into(i, &mut row);
                out.push(self.predict(&row));
            }
            out
        })
    }

    /// Soft transformation: keep clause-constrained features, replace the
    /// rest with the target class's prototype.
    fn transform(
        &self,
        row: &[Value],
        clause: &frote_rules::Clause,
        target: u32,
    ) -> Option<Vec<Value>> {
        let proto = self.prototypes.get(target as usize)?.as_ref()?;
        let constrained: Vec<bool> = {
            let mut c = vec![false; row.len()];
            for p in clause.predicates() {
                c[p.feature()] = true;
            }
            c
        };
        Some(
            row.iter()
                .zip(proto)
                .zip(&constrained)
                .map(|((&orig, &p), &keep)| if keep { orig } else { p })
                .collect(),
        )
    }
}

/// Per-class prototypes under the model's own predictions: medians of
/// numeric features, modes of categorical features.
fn build_prototypes(model: &dyn Classifier, reference: &Dataset) -> Vec<Option<Vec<Value>>> {
    let predicted = model.predict_dataset(reference);
    (0..model.n_classes() as u32)
        .map(|c| {
            let members: Vec<usize> =
                (0..reference.n_rows()).filter(|&i| predicted[i] == c).collect();
            if members.is_empty() {
                return None;
            }
            let proto = (0..reference.n_features())
                .map(|j| match reference.column(j) {
                    Column::Numeric(v) => {
                        let mut vals: Vec<f64> = members.iter().map(|&i| v[i]).collect();
                        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                        Value::Num(vals[vals.len() / 2])
                    }
                    Column::Categorical(v) => {
                        let card = reference
                            .schema()
                            .feature(j)
                            .kind()
                            .cardinality()
                            .expect("categorical");
                        let mut counts = vec![0usize; card];
                        for &i in &members {
                            counts[v[i] as usize] += 1;
                        }
                        let mode = counts
                            .iter()
                            .enumerate()
                            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
                            .map(|(i, _)| i as u32)
                            .expect("non-empty vocabulary");
                        Value::Cat(mode)
                    }
                })
                .collect();
            Some(proto)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::Schema;
    use frote_rules::{Clause, FeedbackRule, LabelDist, Op, Predicate};

    /// A stub model: class 1 iff x >= 10.
    struct Threshold;
    impl Classifier for Threshold {
        fn n_classes(&self) -> usize {
            2
        }
        fn predict_proba_into(&self, row: &[Value], out: &mut Vec<f64>) {
            out.clear();
            if row[0].expect_num() >= 10.0 {
                out.extend_from_slice(&[0.0, 1.0]);
            } else {
                out.extend_from_slice(&[1.0, 0.0]);
            }
        }
    }

    fn reference() -> Dataset {
        let schema = Schema::builder("y", vec!["neg".into(), "pos".into()])
            .numeric("x")
            .numeric("z")
            .build();
        let mut ds = Dataset::new(schema);
        for i in 0..20 {
            let x = i as f64;
            ds.push_row(&[Value::Num(x), Value::Num(100.0 + x)], u32::from(x >= 10.0)).unwrap();
        }
        ds
    }

    fn rule_x_lt_5_is_pos() -> FeedbackRuleSet {
        FeedbackRuleSet::new(vec![FeedbackRule::new(
            Clause::new(vec![Predicate::new(0, Op::Lt, Value::Num(5.0))]),
            LabelDist::Deterministic(1),
        )])
    }

    #[test]
    fn hard_overrides_inside_coverage() {
        let model = Threshold;
        let ds = reference();
        let ov = Overlay::new(&model, rule_x_lt_5_is_pos(), OverlayMode::Hard, &ds);
        assert_eq!(ov.predict(&[Value::Num(2.0), Value::Num(0.0)]), 1); // overridden
        assert_eq!(ov.predict(&[Value::Num(7.0), Value::Num(0.0)]), 0); // outside rule
        assert_eq!(ov.predict(&[Value::Num(15.0), Value::Num(0.0)]), 1); // model
        assert_eq!(ov.mode(), OverlayMode::Hard);
        assert_eq!(ov.rules().len(), 1);
    }

    #[test]
    fn soft_keeps_constrained_features() {
        // Soft: x stays (it is clause-constrained), z is replaced by the
        // class-1 prototype median. The model only looks at x, so the rule
        // deviates too much and the model still answers 0 — exactly the
        // "rules too divergent" failure mode of the paper.
        let model = Threshold;
        let ds = reference();
        let ov = Overlay::new(&model, rule_x_lt_5_is_pos(), OverlayMode::Soft, &ds);
        assert_eq!(ov.predict(&[Value::Num(2.0), Value::Num(0.0)]), 0);
    }

    #[test]
    fn soft_wins_when_model_supports_class_via_unconstrained_features() {
        // A model that looks at z: class 1 iff z >= 110. A rule constraining
        // only x lets the prototype z (median of predicted-1 points) flip
        // the prediction.
        struct ZModel;
        impl Classifier for ZModel {
            fn n_classes(&self) -> usize {
                2
            }
            fn predict_proba_into(&self, row: &[Value], out: &mut Vec<f64>) {
                out.clear();
                if row[1].expect_num() >= 110.0 {
                    out.extend_from_slice(&[0.0, 1.0]);
                } else {
                    out.extend_from_slice(&[1.0, 0.0]);
                }
            }
        }
        let model = ZModel;
        let ds = reference();
        let ov = Overlay::new(&model, rule_x_lt_5_is_pos(), OverlayMode::Soft, &ds);
        // Covered point with small z: prototype z for class 1 is >= 110.
        assert_eq!(ov.predict(&[Value::Num(2.0), Value::Num(0.0)]), 1);
    }

    #[test]
    fn soft_falls_back_when_model_never_predicts_class() {
        struct AlwaysZero;
        impl Classifier for AlwaysZero {
            fn n_classes(&self) -> usize {
                2
            }
            fn predict_proba_into(&self, _row: &[Value], out: &mut Vec<f64>) {
                out.clear();
                out.extend_from_slice(&[1.0, 0.0]);
            }
        }
        let model = AlwaysZero;
        let ds = reference();
        let ov = Overlay::new(&model, rule_x_lt_5_is_pos(), OverlayMode::Soft, &ds);
        // No prototype for class 1 exists; prediction falls back to model.
        assert_eq!(ov.predict(&[Value::Num(2.0), Value::Num(0.0)]), 0);
    }

    #[test]
    fn predict_dataset_maps_rows() {
        let model = Threshold;
        let ds = reference();
        let ov = Overlay::new(&model, rule_x_lt_5_is_pos(), OverlayMode::Hard, &ds);
        let preds = ov.predict_dataset(&ds);
        assert_eq!(preds.len(), ds.n_rows());
        assert_eq!(preds[0], 1); // x=0 covered, overridden
        assert_eq!(preds[6], 0);
    }

    #[test]
    fn triggers_extend_the_patch_region() {
        use frote_rules::{Op, Predicate};
        let model = Threshold;
        let ds = reference();
        // Feedback rule covers x < 5; the original explanation rule the user
        // edited covered x < 12 — the patch keys on both regions.
        let trigger = Clause::new(vec![Predicate::new(0, Op::Lt, Value::Num(12.0))]);
        let ov = Overlay::with_triggers(
            &model,
            rule_x_lt_5_is_pos(),
            vec![Some(trigger)],
            OverlayMode::Hard,
            &ds,
        );
        // Inside the feedback clause: overridden.
        assert_eq!(ov.predict(&[Value::Num(2.0), Value::Num(0.0)]), 1);
        // Outside the feedback clause but inside the trigger: ALSO
        // overridden — the misfire that costs Overlay outside-coverage
        // F-score in the paper's Table 8.
        assert_eq!(ov.predict(&[Value::Num(8.0), Value::Num(0.0)]), 1);
        // Outside both: the raw model.
        assert_eq!(ov.predict(&[Value::Num(15.0), Value::Num(0.0)]), 1);
        assert_eq!(ov.predict(&[Value::Num(13.0), Value::Num(0.0)]), 1);
    }

    #[test]
    #[should_panic(expected = "one trigger slot per rule")]
    fn trigger_arity_checked() {
        let model = Threshold;
        let ds = reference();
        Overlay::with_triggers(&model, rule_x_lt_5_is_pos(), vec![], OverlayMode::Hard, &ds);
    }

    #[test]
    fn empty_ruleset_is_identity() {
        let model = Threshold;
        let ds = reference();
        let ov = Overlay::new(&model, FeedbackRuleSet::empty(), OverlayMode::Hard, &ds);
        for i in 0..ds.n_rows() {
            assert_eq!(ov.predict(&ds.row(i)), model.predict(&ds.row(i)));
        }
    }
}
