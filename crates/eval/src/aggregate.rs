//! Aggregation across runs: mean ± std and box-plot statistics.

/// Mean/std summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for n < 2).
    pub std: f64,
    /// Sample size.
    pub n: usize,
}

impl Summary {
    /// Summarizes `values` (0-mean/0-std for empty input).
    pub fn of(values: &[f64]) -> Summary {
        let n = values.len();
        if n == 0 {
            return Summary { mean: 0.0, std: 0.0, n: 0 };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let std = if n < 2 {
            0.0
        } else {
            let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        Summary { mean, std, n }
    }

    /// Formats as `0.025 ± 0.039` with 3 decimals (the paper's table style).
    pub fn display(&self) -> String {
        format!("{:.3} ± {:.3}", self.mean, self.std)
    }
}

/// Box-plot statistics: median, quartiles, and 1.5·IQR whiskers clipped to
/// the data (the paper's figures use standard box plots).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Lower whisker.
    pub lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker.
    pub hi: f64,
}

impl BoxStats {
    /// Computes box statistics; returns `None` for empty input.
    pub fn of(values: &[f64]) -> Option<BoxStats> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let q = |p: f64| -> f64 {
            let idx = p * (sorted.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let frac = idx - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        };
        let q1 = q(0.25);
        let median = q(0.5);
        let q3 = q(0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let lo = sorted.iter().copied().find(|&v| v >= lo_fence).unwrap_or(sorted[0]);
        let hi = sorted
            .iter()
            .rev()
            .copied()
            .find(|&v| v <= hi_fence)
            .unwrap_or(sorted[sorted.len() - 1]);
        Some(BoxStats { lo, q1, median, q3, hi })
    }

    /// Compact rendering `lo/q1/med/q3/hi` with 3 decimals.
    pub fn display(&self) -> String {
        format!("{:.3}/{:.3}/{:.3}/{:.3}/{:.3}", self.lo, self.q1, self.median, self.q3, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.n, 4);
        assert_eq!(s.display(), "2.500 ± 1.291");
    }

    #[test]
    fn summary_edge_cases() {
        assert_eq!(Summary::of(&[]).n, 0);
        let s = Summary::of(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn box_stats_median_and_quartiles() {
        let vals: Vec<f64> = (1..=9).map(f64::from).collect();
        let b = BoxStats::of(&vals).unwrap();
        assert_eq!(b.median, 5.0);
        assert_eq!(b.q1, 3.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.lo, 1.0);
        assert_eq!(b.hi, 9.0);
    }

    #[test]
    fn box_stats_whiskers_clip_outliers() {
        let mut vals: Vec<f64> = (1..=9).map(f64::from).collect();
        vals.push(100.0); // far outlier
        let b = BoxStats::of(&vals).unwrap();
        assert!(b.hi < 100.0, "hi {}", b.hi);
    }

    #[test]
    fn box_stats_empty() {
        assert!(BoxStats::of(&[]).is_none());
    }
}
