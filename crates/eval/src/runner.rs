//! The per-run experimental pipeline shared by all experiments.

use frote::objective::{paper_j, ObjectiveValue};
use frote::{Frote, FroteConfig, LabelPolicy, ModStrategy, SelectionStrategy};
use frote_data::Dataset;
use frote_rules::FeedbackRuleSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::models::ModelKind;
use crate::protocol::tcf_split;
use crate::scale::Scale;
use crate::setup::{draw_conflict_free_frs, BenchmarkSetup};

/// Everything that varies across the paper's experimental cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// Model family.
    pub model: ModelKind,
    /// Experiment scale.
    pub scale: Scale,
    /// Feedback rule set size `|F|`.
    pub frs_size: usize,
    /// Training coverage fraction `tcf`.
    pub tcf: f64,
    /// Input modification strategy.
    pub mod_strategy: ModStrategy,
    /// Base-instance selection strategy.
    pub selection: SelectionStrategy,
    /// Labelling of generated instances.
    pub label_policy: LabelPolicy,
}

impl RunSpec {
    /// The defaults shared by most experiments: `relabel`, `random`,
    /// deterministic labels, `tcf = 0.2`, `|F| = 3`.
    pub fn new(model: ModelKind, scale: Scale) -> RunSpec {
        RunSpec {
            model,
            scale,
            frs_size: 3,
            tcf: 0.2,
            mod_strategy: ModStrategy::Relabel,
            selection: SelectionStrategy::Random,
            label_policy: LabelPolicy::FromRule,
        }
    }
}

/// Held-out-test measurements of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Test objective of the model trained on the unmodified training set.
    pub initial: ObjectiveValue,
    /// Test objective after the modification strategy (the paper's
    /// `relabel` / `none` / `drop` midpoint).
    pub modified: ObjectiveValue,
    /// Test objective after FROTE's augmentation.
    pub final_: ObjectiveValue,
    /// Synthetic instances added.
    pub instances_added: usize,
    /// Training rows before augmentation.
    pub train_rows: usize,
    /// The rules actually drawn (may be fewer than requested).
    pub frs_len: usize,
}

impl RunResult {
    /// `ΔJ` of augmentation over the initial model (Table 3's metric).
    pub fn delta_j(&self) -> f64 {
        self.final_.j - self.initial.j
    }

    /// `ΔMRA` over the initial model.
    pub fn delta_mra(&self) -> f64 {
        self.final_.mra - self.initial.mra
    }

    /// `ΔF1` over the initial model.
    pub fn delta_f1(&self) -> f64 {
        self.final_.f1 - self.initial.f1
    }

    /// Instances added as a fraction of the training set (Table 4's
    /// `Δ#Ins/|D|`).
    pub fn added_fraction(&self) -> f64 {
        self.instances_added as f64 / self.train_rows.max(1) as f64
    }
}

/// A run with its FRS, split and RNG drawn but no training done yet —
/// lets experiments that need mid-run access to the test set (Figure 9)
/// drive FROTE themselves.
pub struct PreparedRun {
    /// The conflict-free FRS drawn for this run.
    pub frs: FeedbackRuleSet,
    /// Training split.
    pub train: Dataset,
    /// Held-out test split.
    pub test: Dataset,
    /// The run's RNG, positioned after the draws.
    pub rng: StdRng,
}

/// Draws the FRS and the tcf split for one run. `None` when the draw/split
/// degenerates (no rules, empty or tiny split) — callers simply skip the
/// run, as the paper skips configurations where no conflict-free FRS exists.
pub fn prepare_run(setup: &BenchmarkSetup, spec: &RunSpec, run_seed: u64) -> Option<PreparedRun> {
    let mut rng = StdRng::seed_from_u64(run_seed);
    let frs = draw_conflict_free_frs(setup, spec.frs_size, &mut rng);
    if frs.is_empty() {
        return None;
    }
    let (train, test) = tcf_split(&setup.dataset, &frs, spec.tcf, &mut rng);
    if train.n_rows() < 20 || test.is_empty() {
        return None;
    }
    Some(PreparedRun { frs, train, test, rng })
}

/// The FROTE configuration a spec implies (the runner applies the
/// modification strategy itself, so FROTE always receives `ModStrategy::None`).
pub fn frote_config(setup: &BenchmarkSetup, spec: &RunSpec) -> FroteConfig {
    FroteConfig {
        iteration_limit: spec.scale.iteration_limit(),
        instances_per_iteration: Some(spec.scale.eta(setup.kind)),
        selection: spec.selection,
        label_policy: spec.label_policy,
        mod_strategy: ModStrategy::None,
        ..Default::default()
    }
}

/// Runs one experimental cell instance: draw FRS → tcf split → train initial
/// → modify → FROTE → score everything on the test set.
///
/// Returns `None` when the draw/split degenerates; see [`prepare_run`].
pub fn run_once(setup: &BenchmarkSetup, spec: &RunSpec, run_seed: u64) -> Option<RunResult> {
    let PreparedRun { frs, train, test, mut rng } = prepare_run(setup, spec, run_seed)?;
    let trainer = spec.model.trainer(spec.scale);

    let initial_model = trainer.train(&train);
    let initial = paper_j(initial_model.as_ref(), &test, &frs);

    let modified_ds = spec.mod_strategy.apply(&train, &frs);
    if modified_ds.n_rows() < 20 {
        return None;
    }
    let modified_model = trainer.train(&modified_ds);
    let modified = paper_j(modified_model.as_ref(), &test, &frs);

    let config = frote_config(setup, spec);
    let out = Frote::new(config).run(&modified_ds, trainer.as_ref(), &frs, &mut rng).ok()?;
    let final_ = paper_j(out.model.as_ref(), &test, &frs);

    Some(RunResult {
        initial,
        modified,
        final_,
        instances_added: out.report.instances_added,
        train_rows: train.n_rows(),
        frs_len: frs.len(),
    })
}

/// Convenience: collects the non-degenerate results of `runs` seeded runs.
///
/// Runs are independent (each is a pure function of its seed), so they fan
/// out across `frote_par::threads()` threads; the collected results are
/// identical to the serial loop, in run order, at any thread count.
pub fn run_many(
    setup: &BenchmarkSetup,
    spec: &RunSpec,
    runs: usize,
    base_seed: u64,
) -> Vec<RunResult> {
    let seeds: Vec<u64> = (0..runs).map(|r| base_seed.wrapping_add(r as u64 * 1001)).collect();
    frote_par::par_map(&seeds, |&seed| run_once(setup, spec, seed)).into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::prepare;
    use frote_data::synth::DatasetKind;

    #[test]
    fn run_once_produces_consistent_measurements() {
        let setup = prepare(DatasetKind::Car, Scale::Smoke, 42);
        let spec = RunSpec::new(ModelKind::Rf, Scale::Smoke);
        let result = run_once(&setup, &spec, 1).expect("run should not degenerate");
        assert!(result.frs_len >= 1);
        assert!(result.train_rows >= 20);
        // All objective values are probabilities-like in [0, 1].
        for v in [result.initial, result.modified, result.final_] {
            assert!((0.0..=1.0).contains(&v.j), "j {}", v.j);
            assert!((0.0..=1.0).contains(&v.mra));
            assert!((0.0..=1.0).contains(&v.f1));
        }
        assert!(result.added_fraction() >= 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let setup = prepare(DatasetKind::Car, Scale::Smoke, 42);
        let spec = RunSpec::new(ModelKind::Rf, Scale::Smoke);
        let a = run_once(&setup, &spec, 5);
        let b = run_once(&setup, &spec, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn prepare_run_exposes_split_and_frs() {
        let setup = prepare(DatasetKind::Car, Scale::Smoke, 42);
        let spec = RunSpec::new(ModelKind::Rf, Scale::Smoke);
        let p = prepare_run(&setup, &spec, 2).unwrap();
        assert!(!p.frs.is_empty());
        assert_eq!(p.train.n_rows() + p.test.n_rows(), setup.dataset.n_rows());
    }

    #[test]
    fn run_many_collects() {
        let setup = prepare(DatasetKind::Car, Scale::Smoke, 42);
        let spec = RunSpec::new(ModelKind::Rf, Scale::Smoke);
        let results = run_many(&setup, &spec, 2, 100);
        assert!(!results.is_empty());
    }
}
