//! Experiment scales: CI-sized smoke runs vs. the paper's run counts.

use frote_data::synth::DatasetKind;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Shrunk datasets, few runs, short augmentation loops — finishes in
    /// seconds per experiment; used by integration tests and CI.
    #[default]
    Smoke,
    /// Intermediate: 2000-row datasets, 10 runs, `τ = 50`. Minutes per
    /// experiment — the overnight-sweep setting.
    Medium,
    /// The paper's counts: full Table 1 dataset sizes, 30–50 runs,
    /// `τ = 200`. Hours of compute, as in the paper (which capped runs at
    /// 24 h).
    Paper,
}

impl Scale {
    /// Parses `"smoke"` / `"paper"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Rows to synthesize for `kind` (0 = the paper's Table 1 count).
    pub fn n_rows(self, kind: DatasetKind) -> usize {
        match self {
            Scale::Smoke => kind.paper_n_rows().min(600),
            Scale::Medium => kind.paper_n_rows().min(2000),
            Scale::Paper => 0,
        }
    }

    /// Independent runs per experimental cell (the paper uses 30–50).
    pub fn runs(self) -> usize {
        match self {
            Scale::Smoke => 3,
            Scale::Medium => 10,
            Scale::Paper => 30,
        }
    }

    /// Runs for the Overlay comparison (the paper uses 50 there).
    pub fn overlay_runs(self) -> usize {
        match self {
            Scale::Smoke => 3,
            Scale::Medium => 10,
            Scale::Paper => 50,
        }
    }

    /// FROTE iteration limit `τ` (paper: 200).
    pub fn iteration_limit(self) -> usize {
        match self {
            Scale::Smoke => 8,
            Scale::Medium => 50,
            Scale::Paper => 200,
        }
    }

    /// Rule-pool size (paper: 100 rules per dataset).
    pub fn pool_size(self) -> usize {
        match self {
            Scale::Smoke => 30,
            Scale::Medium => 60,
            Scale::Paper => 100,
        }
    }

    /// The per-iteration generation count `η` the paper assigns per dataset
    /// (§5.1 Configuration), scaled down proportionally for smoke runs.
    pub fn eta(self, kind: DatasetKind) -> usize {
        let paper_eta = match kind {
            DatasetKind::Adult => 200,
            DatasetKind::Nursery
            | DatasetKind::Mushroom
            | DatasetKind::Splice
            | DatasetKind::WineQuality => 50,
            DatasetKind::Car | DatasetKind::Contraceptive | DatasetKind::BreastCancer => 20,
        };
        match self {
            Scale::Paper => paper_eta,
            Scale::Medium => (paper_eta / 2).max(10),
            Scale::Smoke => (paper_eta / 4).max(5),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("huge"), None);
        assert_eq!(Scale::Smoke.name(), "smoke");
    }

    #[test]
    fn smoke_is_smaller_everywhere() {
        for kind in DatasetKind::ALL {
            let smoke = Scale::Smoke.n_rows(kind);
            assert!(smoke <= 600 && smoke > 0);
            assert!(Scale::Smoke.eta(kind) <= 50);
        }
        assert!(Scale::Smoke.runs() < Scale::Paper.runs());
        assert!(Scale::Smoke.iteration_limit() < Scale::Paper.iteration_limit());
    }

    #[test]
    fn paper_matches_section_5_1() {
        assert_eq!(Scale::Paper.eta(DatasetKind::Adult), 200);
        assert_eq!(Scale::Paper.eta(DatasetKind::Nursery), 50);
        assert_eq!(Scale::Paper.eta(DatasetKind::BreastCancer), 20);
        assert_eq!(Scale::Paper.iteration_limit(), 200);
        assert_eq!(Scale::Paper.pool_size(), 100);
        assert_eq!(Scale::Paper.overlay_runs(), 50);
    }
}
