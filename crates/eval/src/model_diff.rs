//! Interpretable model comparison — "what changed?" between the original
//! and the edited model.
//!
//! The paper's §6 governance discussion proposes auditing edits by
//! comparing the pre- and post-edit models (citing Nair et al. 2021,
//! "What changed? Interpretable model comparison"). This module implements
//! that audit: it measures where two classifiers disagree on a reference
//! dataset and *describes the disagreement region as rules*, by running the
//! crate's rule inducer on the disagreement labels.

use frote_data::Dataset;
use frote_induct::{InductParams, RuleInducer};
use frote_ml::Classifier;
use frote_rules::FeedbackRule;

/// Summary of how two models differ on a reference dataset.
#[derive(Debug, Clone)]
pub struct ModelDiff {
    /// Fraction of reference rows where the models disagree.
    pub disagreement_rate: f64,
    /// `flips[(a, b)]`-style matrix: `flips[a][b]` counts rows predicted
    /// `a` by the old model and `b` by the new one.
    pub flips: Vec<Vec<usize>>,
    /// Rules (over the reference schema) describing the *disagreement
    /// region*: each rule's class 1 means "the models disagree here".
    pub region_rules: Vec<FeedbackRule>,
}

impl ModelDiff {
    /// Compares `old` and `new` on `reference`.
    ///
    /// The disagreement region is described by inducing rules on a binary
    /// agree/disagree labelling; a low `min_coverage` keeps small edit
    /// regions describable.
    ///
    /// # Panics
    ///
    /// Panics if the models' class counts differ or `reference` is empty.
    pub fn compute(old: &dyn Classifier, new: &dyn Classifier, reference: &Dataset) -> ModelDiff {
        assert_eq!(old.n_classes(), new.n_classes(), "models must share a label space");
        assert!(!reference.is_empty(), "reference dataset must be non-empty");
        let k = old.n_classes();
        let old_preds = old.predict_dataset(reference);
        let new_preds = new.predict_dataset(reference);
        let mut flips = vec![vec![0usize; k]; k];
        let mut disagree_labels = Vec::with_capacity(reference.n_rows());
        let mut disagreements = 0usize;
        for (&a, &b) in old_preds.iter().zip(&new_preds) {
            flips[a as usize][b as usize] += 1;
            let d = u32::from(a != b);
            disagreements += d as usize;
            disagree_labels.push(d);
        }
        let disagreement_rate = disagreements as f64 / reference.n_rows() as f64;
        let region_rules = if disagreements == 0 {
            Vec::new()
        } else {
            let min_cov = (disagreements / 4).clamp(3, 50);
            let inducer = RuleInducer::new(InductParams {
                min_coverage: min_cov,
                max_rules_per_class: 3,
                ..Default::default()
            });
            // NOTE: the reference schema has its own classes; the inducer
            // only needs labels, so we pass the binary agree/disagree vector
            // and keep rules whose class is 1 ("disagree").
            inducer
                .induce(reference, &disagree_labels)
                .into_iter()
                .filter(|r| r.dist().mode() == 1)
                .collect()
        };
        ModelDiff { disagreement_rate, flips, region_rules }
    }

    /// Count of rows flipped from class `a` to class `b`.
    pub fn flips_from_to(&self, a: u32, b: u32) -> usize {
        self.flips[a as usize][b as usize]
    }

    /// Renders a human-readable audit report.
    pub fn render(&self, reference: &Dataset) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "model diff: {:.1}% of the reference set changed prediction",
            100.0 * self.disagreement_rate
        );
        let schema = reference.schema();
        for (a, row) in self.flips.iter().enumerate() {
            for (b, &count) in row.iter().enumerate() {
                if a != b && count > 0 {
                    let _ = writeln!(
                        out,
                        "  {} -> {}: {count} rows",
                        schema.class_name(a as u32),
                        schema.class_name(b as u32)
                    );
                }
            }
        }
        if self.region_rules.is_empty() {
            out.push_str("  no describable disagreement region\n");
        } else {
            out.push_str("  disagreement region:\n");
            for r in &self.region_rules {
                let _ = writeln!(out, "    WHERE {}", r.clause().display_with(schema));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::{Schema, Value};

    struct Threshold(f64);
    impl Classifier for Threshold {
        fn n_classes(&self) -> usize {
            2
        }
        fn predict_proba_into(&self, row: &[Value], out: &mut Vec<f64>) {
            out.clear();
            if row[0].expect_num() >= self.0 {
                out.extend_from_slice(&[0.0, 1.0]);
            } else {
                out.extend_from_slice(&[1.0, 0.0]);
            }
        }
    }

    fn reference() -> Dataset {
        let schema = Schema::builder("y", vec!["no".into(), "yes".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema);
        for i in 0..100 {
            ds.push_row(&[Value::Num(i as f64)], 0).unwrap();
        }
        ds
    }

    #[test]
    fn identical_models_have_no_diff() {
        let ds = reference();
        let d = ModelDiff::compute(&Threshold(50.0), &Threshold(50.0), &ds);
        assert_eq!(d.disagreement_rate, 0.0);
        assert!(d.region_rules.is_empty());
        assert!(d.render(&ds).contains("no describable disagreement region"));
    }

    #[test]
    fn shifted_threshold_is_localized() {
        let ds = reference();
        // Old: yes from 50; new: yes from 30 -> rows 30..50 flip no->yes.
        let d = ModelDiff::compute(&Threshold(50.0), &Threshold(30.0), &ds);
        assert!((d.disagreement_rate - 0.2).abs() < 1e-9);
        assert_eq!(d.flips_from_to(0, 1), 20);
        assert_eq!(d.flips_from_to(1, 0), 0);
        // The induced disagreement region should cover mostly 30..50.
        assert!(!d.region_rules.is_empty(), "expected a describable region");
        let rule = &d.region_rules[0];
        let cov = rule.coverage(&ds);
        let inside = cov.iter().filter(|&&i| (30..50).contains(&i)).count();
        assert!(
            inside as f64 / cov.len() as f64 > 0.6,
            "region rule imprecise: {} inside of {}",
            inside,
            cov.len()
        );
        let text = d.render(&ds);
        assert!(text.contains("no -> yes: 20 rows"));
        assert!(text.contains("WHERE"));
    }

    #[test]
    #[should_panic(expected = "share a label space")]
    fn class_count_mismatch_panics() {
        struct Three;
        impl Classifier for Three {
            fn n_classes(&self) -> usize {
                3
            }
            fn predict_proba_into(&self, _row: &[Value], out: &mut Vec<f64>) {
                out.clear();
                out.extend_from_slice(&[1.0, 0.0, 0.0]);
            }
        }
        let ds = reference();
        ModelDiff::compute(&Threshold(50.0), &Three, &ds);
    }
}
