//! Plain-text rendering of tables and series (the bench binaries print
//! these; EXPERIMENTS.md archives them).

/// Renders an aligned text table.
///
/// # Panics
///
/// Panics if a row's arity differs from the header's.
pub fn table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row arity mismatch in table {title:?}");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let line = |cells: &[String], widths: &[usize]| -> String {
        let mut s = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{cell:<w$}"));
        }
        s.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&line(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders an `(x, y)` series as `x<tab>y` lines under a `# title` header —
/// directly plottable with gnuplot/matplotlib.
pub fn series(title: &str, points: &[(f64, f64)]) -> String {
    let mut out = format!("# {title}\n");
    for (x, y) in points {
        out.push_str(&format!("{x}\t{y:.4}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            "Demo",
            &["Dataset", "Value"],
            &[vec!["Car".into(), "0.1".into()], vec!["Breast Cancer".into(), "0.25".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "Demo");
        assert!(lines[1].starts_with("Dataset"));
        assert!(lines[3].starts_with("Car"));
        // Both value columns start at the same offset.
        let off_a = lines[3].find("0.1").unwrap();
        let off_b = lines[4].find("0.25").unwrap();
        assert_eq!(off_a, off_b);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_checks_arity() {
        table("T", &["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn series_format() {
        let s = series("progress", &[(0.0, 0.5), (10.0, 0.75)]);
        assert!(s.starts_with("# progress\n0\t0.5000\n"));
        assert!(s.ends_with("10\t0.7500\n"));
    }
}
