//! Tables 2, 7 and 8: FROTE vs the Overlay baseline (Daly et al. 2021).
//!
//! The paper's protocol: binary datasets only; 3 rules per run; both the
//! coverage and outside-coverage populations split 50/50 into train/test;
//! `ΔJ`/`ΔMRA`/`ΔF` measured against the initial model on the test set,
//! 50 runs.

use frote::objective::{paper_j, ObjectiveValue};
use frote::{Frote, FroteConfig, ModStrategy};
use frote_data::synth::DatasetKind;
use frote_data::Dataset;
use frote_ml::metrics;
use frote_overlay::{Overlay, OverlayMode};
use frote_rules::FeedbackRuleSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::aggregate::Summary;
use crate::models::ModelKind;
use crate::protocol::overlay_split;
use crate::render;
use crate::runner::RunSpec;
use crate::scale::Scale;
use crate::setup::{draw_conflict_free_frs_with_origins, prepare};

/// Per-(dataset, model) comparison aggregates.
#[derive(Debug, Clone)]
pub struct OverlayCell {
    /// Dataset.
    pub kind: DatasetKind,
    /// Model family.
    pub model: ModelKind,
    /// `ΔJ` for Overlay-Soft / Overlay-Hard / FROTE.
    pub delta_j: [Summary; 3],
    /// `ΔMRA` in the same order.
    pub delta_mra: [Summary; 3],
    /// `ΔF-Score` in the same order.
    pub delta_f: [Summary; 3],
}

/// Scores an Overlay layer the same way models are scored: MRA against the
/// rules inside coverage (first-match) and macro-F1 outside, coverage-
/// weighted (`J̄`).
fn overlay_objective(ov: &Overlay<'_>, test: &Dataset, frs: &FeedbackRuleSet) -> ObjectiveValue {
    let n = test.n_rows();
    let attributed = frs.attributed_coverage(test);
    let mut j = 0.0;
    let mut covered = 0usize;
    let mut agree_total = 0.0;
    for (r, rows) in attributed.iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        let rule = frs.rule(r);
        let agree: f64 =
            ov.predict_rows(test, rows).into_iter().map(|pred| rule.dist().prob(pred)).sum();
        agree_total += agree;
        covered += rows.len();
        j += (rows.len() as f64 / n as f64) * (agree / rows.len() as f64);
    }
    let outside = frs.outside_coverage(test);
    let preds = ov.predict_rows(test, &outside);
    let labels: Vec<u32> = outside.iter().map(|&i| test.label(i)).collect();
    let f1 = metrics::macro_f1(&preds, &labels, test.n_classes());
    j += (n - covered) as f64 / n as f64 * f1;
    let mra = if covered == 0 { 1.0 } else { agree_total / covered as f64 };
    ObjectiveValue { mra, f1, j }
}

/// Runs the comparison for the given (binary) datasets.
pub fn run_datasets(kinds: &[DatasetKind], scale: Scale) -> Vec<OverlayCell> {
    let mut cells = Vec::new();
    for &kind in kinds {
        assert!(kind.is_binary(), "the Overlay comparison uses binary datasets");
        let setup = prepare(kind, scale, 42);
        for &model in &ModelKind::ALL {
            let mut dj = [Vec::new(), Vec::new(), Vec::new()];
            let mut dm = [Vec::new(), Vec::new(), Vec::new()];
            let mut df = [Vec::new(), Vec::new(), Vec::new()];
            for run in 0..scale.overlay_runs() {
                let mut rng = StdRng::seed_from_u64(40_000 + run as u64 * 17);
                let (frs, origins) = draw_conflict_free_frs_with_origins(&setup, 3, &mut rng);
                if frs.is_empty() {
                    continue;
                }
                let triggers: Vec<Option<frote_rules::Clause>> =
                    origins.into_iter().map(Some).collect();
                let (train, test) = overlay_split(&setup.dataset, &frs, &mut rng);
                if train.n_rows() < 20 || test.is_empty() {
                    continue;
                }
                let trainer = model.trainer(scale);
                let initial_model = trainer.train(&train);
                let initial = paper_j(initial_model.as_ref(), &test, &frs);

                // Overlay (both modes) wraps the initial model. The patch
                // layer triggers on the ORIGINAL explanation-rule regions in
                // addition to the feedback clauses (Daly et al.'s design),
                // which is what costs it outside-coverage F-score when the
                // feedback deviates from the model.
                let soft = Overlay::with_triggers(
                    initial_model.as_ref(),
                    frs.clone(),
                    triggers.clone(),
                    OverlayMode::Soft,
                    &train,
                );
                let soft_v = overlay_objective(&soft, &test, &frs);
                let hard = Overlay::with_triggers(
                    initial_model.as_ref(),
                    frs.clone(),
                    triggers,
                    OverlayMode::Hard,
                    &train,
                );
                let hard_v = overlay_objective(&hard, &test, &frs);

                // FROTE retrains (relabel strategy, random selection).
                let spec = RunSpec::new(model, scale);
                let modified = ModStrategy::Relabel.apply(&train, &frs);
                let config = FroteConfig {
                    iteration_limit: scale.iteration_limit(),
                    instances_per_iteration: Some(scale.eta(kind)),
                    mod_strategy: ModStrategy::None,
                    selection: spec.selection,
                    ..Default::default()
                };
                let Ok(out) = Frote::new(config).run(&modified, trainer.as_ref(), &frs, &mut rng)
                else {
                    continue;
                };
                let frote_v = paper_j(out.model.as_ref(), &test, &frs);

                for (slot, v) in [soft_v, hard_v, frote_v].into_iter().enumerate() {
                    dj[slot].push(v.j - initial.j);
                    dm[slot].push(v.mra - initial.mra);
                    df[slot].push(v.f1 - initial.f1);
                }
            }
            cells.push(OverlayCell {
                kind,
                model,
                delta_j: [Summary::of(&dj[0]), Summary::of(&dj[1]), Summary::of(&dj[2])],
                delta_mra: [Summary::of(&dm[0]), Summary::of(&dm[1]), Summary::of(&dm[2])],
                delta_f: [Summary::of(&df[0]), Summary::of(&df[1]), Summary::of(&df[2])],
            });
        }
    }
    cells
}

/// Renders Table 2 / Table 7 (`ΔJ` columns).
pub fn render_delta_j(title: &str, cells: &[OverlayCell]) -> String {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.kind.name().to_string(),
                c.model.name().to_string(),
                c.delta_j[0].display(),
                c.delta_j[1].display(),
                c.delta_j[2].display(),
            ]
        })
        .collect();
    render::table(
        title,
        &["Dataset", "Model", "ΔJ Overlay-Soft", "ΔJ Overlay-Hard", "ΔJ FROTE"],
        &rows,
    )
}

/// Renders Table 8 (`ΔMRA` and `ΔF-Score` split).
pub fn render_mra_f(cells: &[OverlayCell]) -> String {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.kind.name().to_string(),
                c.model.name().to_string(),
                c.delta_mra[0].display(),
                c.delta_mra[1].display(),
                c.delta_mra[2].display(),
                c.delta_f[0].display(),
                c.delta_f[1].display(),
                c.delta_f[2].display(),
            ]
        })
        .collect();
    render::table(
        "Table 8: ΔMRA / ΔF-Score — Overlay-Soft, Overlay-Hard, FROTE",
        &[
            "Dataset",
            "Model",
            "ΔMRA Soft",
            "ΔMRA Hard",
            "ΔMRA FROTE",
            "ΔF Soft",
            "ΔF Hard",
            "ΔF FROTE",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_comparison_runs_on_a_binary_dataset() {
        let cells = run_datasets(&[DatasetKind::Mushroom], Scale::Smoke);
        assert_eq!(cells.len(), 3);
        let t2 = render_delta_j("Table 2 (smoke)", &cells);
        assert!(t2.contains("Overlay-Hard"));
        let t8 = render_mra_f(&cells);
        assert!(t8.contains("ΔMRA"));
    }

    #[test]
    #[should_panic(expected = "binary datasets")]
    fn multiclass_datasets_rejected() {
        run_datasets(&[DatasetKind::Car], Scale::Smoke);
    }
}
