//! Tables 3, 4, and 5: `random` vs `IP` base-instance selection.
//!
//! Table 3 reports `ΔJ` (final − initial) for both strategies over all
//! datasets × models; Table 4 adds `Δ#Ins/|D|` (augmentation used); Table 5
//! splits `ΔMRA` and `ΔF-Score`.

use frote::SelectionStrategy;
use frote_data::synth::DatasetKind;

use crate::aggregate::Summary;
use crate::models::ModelKind;
use crate::render;
use crate::runner::{run_many, RunSpec};
use crate::scale::Scale;
use crate::setup::prepare;

/// Aggregates for one (dataset, model, strategy) cell.
#[derive(Debug, Clone)]
pub struct SelectionCell {
    /// Dataset.
    pub kind: DatasetKind,
    /// Model family.
    pub model: ModelKind,
    /// Selection strategy.
    pub strategy: SelectionStrategy,
    /// `ΔJ` mean ± std.
    pub delta_j: Summary,
    /// `ΔMRA` mean ± std.
    pub delta_mra: Summary,
    /// `ΔF1` mean ± std.
    pub delta_f1: Summary,
    /// `Δ#Ins/|D|` mean ± std.
    pub added_fraction: Summary,
}

/// Runs both strategies for the given datasets. The paper pools runs across
/// its tcf/|F| grid; here each cell pools `scale.runs()` draws at the shared
/// defaults (`tcf = 0.2`, `|F| = 3`) per strategy.
pub fn run_datasets(kinds: &[DatasetKind], scale: Scale) -> Vec<SelectionCell> {
    let mut cells = Vec::new();
    for &kind in kinds {
        let setup = prepare(kind, scale, 42);
        for &model in &ModelKind::ALL {
            for strategy in [SelectionStrategy::Random, SelectionStrategy::Ip] {
                let spec = RunSpec { selection: strategy, ..RunSpec::new(model, scale) };
                let results = run_many(&setup, &spec, scale.runs(), 30_000);
                cells.push(SelectionCell {
                    kind,
                    model,
                    strategy,
                    delta_j: Summary::of(&results.iter().map(|r| r.delta_j()).collect::<Vec<_>>()),
                    delta_mra: Summary::of(
                        &results.iter().map(|r| r.delta_mra()).collect::<Vec<_>>(),
                    ),
                    delta_f1: Summary::of(
                        &results.iter().map(|r| r.delta_f1()).collect::<Vec<_>>(),
                    ),
                    added_fraction: Summary::of(
                        &results.iter().map(|r| r.added_fraction()).collect::<Vec<_>>(),
                    ),
                });
            }
        }
    }
    cells
}

fn pair(
    cells: &[SelectionCell],
    kind: DatasetKind,
    model: ModelKind,
) -> (Option<&SelectionCell>, Option<&SelectionCell>) {
    let find = |s: SelectionStrategy| {
        cells.iter().find(|c| c.kind == kind && c.model == model && c.strategy == s)
    };
    (find(SelectionStrategy::Random), find(SelectionStrategy::Ip))
}

/// Renders Table 3 (`ΔJ` random vs IP).
pub fn render_table3(kinds: &[DatasetKind], cells: &[SelectionCell]) -> String {
    let mut rows = Vec::new();
    for &kind in kinds {
        for &model in &ModelKind::ALL {
            let (r, i) = pair(cells, kind, model);
            rows.push(vec![
                kind.name().to_string(),
                model.name().to_string(),
                r.map(|c| c.delta_j.display()).unwrap_or_default(),
                i.map(|c| c.delta_j.display()).unwrap_or_default(),
            ]);
        }
    }
    render::table(
        "Table 3: ΔJ̄ of random vs IP base-instance selection",
        &["Dataset", "Model", "ΔJ (random)", "ΔJ (IP)"],
        &rows,
    )
}

/// Renders Table 4 (adds the augmentation used).
pub fn render_table4(kinds: &[DatasetKind], cells: &[SelectionCell]) -> String {
    let mut rows = Vec::new();
    for &kind in kinds {
        for &model in &ModelKind::ALL {
            let (r, i) = pair(cells, kind, model);
            rows.push(vec![
                kind.name().to_string(),
                model.name().to_string(),
                r.map(|c| c.delta_j.display()).unwrap_or_default(),
                i.map(|c| c.delta_j.display()).unwrap_or_default(),
                r.map(|c| c.added_fraction.display()).unwrap_or_default(),
                i.map(|c| c.added_fraction.display()).unwrap_or_default(),
            ]);
        }
    }
    render::table(
        "Table 4: ΔJ̄ and Δ#Ins/|D| for random and IP selection",
        &["Dataset", "Model", "ΔJ (random)", "ΔJ (IP)", "Δ#Ins/|D| (random)", "Δ#Ins/|D| (IP)"],
        &rows,
    )
}

/// Renders Table 5 (`ΔMRA` / `ΔF1` split).
pub fn render_table5(kinds: &[DatasetKind], cells: &[SelectionCell]) -> String {
    let mut rows = Vec::new();
    for &kind in kinds {
        for &model in &ModelKind::ALL {
            let (r, i) = pair(cells, kind, model);
            rows.push(vec![
                kind.name().to_string(),
                model.name().to_string(),
                i.map(|c| c.delta_mra.display()).unwrap_or_default(),
                r.map(|c| c.delta_mra.display()).unwrap_or_default(),
                i.map(|c| c.delta_f1.display()).unwrap_or_default(),
                r.map(|c| c.delta_f1.display()).unwrap_or_default(),
            ]);
        }
    }
    render::table(
        "Table 5: ΔMRA and ΔF-Score for IP and random selection",
        &["Dataset", "Model", "ΔMRA (IP)", "ΔMRA (random)", "ΔF (IP)", "ΔF (random)"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_comparison_produces_both_strategies() {
        let kinds = [DatasetKind::Car];
        let cells = run_datasets(&kinds, Scale::Smoke);
        assert_eq!(cells.len(), 6); // 1 dataset x 3 models x 2 strategies
        let t3 = render_table3(&kinds, &cells);
        assert!(t3.contains("ΔJ (IP)"));
        let t4 = render_table4(&kinds, &cells);
        assert!(t4.contains("Δ#Ins/|D|"));
        let t5 = render_table5(&kinds, &cells);
        assert!(t5.contains("ΔMRA"));
    }
}
