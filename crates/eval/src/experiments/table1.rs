//! Table 1: properties of the (synthesized) benchmark datasets.

use frote_data::synth::{DatasetKind, SynthConfig};

use crate::render;
use crate::scale::Scale;

/// Renders Table 1 at the given scale (paper scale reproduces the paper's
/// instance counts exactly; smoke scale shows the shrunken sizes actually
/// used by CI runs).
pub fn run(scale: Scale) -> String {
    let rows: Vec<Vec<String>> = DatasetKind::ALL
        .iter()
        .map(|&kind| {
            let ds =
                kind.generate(&SynthConfig { n_rows: scale.n_rows(kind), ..Default::default() });
            let s = ds.schema();
            vec![
                kind.name().to_string(),
                ds.n_rows().to_string(),
                format!("{}({}/{})", s.n_features(), s.n_numeric(), s.n_categorical()),
                s.n_classes().to_string(),
            ]
        })
        .collect();
    render::table(
        &format!("Table 1: dataset properties ({} scale)", scale.name()),
        &["Dataset", "#Ins.", "#Feat.(num/nom)", "#Labels"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table_1() {
        let t = run(Scale::Paper);
        assert!(t.contains("Adult"));
        assert!(t.contains("45222"));
        assert!(t.contains("12(4/8)"));
        assert!(t.contains("Splice"));
        assert!(t.contains("60(0/60)"));
    }

    #[test]
    fn smoke_scale_is_capped() {
        let t = run(Scale::Smoke);
        assert!(t.contains("600"));
        assert!(!t.contains("45222"));
    }
}
