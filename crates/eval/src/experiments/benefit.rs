//! Figure 2 (and supplement Figures 4–8): the benefit of augmentation.
//!
//! For each model and training-coverage fraction, compares the held-out-test
//! `J̄` of (1) the model trained on the initial training set, (2) after the
//! modification strategy, and (3) after FROTE completes augmentation, pooling
//! runs over `|F| ∈ {1, 3, 5}` as in the paper's box plots.

use frote::ModStrategy;
use frote_data::synth::DatasetKind;

use crate::aggregate::BoxStats;
use crate::models::ModelKind;
use crate::render;
use crate::runner::{run_many, RunSpec};
use crate::scale::Scale;
use crate::setup::prepare;

/// The tcf grid of the paper's Figure 2.
pub const TCF_GRID: [f64; 7] = [0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4];

/// One Figure 2 cell: box statistics of the three measurement points plus
/// the supplement's paired differences (Figures 4–8 plot `mod − imp` and
/// `final − imp`).
#[derive(Debug, Clone)]
pub struct BenefitCell {
    /// Training coverage fraction.
    pub tcf: f64,
    /// Model family.
    pub model: ModelKind,
    /// Box stats of the initial-model test `J̄`.
    pub initial: Option<BoxStats>,
    /// Box stats after the modification strategy.
    pub modified: Option<BoxStats>,
    /// Box stats after FROTE.
    pub final_: Option<BoxStats>,
    /// Per-run `modified − initial` (the supplement's `mod-imp`).
    pub mod_improvement: Option<BoxStats>,
    /// Per-run `final − modified` (the supplement's `final-imp`).
    pub final_improvement: Option<BoxStats>,
    /// Pooled run count.
    pub runs: usize,
}

/// Runs the experiment for one dataset and mod strategy over the given tcf
/// grid, pooling `|F| ∈ {1, 3, 5}` (each with `scale.runs()` draws).
pub fn run_dataset(
    kind: DatasetKind,
    scale: Scale,
    mod_strategy: ModStrategy,
    tcf_grid: &[f64],
) -> Vec<BenefitCell> {
    let setup = prepare(kind, scale, 42);
    let mut cells = Vec::new();
    for &model in &ModelKind::ALL {
        for &tcf in tcf_grid {
            let mut initial = Vec::new();
            let mut modified = Vec::new();
            let mut final_ = Vec::new();
            let mut mod_improvement = Vec::new();
            let mut final_improvement = Vec::new();
            for (fi, &frs_size) in [1usize, 3, 5].iter().enumerate() {
                let spec = RunSpec { frs_size, tcf, mod_strategy, ..RunSpec::new(model, scale) };
                let seed =
                    10_000 + fi as u64 * 97 + (tcf * 1000.0) as u64 * 13 + model_tag(model) * 7;
                for r in run_many(&setup, &spec, scale.runs(), seed) {
                    initial.push(r.initial.j);
                    modified.push(r.modified.j);
                    final_.push(r.final_.j);
                    mod_improvement.push(r.modified.j - r.initial.j);
                    final_improvement.push(r.final_.j - r.modified.j);
                }
            }
            cells.push(BenefitCell {
                tcf,
                model,
                runs: initial.len(),
                initial: BoxStats::of(&initial),
                modified: BoxStats::of(&modified),
                final_: BoxStats::of(&final_),
                mod_improvement: BoxStats::of(&mod_improvement),
                final_improvement: BoxStats::of(&final_improvement),
            });
        }
    }
    cells
}

fn model_tag(m: ModelKind) -> u64 {
    match m {
        ModelKind::Lr => 1,
        ModelKind::Rf => 2,
        ModelKind::Lgbm => 3,
    }
}

/// Renders the cells as the figure's data table (one row per model × tcf,
/// medians with box stats).
pub fn render_cells(kind: DatasetKind, mod_strategy: ModStrategy, cells: &[BenefitCell]) -> String {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let show = |b: &Option<BoxStats>| {
                b.map(|s| format!("{:.3} [{}]", s.median, s.display()))
                    .unwrap_or_else(|| "-".to_string())
            };
            let show_med = |b: &Option<BoxStats>| {
                b.map(|s| format!("{:+.3}", s.median)).unwrap_or_else(|| "-".to_string())
            };
            vec![
                c.model.name().to_string(),
                format!("{:.2}", c.tcf),
                c.runs.to_string(),
                show(&c.initial),
                show(&c.modified),
                show(&c.final_),
                show_med(&c.mod_improvement),
                show_med(&c.final_improvement),
            ]
        })
        .collect();
    render::table(
        &format!(
            "Figure 2 data: {} ({} strategy) — J̄ median [lo/q1/med/q3/hi]",
            kind.name(),
            mod_strategy.name()
        ),
        &["Model", "tcf", "runs", "initial", mod_strategy.name(), "final", "mod-imp", "final-imp"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cells_have_expected_shape() {
        let cells = run_dataset(DatasetKind::Car, Scale::Smoke, ModStrategy::Relabel, &[0.0, 0.2]);
        // 3 models x 2 tcf values.
        assert_eq!(cells.len(), 6);
        for c in &cells {
            assert!(c.runs > 0, "cell with zero runs");
        }
        let text = render_cells(DatasetKind::Car, ModStrategy::Relabel, &cells);
        assert!(text.contains("Figure 2 data"));
        assert!(text.contains("LGBM"));
    }
}
