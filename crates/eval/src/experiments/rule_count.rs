//! Figure 3 (and supplement Figure 10): effect of the feedback rule set
//! size, `|F| ∈ {8, 10, 15, 20}` at `tcf = 0.2`.

use frote_data::synth::DatasetKind;

use crate::aggregate::BoxStats;
use crate::models::ModelKind;
use crate::render;
use crate::runner::{run_many, RunSpec};
use crate::scale::Scale;
use crate::setup::prepare;

/// The FRS-size grid of the paper's Figure 3.
pub const SIZE_GRID: [usize; 4] = [8, 10, 15, 20];

/// One Figure 3 cell.
#[derive(Debug, Clone)]
pub struct RuleCountCell {
    /// Requested rule set size.
    pub frs_size: usize,
    /// Model family.
    pub model: ModelKind,
    /// Initial / modified / final box stats of test `J̄`.
    pub initial: Option<BoxStats>,
    /// After the relabel strategy.
    pub modified: Option<BoxStats>,
    /// After FROTE.
    pub final_: Option<BoxStats>,
    /// Non-degenerate run count.
    pub runs: usize,
    /// Mean number of rules actually drawn (conflict-free draws may fall
    /// short of the request — the paper reports the same caveat).
    pub mean_drawn: f64,
}

/// Runs the experiment on one dataset.
pub fn run_dataset(kind: DatasetKind, scale: Scale, sizes: &[usize]) -> Vec<RuleCountCell> {
    let setup = prepare(kind, scale, 42);
    let mut cells = Vec::new();
    for &model in &ModelKind::ALL {
        for &frs_size in sizes {
            let spec = RunSpec { frs_size, tcf: 0.2, ..RunSpec::new(model, scale) };
            let results = run_many(&setup, &spec, scale.runs(), 20_000 + frs_size as u64 * 31);
            let initial: Vec<f64> = results.iter().map(|r| r.initial.j).collect();
            let modified: Vec<f64> = results.iter().map(|r| r.modified.j).collect();
            let final_: Vec<f64> = results.iter().map(|r| r.final_.j).collect();
            let mean_drawn = if results.is_empty() {
                0.0
            } else {
                results.iter().map(|r| r.frs_len as f64).sum::<f64>() / results.len() as f64
            };
            cells.push(RuleCountCell {
                frs_size,
                model,
                runs: results.len(),
                mean_drawn,
                initial: BoxStats::of(&initial),
                modified: BoxStats::of(&modified),
                final_: BoxStats::of(&final_),
            });
        }
    }
    cells
}

/// Renders the cells.
pub fn render_cells(kind: DatasetKind, cells: &[RuleCountCell]) -> String {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let show = |b: &Option<BoxStats>| {
                b.map(|s| format!("{:.3}", s.median)).unwrap_or_else(|| "-".to_string())
            };
            vec![
                c.model.name().to_string(),
                c.frs_size.to_string(),
                format!("{:.1}", c.mean_drawn),
                c.runs.to_string(),
                show(&c.initial),
                show(&c.modified),
                show(&c.final_),
            ]
        })
        .collect();
    render::table(
        &format!("Figure 3 data: {} — median J̄ vs |F| (tcf = 0.2)", kind.name()),
        &["Model", "|F| req", "|F| drawn", "runs", "initial", "relabel", "final"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_cells() {
        let cells = run_dataset(DatasetKind::Car, Scale::Smoke, &[8]);
        assert_eq!(cells.len(), 3);
        for c in &cells {
            // Smoke pools are small; draws may return fewer than 8 rules but
            // must return some.
            assert!(c.mean_drawn > 0.0 || c.runs == 0);
        }
        let text = render_cells(DatasetKind::Car, &cells);
        assert!(text.contains("Figure 3 data"));
    }
}
