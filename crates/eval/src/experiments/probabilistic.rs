//! Table 6: probabilistic rules mitigating an over-confident expert.
//!
//! Protocol (supplement B): a *single* feedback rule, `tcf = 0`, LR model,
//! and — crucially — the rule is **wrong**: the test distribution stays the
//! original one. Generated-instance labels follow the calibrated policy
//! with confidence `p ∈ {0.4, 0.6, 0.8, 1.0}`. Because the rule is not in
//! effect, MRA here measures agreement with the *original* labels within
//! the rule's coverage, and `J̄` combines that with the outside-coverage F1.

use frote::generate::LabelPolicy;
use frote::{Frote, FroteConfig, ModStrategy};
use frote_data::synth::DatasetKind;
use frote_data::Dataset;
use frote_ml::{metrics, Classifier};
use frote_rules::FeedbackRuleSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::aggregate::Summary;
use crate::models::ModelKind;
use crate::protocol::tcf_split;
use crate::render;
use crate::scale::Scale;
use crate::setup::{draw_conflict_free_frs, prepare};

/// The confidence grid of Table 6.
pub const P_GRID: [f64; 4] = [0.4, 0.6, 0.8, 1.0];

/// Aggregates for one (dataset, p) cell.
#[derive(Debug, Clone)]
pub struct ProbabilisticCell {
    /// Dataset.
    pub kind: DatasetKind,
    /// Rule confidence `p`.
    pub p: f64,
    /// `Δmra` (agreement with original labels inside coverage).
    pub delta_mra: Summary,
    /// `ΔJ` under the original-label objective.
    pub delta_j: Summary,
}

/// "Wrong-expert" objective: accuracy against *original* labels inside the
/// coverage, macro-F1 outside, coverage-weighted.
fn truth_objective(model: &dyn Classifier, test: &Dataset, frs: &FeedbackRuleSet) -> (f64, f64) {
    let coverage = frs.coverage(test);
    let outside = frs.outside_coverage(test);
    let cov_preds = model.predict_rows(test, &coverage);
    let cov_labels: Vec<u32> = coverage.iter().map(|&i| test.label(i)).collect();
    let mra = metrics::accuracy(&cov_preds, &cov_labels);
    let out_preds = model.predict_rows(test, &outside);
    let out_labels: Vec<u32> = outside.iter().map(|&i| test.label(i)).collect();
    let f1 = metrics::macro_f1(&out_preds, &out_labels, test.n_classes());
    let n = test.n_rows().max(1) as f64;
    let j = (coverage.len() as f64 / n) * mra + (outside.len() as f64 / n) * f1;
    (mra, j)
}

/// Runs the experiment for the given datasets (the paper uses Mushroom,
/// Wine, and Breast Cancer with LR).
pub fn run_datasets(kinds: &[DatasetKind], scale: Scale) -> Vec<ProbabilisticCell> {
    let mut cells = Vec::new();
    for &kind in kinds {
        let setup = prepare(kind, scale, 42);
        for &p in &P_GRID {
            let mut dmra = Vec::new();
            let mut dj = Vec::new();
            for run in 0..scale.runs() {
                let mut rng = StdRng::seed_from_u64(50_000 + run as u64 * 23);
                let frs = draw_conflict_free_frs(&setup, 1, &mut rng);
                if frs.is_empty() {
                    continue;
                }
                let (train, test) = tcf_split(&setup.dataset, &frs, 0.0, &mut rng);
                if train.n_rows() < 20 || test.is_empty() {
                    continue;
                }
                let trainer = ModelKind::Lr.trainer(scale);
                let initial_model = trainer.train(&train);
                let (mra0, j0) = truth_objective(initial_model.as_ref(), &test, &frs);

                let config = FroteConfig {
                    iteration_limit: scale.iteration_limit(),
                    instances_per_iteration: Some(scale.eta(kind)),
                    mod_strategy: ModStrategy::None, // tcf = 0: nothing to relabel
                    label_policy: LabelPolicy::Calibrated { p },
                    ..Default::default()
                };
                let Ok(out) = Frote::new(config).run(&train, trainer.as_ref(), &frs, &mut rng)
                else {
                    continue;
                };
                let (mra1, j1) = truth_objective(out.model.as_ref(), &test, &frs);
                dmra.push(mra1 - mra0);
                dj.push(j1 - j0);
            }
            cells.push(ProbabilisticCell {
                kind,
                p,
                delta_mra: Summary::of(&dmra),
                delta_j: Summary::of(&dj),
            });
        }
    }
    cells
}

/// Renders Table 6.
pub fn render_cells(cells: &[ProbabilisticCell]) -> String {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.kind.name().to_string(),
                format!("p = {:.1}", c.p),
                c.delta_mra.display(),
                c.delta_j.display(),
            ]
        })
        .collect();
    render::table(
        "Table 6: probabilistic rules under a wrong expert (LR, |F| = 1, tcf = 0)",
        &["Dataset", "Probability", "Δmra", "ΔJ"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_probabilistic_sweep() {
        let cells = run_datasets(&[DatasetKind::Mushroom], Scale::Smoke);
        assert_eq!(cells.len(), P_GRID.len());
        let text = render_cells(&cells);
        assert!(text.contains("p = 0.4"));
        assert!(text.contains("p = 1.0"));
    }
}
