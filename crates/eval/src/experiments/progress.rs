//! Figure 9: augmentation progress — held-out-test `J̄` as a function of the
//! number of synthetic instances added, per model and `tcf`.
//!
//! Each accepted Algorithm 1 iteration retrains a candidate model; the
//! observer hook scores that candidate on the held-out test set immediately,
//! exactly as the paper evaluates intermediate models.

use frote::objective::paper_j;
use frote::{Frote, ModStrategy};
use frote_data::synth::DatasetKind;

use crate::models::ModelKind;
use crate::render;
use crate::runner::{frote_config, prepare_run, RunSpec};
use crate::scale::Scale;
use crate::setup::prepare;

/// One progress curve.
#[derive(Debug, Clone)]
pub struct ProgressCurve {
    /// Model family.
    pub model: ModelKind,
    /// Training coverage fraction.
    pub tcf: f64,
    /// `(instances added, mean test J̄)` points, averaged across runs by
    /// accepted-iteration ordinal; point 0 is the pre-augmentation model.
    pub points: Vec<(usize, f64)>,
}

/// Runs the experiment on one dataset (the paper uses Adult with `|F| = 3`,
/// relabel, random selection).
pub fn run_dataset(kind: DatasetKind, scale: Scale, tcf_grid: &[f64]) -> Vec<ProgressCurve> {
    let setup = prepare(kind, scale, 42);
    let mut curves = Vec::new();
    for &model in &ModelKind::ALL {
        for &tcf in tcf_grid {
            let mut traces: Vec<Vec<(usize, f64)>> = Vec::new();
            for run in 0..scale.runs() {
                let spec = RunSpec { tcf, ..RunSpec::new(model, scale) };
                let seed = 60_000 + run as u64 * 41 + (tcf * 100.0) as u64;
                let Some(mut prepared) = prepare_run(&setup, &spec, seed) else {
                    continue;
                };
                let trainer = model.trainer(scale);
                let modified = ModStrategy::Relabel.apply(&prepared.train, &prepared.frs);
                if modified.n_rows() < 20 {
                    continue;
                }
                let start_model = trainer.train(&modified);
                let start_j = paper_j(start_model.as_ref(), &prepared.test, &prepared.frs).j;
                let mut trace = vec![(0usize, start_j)];
                let config = frote_config(&setup, &spec);
                let test = prepared.test.clone();
                let frs = prepared.frs.clone();
                let result = Frote::new(config).run_with_observer(
                    &modified,
                    trainer.as_ref(),
                    &frs,
                    &mut prepared.rng,
                    |candidate, record| {
                        if record.accepted {
                            let j = paper_j(candidate, &test, &frs).j;
                            trace.push((record.total_added, j));
                        }
                    },
                );
                if result.is_ok() {
                    traces.push(trace);
                }
            }
            curves.push(ProgressCurve { model, tcf, points: average_traces(&traces) });
        }
    }
    curves
}

/// Pointwise average of traces by ordinal position.
fn average_traces(traces: &[Vec<(usize, f64)>]) -> Vec<(usize, f64)> {
    let max_len = traces.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = Vec::with_capacity(max_len);
    for i in 0..max_len {
        let pts: Vec<(usize, f64)> = traces.iter().filter_map(|t| t.get(i).copied()).collect();
        if pts.is_empty() {
            break;
        }
        let added = pts.iter().map(|p| p.0).sum::<usize>() / pts.len();
        let j = pts.iter().map(|p| p.1).sum::<f64>() / pts.len() as f64;
        out.push((added, j));
    }
    out
}

/// Renders all curves as plottable series blocks.
pub fn render_curves(kind: DatasetKind, curves: &[ProgressCurve]) -> String {
    let mut out = format!("Figure 9 data: augmentation progress on {}\n", kind.name());
    for c in curves {
        let pts: Vec<(f64, f64)> = c.points.iter().map(|&(a, j)| (a as f64, j)).collect();
        out.push_str(&render::series(&format!("{} tcf={:.2}", c.model.name(), c.tcf), &pts));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_progress_has_curves() {
        let curves = run_dataset(DatasetKind::Car, Scale::Smoke, &[0.0, 0.2]);
        assert_eq!(curves.len(), 6);
        let with_points = curves.iter().filter(|c| c.points.len() > 1).count();
        assert!(with_points > 0, "no curve accumulated accepted iterations");
        let text = render_curves(DatasetKind::Car, &curves);
        assert!(text.contains("Figure 9"));
    }

    #[test]
    fn average_traces_is_pointwise() {
        let a = vec![(0, 0.0), (10, 1.0)];
        let b = vec![(0, 1.0), (20, 2.0), (30, 3.0)];
        let avg = average_traces(&[a, b]);
        assert_eq!(avg[0], (0, 0.5));
        assert_eq!(avg[1], (15, 1.5));
        assert_eq!(avg[2], (30, 3.0));
    }
}
