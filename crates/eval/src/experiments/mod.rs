//! One module per paper table/figure. Each experiment returns rendered text
//! (and structured data where useful); `frote-bench` exposes one binary per
//! experiment.

pub mod benefit;
pub mod overlay_cmp;
pub mod probabilistic;
pub mod progress;
pub mod rule_count;
pub mod selection_cmp;
pub mod table1;
