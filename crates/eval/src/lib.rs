//! # frote-eval
//!
//! Experiment harness reproducing every table and figure in the FROTE
//! (MLSys 2022) evaluation. The §5.1 protocol is implemented end to end:
//!
//! 1. generate a benchmark dataset (`frote-data::synth`),
//! 2. train an initial model, extract a rule-set explanation
//!    (`frote-induct`), perturb it into a pool of feedback rules with
//!    coverage in `[0.05, 0.25)` (`frote-rules::perturb`),
//! 3. per run: draw a conflict-free FRS of the requested size, split
//!    train/test by the training-coverage fraction `tcf`, apply the
//!    modification strategy, run FROTE, and score `J̄`, MRA and F1 on the
//!    held-out test set,
//! 4. aggregate over runs (mean ± std, box-plot statistics) and render the
//!    paper's tables/figures as text.
//!
//! Each experiment module maps to a table/figure; the `frote-bench` crate
//! exposes one binary per experiment. Everything runs at two scales:
//! [`Scale::Smoke`] for CI-sized checks and [`Scale::Paper`] for the paper's
//! run counts.

#![warn(missing_docs)]

pub mod aggregate;
pub mod experiments;
pub mod export;
pub mod model_diff;
pub mod models;
pub mod protocol;
pub mod render;
pub mod runner;
mod scale;
pub mod setup;

pub use models::ModelKind;
pub use runner::{RunResult, RunSpec};
pub use scale::Scale;
