//! JSON export of experiment results, for external plotting.
//!
//! The bench binaries print the paper-style text tables; anything that wants
//! the raw numbers (notebooks regenerating the figures graphically, CI trend
//! tracking) can serialize the same records with this module instead.

use serde::{Deserialize, Serialize};

use crate::aggregate::{BoxStats, Summary};

/// A serializable summary (mirrors [`Summary`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryRecord {
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Sample size.
    pub n: usize,
}

impl From<Summary> for SummaryRecord {
    fn from(s: Summary) -> Self {
        SummaryRecord { mean: s.mean, std: s.std, n: s.n }
    }
}

/// A serializable box plot (mirrors [`BoxStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxRecord {
    /// Lower whisker.
    pub lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker.
    pub hi: f64,
}

impl From<BoxStats> for BoxRecord {
    fn from(b: BoxStats) -> Self {
        BoxRecord { lo: b.lo, q1: b.q1, median: b.median, q3: b.q3, hi: b.hi }
    }
}

/// One generic experiment cell: string-keyed dimensions (dataset, model,
/// tcf, ...) plus named measurements.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CellRecord {
    /// Dimension values, e.g. `{"dataset": "Car", "model": "RF"}`.
    pub dims: std::collections::BTreeMap<String, String>,
    /// Scalar measurements.
    pub scalars: std::collections::BTreeMap<String, f64>,
    /// Summary measurements.
    pub summaries: std::collections::BTreeMap<String, SummaryRecord>,
    /// Box-plot measurements.
    pub boxes: std::collections::BTreeMap<String, BoxRecord>,
}

impl CellRecord {
    /// Starts an empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a dimension value.
    pub fn dim(mut self, key: &str, value: impl ToString) -> Self {
        self.dims.insert(key.to_string(), value.to_string());
        self
    }

    /// Adds a scalar measurement.
    pub fn scalar(mut self, key: &str, value: f64) -> Self {
        self.scalars.insert(key.to_string(), value);
        self
    }

    /// Adds a summary measurement.
    pub fn summary(mut self, key: &str, value: Summary) -> Self {
        self.summaries.insert(key.to_string(), value.into());
        self
    }

    /// Adds a box-plot measurement (skips `None`).
    pub fn boxed(mut self, key: &str, value: Option<BoxStats>) -> Self {
        if let Some(b) = value {
            self.boxes.insert(key.to_string(), b.into());
        }
        self
    }
}

/// A whole experiment: id (e.g. `"table3"`), scale, and its cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment identifier matching the bench binary name.
    pub experiment: String,
    /// `"smoke"` or `"paper"`.
    pub scale: String,
    /// Cells.
    pub cells: Vec<CellRecord>,
}

impl ExperimentRecord {
    /// Creates a record.
    pub fn new(experiment: &str, scale: crate::Scale, cells: Vec<CellRecord>) -> Self {
        ExperimentRecord {
            experiment: experiment.to_string(),
            scale: scale.name().to_string(),
            cells,
        }
    }

    /// Pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("records are always serializable")
    }

    /// Parses JSON produced by [`ExperimentRecord::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn roundtrip() {
        let cell = CellRecord::new()
            .dim("dataset", "Car")
            .dim("model", "RF")
            .scalar("runs", 30.0)
            .summary("delta_j", Summary { mean: 0.01, std: 0.002, n: 30 })
            .boxed(
                "initial",
                Some(crate::aggregate::BoxStats {
                    lo: 0.1,
                    q1: 0.2,
                    median: 0.3,
                    q3: 0.4,
                    hi: 0.5,
                }),
            );
        let rec = ExperimentRecord::new("table3", Scale::Smoke, vec![cell]);
        let json = rec.to_json();
        assert!(json.contains("\"dataset\": \"Car\""));
        let back = ExperimentRecord::from_json(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn boxed_none_is_skipped() {
        let cell = CellRecord::new().boxed("missing", None);
        assert!(cell.boxes.is_empty());
    }

    #[test]
    fn malformed_json_errors() {
        assert!(ExperimentRecord::from_json("{not json").is_err());
    }
}
