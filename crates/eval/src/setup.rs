//! Benchmark setup: dataset + feedback-rule pool (§5.1).

use frote_data::synth::{DatasetKind, SynthConfig};
use frote_data::Dataset;
use frote_induct::{InductParams, RuleInducer};
use frote_rules::perturb::{generate_pool_with_provenance, PerturbConfig};
use frote_rules::{Clause, FeedbackRule, FeedbackRuleSet};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::models::ModelKind;
use crate::scale::Scale;

/// A prepared benchmark: the dataset and its pool of candidate feedback
/// rules (the paper generates 100 per dataset with coverage in
/// `[0.05, 0.25)`).
#[derive(Debug, Clone)]
pub struct BenchmarkSetup {
    /// The synthesized dataset.
    pub dataset: Dataset,
    /// The perturbed-rule pool runs draw from.
    pub pool: Vec<FeedbackRule>,
    /// For each pool rule, the clause of the seed explanation rule it was
    /// perturbed from (the Overlay baseline's trigger region).
    pub pool_origins: Vec<Clause>,
    /// Which dataset this is.
    pub kind: DatasetKind,
}

/// Prepares the §5.1 pipeline for `kind` at `scale`: generate the dataset,
/// train an initial model (RF, as a stand-in for the paper's unspecified
/// initial model), extract a rule-set explanation, perturb into the pool.
///
/// Deterministic in `seed`.
pub fn prepare(kind: DatasetKind, scale: Scale, seed: u64) -> BenchmarkSetup {
    let dataset =
        kind.generate(&SynthConfig { n_rows: scale.n_rows(kind), seed, ..Default::default() });
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x5eed));
    let model = ModelKind::Rf.trainer(scale).train(&dataset);
    let min_cov = (dataset.n_rows() / 40).max(5);
    let inducer = RuleInducer::new(InductParams { min_coverage: min_cov, ..Default::default() });
    let mut seeds = inducer.explain(&dataset, model.as_ref());
    if seeds.is_empty() {
        // Degenerate models (tiny smoke datasets) may admit no rules over
        // predictions; fall back to explaining the ground-truth labels.
        seeds = inducer.induce(&dataset, dataset.labels());
    }
    assert!(!seeds.is_empty(), "rule induction produced no seed rules for {}", kind.name());
    let with_provenance = generate_pool_with_provenance(
        &seeds,
        &dataset,
        &dataset.schema().clone(),
        &PerturbConfig { pool_size: scale.pool_size(), ..Default::default() },
        &mut rng,
    );
    let pool_origins = with_provenance.iter().map(|&(_, s)| seeds[s].clause().clone()).collect();
    let pool = with_provenance.into_iter().map(|(rule, _)| rule).collect();
    BenchmarkSetup { dataset, pool, pool_origins, kind }
}

/// Draws a conflict-free FRS of (up to) `size` rules from the pool: the pool
/// is shuffled and rules are added greedily when they do not conflict with
/// the rules already chosen. The paper observes that for some datasets no
/// conflict-free set of size 15–20 exists in a pool — the draw then returns
/// fewer rules; callers decide whether that is acceptable.
pub fn draw_conflict_free_frs(
    setup: &BenchmarkSetup,
    size: usize,
    rng: &mut StdRng,
) -> FeedbackRuleSet {
    draw_conflict_free_frs_with_origins(setup, size, rng).0
}

/// Like [`draw_conflict_free_frs`] but also returns, per drawn rule, the
/// clause of the original explanation rule it was perturbed from — the
/// Overlay baseline's trigger regions.
pub fn draw_conflict_free_frs_with_origins(
    setup: &BenchmarkSetup,
    size: usize,
    rng: &mut StdRng,
) -> (FeedbackRuleSet, Vec<Clause>) {
    let schema = setup.dataset.schema();
    let mut order: Vec<usize> = (0..setup.pool.len()).collect();
    order.shuffle(rng);
    let mut frs = FeedbackRuleSet::empty();
    let mut origins = Vec::new();
    for i in order {
        if frs.len() >= size {
            break;
        }
        let candidate = &setup.pool[i];
        let mut trial = frs.clone();
        trial.push(candidate.clone());
        if trial.is_conflict_free(schema) {
            frs = trial;
            origins.push(setup.pool_origins[i].clone());
        }
    }
    (frs, origins)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_builds_valid_pool() {
        let setup = prepare(DatasetKind::Car, Scale::Smoke, 42);
        assert!(!setup.pool.is_empty());
        let n = setup.dataset.n_rows() as f64;
        for rule in &setup.pool {
            rule.validate(setup.dataset.schema()).unwrap();
            let cov = rule.coverage_count(&setup.dataset) as f64 / n;
            assert!((0.05..0.25).contains(&cov), "coverage {cov}");
        }
    }

    #[test]
    fn prepare_is_deterministic() {
        let a = prepare(DatasetKind::Mushroom, Scale::Smoke, 7);
        let b = prepare(DatasetKind::Mushroom, Scale::Smoke, 7);
        assert_eq!(a.pool, b.pool);
        assert_eq!(a.dataset, b.dataset);
    }

    #[test]
    fn frs_draws_are_conflict_free() {
        let setup = prepare(DatasetKind::Car, Scale::Smoke, 42);
        let mut rng = StdRng::seed_from_u64(3);
        for size in [1, 3, 5] {
            let frs = draw_conflict_free_frs(&setup, size, &mut rng);
            assert!(frs.len() <= size);
            assert!(!frs.is_empty());
            assert!(frs.is_conflict_free(setup.dataset.schema()));
        }
    }

    #[test]
    fn oversized_draws_degrade_gracefully() {
        let setup = prepare(DatasetKind::Car, Scale::Smoke, 42);
        let mut rng = StdRng::seed_from_u64(4);
        let frs = draw_conflict_free_frs(&setup, 500, &mut rng);
        assert!(frs.len() <= setup.pool.len());
        assert!(frs.is_conflict_free(setup.dataset.schema()));
    }
}
