//! The paper's three model families (§5.1 "Classification models").

use frote_ml::forest::{ForestParams, RandomForestTrainer};
use frote_ml::gbdt::{GbdtParams, GbdtTrainer};
use frote_ml::logreg::{LogRegParams, LogisticRegressionTrainer};
use frote_ml::tree::TreeParams;
use frote_ml::TrainAlgorithm;

use crate::scale::Scale;

/// Which classifier family a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Logistic regression (`max_iter = 500` in the paper).
    Lr,
    /// Random forest (`max_depth = 3` in the paper).
    Rf,
    /// Gradient-boosted trees (LightGBM in the paper).
    Lgbm,
}

impl ModelKind {
    /// All three families in the paper's table order.
    pub const ALL: [ModelKind; 3] = [ModelKind::Lr, ModelKind::Rf, ModelKind::Lgbm];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Lr => "LR",
            ModelKind::Rf => "RF",
            ModelKind::Lgbm => "LGBM",
        }
    }

    /// Parses `"lr"` / `"rf"` / `"lgbm"` (case-insensitive).
    pub fn parse(s: &str) -> Option<ModelKind> {
        match s.to_ascii_lowercase().as_str() {
            "lr" => Some(ModelKind::Lr),
            "rf" => Some(ModelKind::Rf),
            "lgbm" => Some(ModelKind::Lgbm),
            _ => None,
        }
    }

    /// Instantiates the trainer at the given scale. Paper scale uses the
    /// paper's settings; smoke scale shrinks ensemble sizes/iterations so the
    /// `τ`-retrain loop stays fast without changing model family behaviour.
    pub fn trainer(self, scale: Scale) -> Box<dyn TrainAlgorithm> {
        match (self, scale) {
            (ModelKind::Lr, Scale::Paper | Scale::Medium) => {
                Box::new(LogisticRegressionTrainer::new(LogRegParams {
                    max_iter: 500,
                    ..Default::default()
                }))
            }
            (ModelKind::Lr, Scale::Smoke) => {
                Box::new(LogisticRegressionTrainer::new(LogRegParams {
                    max_iter: 120,
                    ..Default::default()
                }))
            }
            (ModelKind::Rf, Scale::Paper | Scale::Medium) => Box::new(RandomForestTrainer::new(
                ForestParams {
                    n_trees: 30,
                    tree: TreeParams { max_depth: 3, ..Default::default() },
                },
                42,
            )),
            (ModelKind::Rf, Scale::Smoke) => Box::new(RandomForestTrainer::new(
                ForestParams {
                    n_trees: 8,
                    tree: TreeParams { max_depth: 3, ..Default::default() },
                },
                42,
            )),
            (ModelKind::Lgbm, Scale::Paper | Scale::Medium) => {
                Box::new(GbdtTrainer::new(GbdtParams { n_rounds: 50, ..Default::default() }))
            }
            (ModelKind::Lgbm, Scale::Smoke) => {
                Box::new(GbdtTrainer::new(GbdtParams { n_rounds: 10, ..Default::default() }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::synth::{DatasetKind, SynthConfig};

    #[test]
    fn names_match_paper() {
        assert_eq!(ModelKind::Lr.name(), "LR");
        assert_eq!(ModelKind::Rf.name(), "RF");
        assert_eq!(ModelKind::Lgbm.name(), "LGBM");
    }

    #[test]
    fn parse() {
        assert_eq!(ModelKind::parse("LGBM"), Some(ModelKind::Lgbm));
        assert_eq!(ModelKind::parse("nope"), None);
    }

    #[test]
    fn all_trainers_train() {
        let ds = DatasetKind::Car.generate(&SynthConfig { n_rows: 150, ..Default::default() });
        for kind in ModelKind::ALL {
            let model = kind.trainer(Scale::Smoke).train(&ds);
            assert_eq!(model.n_classes(), 4, "{}", kind.name());
        }
    }
}
