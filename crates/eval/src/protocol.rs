//! Train/test splitting protocols (§5.1 "FRS selection and train-test
//! splitting").

use frote_data::split::split_indices;
use frote_data::Dataset;
use frote_rules::FeedbackRuleSet;
use rand::rngs::StdRng;

/// The main protocol: the outside-coverage population splits 80/20 into
/// train/test; a `tcf` fraction of the coverage population joins the
/// training side and the remainder the test side. `tcf = 0` models a brand
/// new rule with no support in training data.
pub fn tcf_split(
    ds: &Dataset,
    frs: &FeedbackRuleSet,
    tcf: f64,
    rng: &mut StdRng,
) -> (Dataset, Dataset) {
    split_with_fractions(ds, frs, tcf, 0.8, rng)
}

/// The Overlay-comparison protocol: both populations split 50/50.
pub fn overlay_split(ds: &Dataset, frs: &FeedbackRuleSet, rng: &mut StdRng) -> (Dataset, Dataset) {
    split_with_fractions(ds, frs, 0.5, 0.5, rng)
}

fn split_with_fractions(
    ds: &Dataset,
    frs: &FeedbackRuleSet,
    coverage_train_fraction: f64,
    outside_train_fraction: f64,
    rng: &mut StdRng,
) -> (Dataset, Dataset) {
    let coverage = frs.coverage(ds);
    let outside = frs.outside_coverage(ds);
    let outside_split = split_indices(&outside, outside_train_fraction, rng);
    let coverage_split = split_indices(&coverage, coverage_train_fraction, rng);
    let mut train = outside_split.train;
    train.extend(coverage_split.train);
    let mut test = outside_split.test;
    test.extend(coverage_split.test);
    (ds.gather(&train), ds.gather(&test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use frote_data::{Schema, Value};
    use frote_rules::{Clause, FeedbackRule, LabelDist, Op, Predicate};
    use rand::SeedableRng;

    fn ds() -> Dataset {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut d = Dataset::new(schema);
        for i in 0..100 {
            d.push_row(&[Value::Num(i as f64)], u32::from(i >= 50)).unwrap();
        }
        d
    }

    fn frs() -> FeedbackRuleSet {
        // Coverage: x < 20 (20 rows).
        FeedbackRuleSet::new(vec![FeedbackRule::new(
            Clause::new(vec![Predicate::new(0, Op::Lt, Value::Num(20.0))]),
            LabelDist::Deterministic(1),
        )])
    }

    #[test]
    fn tcf_zero_puts_no_coverage_in_train() {
        let d = ds();
        let f = frs();
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = tcf_split(&d, &f, 0.0, &mut rng);
        assert_eq!(f.coverage(&train).len(), 0);
        assert_eq!(f.coverage(&test).len(), 20);
        // Outside coverage split 80/20.
        assert_eq!(train.n_rows(), 64);
        assert_eq!(test.n_rows(), 16 + 20);
    }

    #[test]
    fn tcf_fraction_lands_in_train() {
        let d = ds();
        let f = frs();
        let mut rng = StdRng::seed_from_u64(2);
        let (train, test) = tcf_split(&d, &f, 0.4, &mut rng);
        assert_eq!(f.coverage(&train).len(), 8); // 0.4 * 20
        assert_eq!(f.coverage(&test).len(), 12);
        assert_eq!(train.n_rows() + test.n_rows(), 100);
    }

    #[test]
    fn overlay_split_is_half_half() {
        let d = ds();
        let f = frs();
        let mut rng = StdRng::seed_from_u64(3);
        let (train, test) = overlay_split(&d, &f, &mut rng);
        assert_eq!(f.coverage(&train).len(), 10);
        assert_eq!(f.coverage(&test).len(), 10);
        assert_eq!(train.n_rows(), 50);
        assert_eq!(test.n_rows(), 50);
    }

    #[test]
    fn split_partitions_rows() {
        let d = ds();
        let f = frs();
        let mut rng = StdRng::seed_from_u64(4);
        let (train, test) = tcf_split(&d, &f, 0.2, &mut rng);
        assert_eq!(train.n_rows() + test.n_rows(), d.n_rows());
    }
}
