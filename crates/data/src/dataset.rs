//! The columnar dataset type.

use std::sync::Arc;

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::column::Column;
use crate::error::DataError;
use crate::schema::Schema;
use crate::value::{FeatureKind, Value};

/// A labelled tabular dataset with columnar storage.
///
/// Rows are addressed by index; columns are dense and typed (see [`Column`]).
/// The schema is reference-counted, so cloning a dataset (which FROTE's
/// augmentation loop does every iteration) shares vocabularies.
///
/// # Example
///
/// ```
/// use frote_data::{Dataset, Schema, Value};
/// let schema = Schema::builder("y", vec!["neg".into(), "pos".into()])
///     .numeric("x")
///     .build();
/// let mut ds = Dataset::new(schema);
/// ds.push_row(&[Value::Num(0.5)], 1)?;
/// assert_eq!(ds.label(0), 1);
/// assert_eq!(ds.value(0, 0), Value::Num(0.5));
/// # Ok::<(), frote_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    schema: Arc<Schema>,
    columns: Vec<Column>,
    labels: Vec<u32>,
}

impl Dataset {
    /// Creates an empty dataset conforming to `schema`.
    pub fn new(schema: Schema) -> Self {
        Self::with_shared_schema(Arc::new(schema))
    }

    /// Creates an empty dataset sharing an existing schema handle.
    pub fn with_shared_schema(schema: Arc<Schema>) -> Self {
        let columns = schema
            .features()
            .iter()
            .map(|f| match f.kind() {
                FeatureKind::Numeric => Column::Numeric(Vec::new()),
                FeatureKind::Categorical { .. } => Column::Categorical(Vec::new()),
            })
            .collect();
        Self { schema, columns, labels: Vec::new() }
    }

    /// The dataset's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Shared handle to the schema.
    pub fn schema_handle(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.columns.len()
    }

    /// Number of label classes (from the schema).
    pub fn n_classes(&self) -> usize {
        self.schema.n_classes()
    }

    /// Column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= n_features()`.
    pub fn column(&self, j: usize) -> &Column {
        &self.columns[j]
    }

    /// Cell value at row `i`, column `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn value(&self, i: usize, j: usize) -> Value {
        self.columns[j].value(i)
    }

    /// Label of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_rows()`.
    pub fn label(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// All labels in row order.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Sets the label of row `i`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::LabelOutOfRange`] if `label` is not a valid class.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_rows()`.
    pub fn set_label(&mut self, i: usize, label: u32) -> Result<(), DataError> {
        if (label as usize) >= self.schema.n_classes() {
            return Err(DataError::LabelOutOfRange { label, n_classes: self.schema.n_classes() });
        }
        self.labels[i] = label;
        Ok(())
    }

    /// Cell value at row `i`, column `j` — a borrowed-view alias of
    /// [`Dataset::value`] for hot loops that address the columnar store
    /// directly instead of materializing rows.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn cell(&self, i: usize, j: usize) -> Value {
        self.value(i, j)
    }

    /// Materializes row `i` as a vector of values.
    ///
    /// Allocates; batch paths should prefer [`Dataset::row_into`] with a
    /// reused scratch buffer, or [`Dataset::cell`] for single cells.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_rows()`.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Writes row `i` into `out` (cleared first), reusing its allocation —
    /// the allocation-free counterpart of [`Dataset::row`] for inner loops.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_rows()`.
    pub fn row_into(&self, i: usize, out: &mut Vec<Value>) {
        out.clear();
        out.extend(self.columns.iter().map(|c| c.value(i)));
    }

    /// Appends a row.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::SchemaMismatch`] if the arity or any cell type
    /// does not match the schema, or [`DataError::LabelOutOfRange`] for an
    /// invalid label. On error the dataset is unchanged.
    pub fn push_row(&mut self, row: &[Value], label: u32) -> Result<(), DataError> {
        if row.len() != self.columns.len() {
            return Err(DataError::SchemaMismatch {
                detail: format!("expected {} cells, got {}", self.columns.len(), row.len()),
            });
        }
        for (j, (&v, f)) in row.iter().zip(self.schema.features()).enumerate() {
            if !v.matches_kind(f.kind()) {
                return Err(DataError::SchemaMismatch {
                    detail: format!("cell {j} ({}) has wrong type or out-of-vocab index", f.name()),
                });
            }
        }
        if (label as usize) >= self.schema.n_classes() {
            return Err(DataError::LabelOutOfRange { label, n_classes: self.schema.n_classes() });
        }
        for (col, &v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.labels.push(label);
        Ok(())
    }

    /// Appends all rows of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::SchemaMismatch`] if the schemas differ.
    pub fn extend_from(&mut self, other: &Dataset) -> Result<(), DataError> {
        if self.schema != other.schema {
            return Err(DataError::SchemaMismatch {
                detail: "schemas differ in extend_from".into(),
            });
        }
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.extend_from(b);
        }
        self.labels.extend_from_slice(&other.labels);
        Ok(())
    }

    /// Gathers the rows at `indices` (repeats allowed) into a new dataset.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather(&self, indices: &[usize]) -> Dataset {
        Dataset {
            schema: Arc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.gather(indices)).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Per-class row counts, indexed by class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.schema.n_classes()];
        for &l in &self.labels {
            counts[l as usize] += 1;
        }
        counts
    }

    /// The most frequent class (ties broken by lowest index), or `None` if
    /// the dataset is empty.
    pub fn majority_class(&self) -> Option<u32> {
        if self.is_empty() {
            return None;
        }
        let counts = self.class_counts();
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .map(|(i, _)| i as u32)
    }

    /// Row indices whose label equals `class`.
    pub fn indices_of_class(&self, class: u32) -> Vec<usize> {
        (0..self.n_rows()).filter(|&i| self.labels[i] == class).collect()
    }

    /// Draws a bootstrap sample (with replacement) of `n` row indices.
    pub fn bootstrap_indices<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<usize> {
        (0..n).map(|_| rng.random_range(0..self.n_rows())).collect()
    }

    /// A uniformly shuffled permutation of `0..n_rows()`.
    pub fn shuffled_indices<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.n_rows()).collect();
        idx.shuffle(rng);
        idx
    }

    /// Iterator over `(row, label)` pairs, materializing each row.
    pub fn iter(&self) -> impl Iterator<Item = (Vec<Value>, u32)> + '_ {
        (0..self.n_rows()).map(move |i| (self.row(i), self.labels[i]))
    }

    /// A human-readable summary: shape, per-class counts, and per-feature
    /// ranges/cardinalities. Intended for examples and debugging sessions.
    pub fn describe(&self) -> String {
        use crate::stats::NumericStats;
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} rows x {} features ({} numeric / {} categorical), {} classes",
            self.n_rows(),
            self.n_features(),
            self.schema.n_numeric(),
            self.schema.n_categorical(),
            self.n_classes()
        );
        for (c, count) in self.class_counts().iter().enumerate() {
            let _ = writeln!(out, "  class {:<16} {count}", self.schema.class_name(c as u32));
        }
        for (j, f) in self.schema.features().iter().enumerate() {
            match &self.columns[j] {
                Column::Numeric(v) => {
                    let s = NumericStats::of(v);
                    let _ = writeln!(
                        out,
                        "  {:<20} numeric  [{:.3}, {:.3}] mean {:.3} std {:.3}",
                        f.name(),
                        s.min,
                        s.max,
                        s.mean,
                        s.std
                    );
                }
                Column::Categorical(_) => {
                    let card = f.kind().cardinality().expect("categorical has cardinality");
                    let _ = writeln!(out, "  {:<20} nominal  {card} categories", f.name());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn demo() -> Dataset {
        let schema = Schema::builder("y", vec!["a".into(), "b".into(), "c".into()])
            .numeric("x1")
            .categorical("x2", vec!["p".into(), "q".into()])
            .build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Num(1.0), Value::Cat(0)], 0).unwrap();
        ds.push_row(&[Value::Num(2.0), Value::Cat(1)], 1).unwrap();
        ds.push_row(&[Value::Num(3.0), Value::Cat(0)], 1).unwrap();
        ds
    }

    #[test]
    fn basic_shape() {
        let ds = demo();
        assert_eq!(ds.n_rows(), 3);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.n_classes(), 3);
        assert_eq!(ds.row(1), vec![Value::Num(2.0), Value::Cat(1)]);
        assert_eq!(ds.label(2), 1);
    }

    #[test]
    fn push_row_validates_arity() {
        let mut ds = demo();
        let err = ds.push_row(&[Value::Num(1.0)], 0).unwrap_err();
        assert!(matches!(err, DataError::SchemaMismatch { .. }));
        assert_eq!(ds.n_rows(), 3, "failed push must not mutate");
    }

    #[test]
    fn push_row_validates_types_and_vocab() {
        let mut ds = demo();
        assert!(ds.push_row(&[Value::Cat(0), Value::Cat(0)], 0).is_err());
        assert!(ds.push_row(&[Value::Num(0.0), Value::Cat(9)], 0).is_err());
        assert!(ds.push_row(&[Value::Num(0.0), Value::Cat(0)], 7).is_err());
    }

    #[test]
    fn class_counts_and_majority() {
        let ds = demo();
        assert_eq!(ds.class_counts(), vec![1, 2, 0]);
        assert_eq!(ds.majority_class(), Some(1));
        assert_eq!(ds.indices_of_class(1), vec![1, 2]);
        let empty = Dataset::new(ds.schema().clone());
        assert_eq!(empty.majority_class(), None);
    }

    #[test]
    fn majority_ties_break_low() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Num(0.0)], 1).unwrap();
        ds.push_row(&[Value::Num(0.0)], 0).unwrap();
        assert_eq!(ds.majority_class(), Some(0));
    }

    #[test]
    fn gather_and_extend() {
        let ds = demo();
        let g = ds.gather(&[2, 2, 0]);
        assert_eq!(g.n_rows(), 3);
        assert_eq!(g.label(0), 1);
        assert_eq!(g.row(2), ds.row(0));

        let mut a = ds.gather(&[0]);
        a.extend_from(&g).unwrap();
        assert_eq!(a.n_rows(), 4);
    }

    #[test]
    fn extend_schema_mismatch() {
        let mut ds = demo();
        let other =
            Dataset::new(Schema::builder("z", vec!["a".into(), "b".into()]).numeric("w").build());
        assert!(ds.extend_from(&other).is_err());
    }

    #[test]
    fn set_label_roundtrip() {
        let mut ds = demo();
        ds.set_label(0, 2).unwrap();
        assert_eq!(ds.label(0), 2);
        assert!(ds.set_label(0, 3).is_err());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let ds = demo();
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        assert_eq!(ds.bootstrap_indices(5, &mut r1), ds.bootstrap_indices(5, &mut r2));
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        assert_eq!(ds.shuffled_indices(&mut r1), ds.shuffled_indices(&mut r2));
    }

    #[test]
    fn iter_yields_all_rows() {
        let ds = demo();
        let collected: Vec<_> = ds.iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[0].1, 0);
    }

    #[test]
    fn describe_summarizes_shape_and_columns() {
        let ds = demo();
        let text = ds.describe();
        assert!(text.contains("3 rows x 2 features (1 numeric / 1 categorical), 3 classes"));
        assert!(text.contains("x1"));
        assert!(text.contains("numeric"));
        assert!(text.contains("2 categories"));
        assert!(text.contains("class a"));
    }
}
