//! Train/test splitting utilities.
//!
//! The FROTE evaluation protocol (§5.1) splits the *outside-coverage*
//! population 80/20 and then adds a `tcf` fraction of the coverage population
//! to the training side. The generic index-level splitters live here; the
//! coverage-aware protocol composition lives in `frote-eval`.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;

/// A pair of disjoint row-index sets describing a split.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SplitIndices {
    /// Training row indices.
    pub train: Vec<usize>,
    /// Test row indices.
    pub test: Vec<usize>,
}

impl SplitIndices {
    /// Materializes the two sides against `ds`.
    pub fn apply(&self, ds: &Dataset) -> (Dataset, Dataset) {
        (ds.gather(&self.train), ds.gather(&self.test))
    }
}

/// Randomly splits `indices` so that a `train_fraction` share lands in the
/// training side.
///
/// The incoming order does not matter; the split is a fresh shuffle driven by
/// `rng`. `train_fraction` is clamped to `[0, 1]`.
pub fn split_indices<R: Rng + ?Sized>(
    indices: &[usize],
    train_fraction: f64,
    rng: &mut R,
) -> SplitIndices {
    let f = train_fraction.clamp(0.0, 1.0);
    let mut shuffled = indices.to_vec();
    shuffled.shuffle(rng);
    let n_train = (f * shuffled.len() as f64).round() as usize;
    let n_train = n_train.min(shuffled.len());
    let test = shuffled.split_off(n_train);
    SplitIndices { train: shuffled, test }
}

/// Randomly splits all rows of `ds` with the given train fraction.
pub fn train_test_split<R: Rng + ?Sized>(
    ds: &Dataset,
    train_fraction: f64,
    rng: &mut R,
) -> (Dataset, Dataset) {
    let all: Vec<usize> = (0..ds.n_rows()).collect();
    split_indices(&all, train_fraction, rng).apply(ds)
}

/// Stratified split: preserves per-class proportions on both sides.
///
/// Each class's rows are shuffled and split independently, so small classes
/// are represented on both sides whenever they have at least two rows.
pub fn stratified_split<R: Rng + ?Sized>(
    ds: &Dataset,
    train_fraction: f64,
    rng: &mut R,
) -> (Dataset, Dataset) {
    let mut split = SplitIndices::default();
    for class in 0..ds.n_classes() as u32 {
        let class_rows = ds.indices_of_class(class);
        let s = split_indices(&class_rows, train_fraction, rng);
        split.train.extend(s.train);
        split.test.extend(s.test);
    }
    split.train.shuffle(rng);
    split.test.shuffle(rng);
    split.apply(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Schema, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn demo(n: usize) -> Dataset {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema);
        for i in 0..n {
            ds.push_row(&[Value::Num(i as f64)], (i % 4 == 0) as u32).unwrap();
        }
        ds
    }

    #[test]
    fn split_sizes() {
        let ds = demo(100);
        let mut rng = StdRng::seed_from_u64(1);
        let (tr, te) = train_test_split(&ds, 0.8, &mut rng);
        assert_eq!(tr.n_rows(), 80);
        assert_eq!(te.n_rows(), 20);
    }

    #[test]
    fn split_is_a_partition() {
        let ds = demo(37);
        let mut rng = StdRng::seed_from_u64(2);
        let all: Vec<usize> = (0..ds.n_rows()).collect();
        let s = split_indices(&all, 0.6, &mut rng);
        let mut merged = s.train.clone();
        merged.extend(&s.test);
        merged.sort_unstable();
        assert_eq!(merged, all);
    }

    #[test]
    fn extreme_fractions() {
        let ds = demo(10);
        let mut rng = StdRng::seed_from_u64(3);
        let (tr, te) = train_test_split(&ds, 0.0, &mut rng);
        assert_eq!((tr.n_rows(), te.n_rows()), (0, 10));
        let (tr, te) = train_test_split(&ds, 1.0, &mut rng);
        assert_eq!((tr.n_rows(), te.n_rows()), (10, 0));
        // Out-of-range fractions are clamped rather than panicking.
        let (tr, _) = train_test_split(&ds, 1.7, &mut rng);
        assert_eq!(tr.n_rows(), 10);
    }

    #[test]
    fn stratified_preserves_class_presence() {
        let ds = demo(40); // 10 of class 1, 30 of class 0
        let mut rng = StdRng::seed_from_u64(4);
        let (tr, te) = stratified_split(&ds, 0.5, &mut rng);
        assert_eq!(tr.n_rows() + te.n_rows(), 40);
        assert!(tr.class_counts()[1] > 0);
        assert!(te.class_counts()[1] > 0);
        // Proportions preserved exactly for round numbers.
        assert_eq!(tr.class_counts(), vec![15, 5]);
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = demo(25);
        let s1 = split_indices(&(0..25).collect::<Vec<_>>(), 0.8, &mut StdRng::seed_from_u64(9));
        let s2 = split_indices(&(0..25).collect::<Vec<_>>(), 0.8, &mut StdRng::seed_from_u64(9));
        assert_eq!(s1, s2);
        let _ = ds;
    }
}
