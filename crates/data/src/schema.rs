//! Dataset schemas: named, typed features plus the label vocabulary.

use serde::{Deserialize, Serialize};

use crate::value::FeatureKind;

/// Metadata for one feature column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureMeta {
    name: String,
    kind: FeatureKind,
}

impl FeatureMeta {
    /// Creates feature metadata from a name and kind.
    pub fn new(name: impl Into<String>, kind: FeatureKind) -> Self {
        Self { name: name.into(), kind }
    }

    /// Feature name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Feature kind.
    pub fn kind(&self) -> &FeatureKind {
        &self.kind
    }
}

/// A dataset schema: ordered feature metadata plus label classes.
///
/// Schemas are immutable once built ([`SchemaBuilder`] constructs them) and
/// shared between datasets via `Arc` internally, so cloning a [`crate::Dataset`]
/// does not duplicate vocabularies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    features: Vec<FeatureMeta>,
    label_name: String,
    classes: Vec<String>,
}

impl Schema {
    /// Starts building a schema with the given label column name and class
    /// vocabulary.
    ///
    /// # Example
    ///
    /// ```
    /// use frote_data::Schema;
    /// let schema = Schema::builder("approved", vec!["no".into(), "yes".into()])
    ///     .numeric("age")
    ///     .build();
    /// assert_eq!(schema.n_features(), 1);
    /// assert_eq!(schema.n_classes(), 2);
    /// ```
    pub fn builder(label_name: impl Into<String>, classes: Vec<String>) -> SchemaBuilder {
        SchemaBuilder { features: Vec::new(), label_name: label_name.into(), classes }
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// Number of label classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of numeric feature columns.
    pub fn n_numeric(&self) -> usize {
        self.features.iter().filter(|f| f.kind.is_numeric()).count()
    }

    /// Number of categorical feature columns.
    pub fn n_categorical(&self) -> usize {
        self.features.iter().filter(|f| f.kind.is_categorical()).count()
    }

    /// Metadata for feature `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= n_features()`.
    pub fn feature(&self, j: usize) -> &FeatureMeta {
        &self.features[j]
    }

    /// All feature metadata in column order.
    pub fn features(&self) -> &[FeatureMeta] {
        &self.features
    }

    /// Index of the feature named `name`, if present.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.features.iter().position(|f| f.name == name)
    }

    /// Label column name.
    pub fn label_name(&self) -> &str {
        &self.label_name
    }

    /// Class names; a label `c` refers to `classes()[c as usize]`.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Name of class `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c as usize >= n_classes()`.
    pub fn class_name(&self, c: u32) -> &str {
        &self.classes[c as usize]
    }

    /// Index of the class named `name`, if present.
    pub fn class_index(&self, name: &str) -> Option<u32> {
        self.classes.iter().position(|c| c == name).map(|i| i as u32)
    }
}

/// Builder for [`Schema`]; see [`Schema::builder`].
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    features: Vec<FeatureMeta>,
    label_name: String,
    classes: Vec<String>,
}

impl SchemaBuilder {
    /// Appends a numeric feature column.
    pub fn numeric(mut self, name: impl Into<String>) -> Self {
        self.features.push(FeatureMeta::new(name, FeatureKind::Numeric));
        self
    }

    /// Appends a categorical feature column with the given vocabulary.
    pub fn categorical(mut self, name: impl Into<String>, categories: Vec<String>) -> Self {
        self.features.push(FeatureMeta::new(name, FeatureKind::Categorical { categories }));
        self
    }

    /// Appends an already-constructed feature.
    pub fn feature(mut self, meta: FeatureMeta) -> Self {
        self.features.push(meta);
        self
    }

    /// Finalizes the schema.
    ///
    /// # Panics
    ///
    /// Panics if two features share a name, or fewer than two classes were
    /// given — a classification dataset needs at least a binary label.
    pub fn build(self) -> Schema {
        assert!(self.classes.len() >= 2, "schema needs at least two classes");
        for (i, f) in self.features.iter().enumerate() {
            for g in &self.features[i + 1..] {
                assert!(f.name != g.name, "duplicate feature name {:?}", f.name);
            }
        }
        Schema { features: self.features, label_name: self.label_name, classes: self.classes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Schema {
        Schema::builder("y", vec!["no".into(), "yes".into()])
            .numeric("age")
            .categorical("color", vec!["red".into(), "blue".into(), "green".into()])
            .numeric("income")
            .build()
    }

    #[test]
    fn counts() {
        let s = demo();
        assert_eq!(s.n_features(), 3);
        assert_eq!(s.n_numeric(), 2);
        assert_eq!(s.n_categorical(), 1);
        assert_eq!(s.n_classes(), 2);
    }

    #[test]
    fn lookup() {
        let s = demo();
        assert_eq!(s.feature_index("color"), Some(1));
        assert_eq!(s.feature_index("nope"), None);
        assert_eq!(s.feature(0).name(), "age");
        assert!(s.feature(1).kind().is_categorical());
        assert_eq!(s.class_index("yes"), Some(1));
        assert_eq!(s.class_name(0), "no");
        assert_eq!(s.label_name(), "y");
    }

    #[test]
    #[should_panic(expected = "duplicate feature name")]
    fn duplicate_names_rejected() {
        let _ =
            Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").numeric("x").build();
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn single_class_rejected() {
        let _ = Schema::builder("y", vec!["only".into()]).numeric("x").build();
    }
}
