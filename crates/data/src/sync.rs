//! Shared vocabulary for incremental-cache synchronisation results.
//!
//! [`EncodedCache::sync`](crate::EncodedCache::sync),
//! [`BinnedCache::sync`](crate::BinnedCache::sync) and the rule plane's
//! `RuleMaskCache::sync` all follow the same append-or-rebuild contract;
//! [`SyncOutcome`] reports which path was taken and — for the slow path —
//! *why*, so a silent full-rebuild regression (like the PR 5 stale-fit
//! bug) shows up in metrics and can be asserted on in tests.

/// Why a cache sync had to rebuild from scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildReason {
    /// The cache held no rows yet; the first sync always builds in full.
    FirstFit,
    /// Refitting on the grown dataset produced different parameters
    /// (e.g. appended rows moved a numeric mean/std), invalidating the
    /// cached encodings.
    FitChanged,
    /// A prior truncate marked the fit stale (it may have been computed
    /// on since-dropped rows) and the re-checked fit did not match.
    StaleFit,
    /// An injected fault (`frote-faults`) poisoned the append fast path;
    /// the cache degraded to a full rebuild rather than trusting a
    /// possibly-partial append. Output stays bit-identical — only the cost
    /// changes.
    Injected,
}

/// How a cache sync brought itself up to date with the dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOutcome {
    /// Nothing to do: row counts matched and the fit was known-fresh.
    Unchanged,
    /// Fast path: fitted parameters held, only the `rows` new rows were
    /// encoded/binned/evaluated and appended.
    Appended {
        /// Number of rows appended (may be 0 when a stale-fit re-check
        /// confirmed the fit without any growth).
        rows: usize,
    },
    /// Slow path: the whole cache was rebuilt, for the given reason.
    Rebuilt(RebuildReason),
}

impl SyncOutcome {
    /// Whether the sync avoided a full rebuild.
    pub fn is_incremental(&self) -> bool {
        !matches!(self, SyncOutcome::Rebuilt(_))
    }
}

/// The metric bundle every incremental cache reports into, so all three
/// caches share one naming scheme (`<prefix>.sync.noop`,
/// `<prefix>.sync.append`, `<prefix>.sync.rebuild[.reason]`,
/// `<prefix>.appended_rows`, `<prefix>.truncates`,
/// `<prefix>.truncated_rows`). All counters are thread-invariant: sync
/// decisions depend only on dataset contents, never on scheduling.
pub struct CacheCounters {
    noop: &'static frote_obs::Counter,
    append: &'static frote_obs::Counter,
    rebuild: &'static frote_obs::Counter,
    rebuild_first_fit: &'static frote_obs::Counter,
    rebuild_fit_changed: &'static frote_obs::Counter,
    rebuild_stale_fit: &'static frote_obs::Counter,
    rebuild_injected: &'static frote_obs::Counter,
    appended_rows: &'static frote_obs::Counter,
    truncates: &'static frote_obs::Counter,
    truncated_rows: &'static frote_obs::Counter,
}

impl CacheCounters {
    /// Build (once, at first use) the counter bundle for a cache
    /// `prefix` such as `"encoded_cache"`.
    pub fn new(prefix: &str) -> CacheCounters {
        let c = |suffix: &str| {
            frote_obs::leaked_counter(format!("{prefix}.{suffix}"), frote_obs::Variance::Invariant)
        };
        CacheCounters {
            noop: c("sync.noop"),
            append: c("sync.append"),
            rebuild: c("sync.rebuild"),
            rebuild_first_fit: c("sync.rebuild.first_fit"),
            rebuild_fit_changed: c("sync.rebuild.fit_changed"),
            rebuild_stale_fit: c("sync.rebuild.stale_fit"),
            rebuild_injected: c("sync.rebuild.injected"),
            appended_rows: c("appended_rows"),
            truncates: c("truncates"),
            truncated_rows: c("truncated_rows"),
        }
    }

    /// Count one sync under the path it took.
    pub fn record_sync(&self, outcome: &SyncOutcome) {
        match outcome {
            SyncOutcome::Unchanged => self.noop.inc(),
            SyncOutcome::Appended { rows } => {
                self.append.inc();
                self.appended_rows.add(*rows as u64);
            }
            SyncOutcome::Rebuilt(reason) => {
                self.rebuild.inc();
                match reason {
                    RebuildReason::FirstFit => self.rebuild_first_fit.inc(),
                    RebuildReason::FitChanged => self.rebuild_fit_changed.inc(),
                    RebuildReason::StaleFit => self.rebuild_stale_fit.inc(),
                    RebuildReason::Injected => self.rebuild_injected.inc(),
                }
            }
        }
    }

    /// Count one truncate that dropped `dropped` rows.
    pub fn record_truncate(&self, dropped: usize) {
        self.truncates.inc();
        self.truncated_rows.add(dropped as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_covers_unchanged_and_appended() {
        assert!(SyncOutcome::Unchanged.is_incremental());
        assert!(SyncOutcome::Appended { rows: 3 }.is_incremental());
        assert!(!SyncOutcome::Rebuilt(RebuildReason::FitChanged).is_incremental());
        assert!(!SyncOutcome::Rebuilt(RebuildReason::StaleFit).is_incremental());
        assert!(!SyncOutcome::Rebuilt(RebuildReason::FirstFit).is_incremental());
    }
}
