//! Typed CSV read/write for datasets.
//!
//! The format is self-describing: the header encodes each feature as
//! `name:num` or `name:cat`, with the label column last as `name:label`.
//! Categorical cells and labels are written as their string names; the reader
//! rebuilds the vocabularies in first-seen order unless a schema is supplied.
//!
//! ```
//! use frote_data::{csv, Dataset, Schema, Value};
//! let schema = Schema::builder("y", vec!["no".into(), "yes".into()])
//!     .numeric("age")
//!     .categorical("job", vec!["eng".into(), "law".into()])
//!     .build();
//! let mut ds = Dataset::new(schema);
//! ds.push_row(&[Value::Num(30.0), Value::Cat(1)], 0)?;
//! let text = csv::to_string(&ds);
//! let back = csv::from_str(&text)?;
//! assert_eq!(back.n_rows(), 1);
//! # Ok::<(), frote_data::DataError>(())
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::schema::Schema;
use crate::value::{FeatureKind, Value};

/// Serializes a dataset to CSV text.
pub fn to_string(ds: &Dataset) -> String {
    let mut out = String::new();
    let schema = ds.schema();
    for (j, f) in schema.features().iter().enumerate() {
        if j > 0 {
            out.push(',');
        }
        let tag = if f.kind().is_numeric() { "num" } else { "cat" };
        let _ = write!(out, "{}:{}", f.name(), tag);
    }
    if schema.n_features() > 0 {
        out.push(',');
    }
    let _ = writeln!(out, "{}:label", schema.label_name());
    for i in 0..ds.n_rows() {
        for (j, f) in schema.features().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match (ds.value(i, j), f.kind()) {
                (Value::Num(x), _) => {
                    let _ = write!(out, "{x}");
                }
                (Value::Cat(c), FeatureKind::Categorical { categories }) => {
                    out.push_str(&categories[c as usize]);
                }
                _ => unreachable!("column/schema mismatch"),
            }
        }
        if schema.n_features() > 0 {
            out.push(',');
        }
        let _ = writeln!(out, "{}", schema.class_name(ds.label(i)));
    }
    out
}

/// Writes a dataset to a CSV file.
///
/// # Errors
///
/// Returns [`DataError::Parse`] with line 0 describing the I/O failure (the
/// crate keeps a single error type; I/O is only reachable through these two
/// convenience functions).
pub fn write_path(ds: &Dataset, path: impl AsRef<std::path::Path>) -> Result<(), DataError> {
    std::fs::write(path, to_string(ds))
        .map_err(|e| DataError::Parse { line: 0, detail: format!("io error: {e}") })
}

/// Reads a dataset from a CSV file written by [`write_path`].
///
/// # Errors
///
/// As [`from_str`], plus an I/O error surfaced as [`DataError::Parse`] with
/// line 0.
pub fn read_path(path: impl AsRef<std::path::Path>) -> Result<Dataset, DataError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| DataError::Parse { line: 0, detail: format!("io error: {e}") })?;
    from_str(&text)
}

/// Parses CSV text produced by [`to_string`], rebuilding vocabularies in
/// first-seen order.
///
/// # Errors
///
/// Returns [`DataError::Parse`] on malformed headers, wrong arity, or
/// unparsable numeric cells.
pub fn from_str(text: &str) -> Result<Dataset, DataError> {
    let mut lines = text.lines().enumerate();
    let (_, header) =
        lines.next().ok_or(DataError::Parse { line: 1, detail: "missing header".into() })?;

    #[derive(Clone)]
    enum ColSpec {
        Num(String),
        Cat(String),
    }
    let mut specs = Vec::new();
    let mut label_name = None;
    for part in header.split(',') {
        let (name, tag) = part.rsplit_once(':').ok_or(DataError::Parse {
            line: 1,
            detail: format!("header field {part:?} missing :type tag"),
        })?;
        match tag {
            "num" => specs.push(ColSpec::Num(name.to_string())),
            "cat" => specs.push(ColSpec::Cat(name.to_string())),
            "label" => label_name = Some(name.to_string()),
            other => {
                return Err(DataError::Parse {
                    line: 1,
                    detail: format!("unknown column tag {other:?}"),
                })
            }
        }
    }
    let label_name =
        label_name.ok_or(DataError::Parse { line: 1, detail: "missing label column".into() })?;
    if !matches!(header.rsplit(',').next(), Some(last) if last.ends_with(":label")) {
        return Err(DataError::Parse { line: 1, detail: "label column must be last".into() });
    }

    // First pass: collect vocabularies.
    let mut vocabs: Vec<Vec<String>> = vec![Vec::new(); specs.len()];
    let mut classes: Vec<String> = Vec::new();
    let mut rows: Vec<(Vec<String>, String)> = Vec::new();
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != specs.len() + 1 {
            return Err(DataError::Parse {
                line: lineno + 1,
                detail: format!("expected {} cells, got {}", specs.len() + 1, cells.len()),
            });
        }
        for (j, spec) in specs.iter().enumerate() {
            if let ColSpec::Cat(_) = spec {
                let s = cells[j].to_string();
                if !vocabs[j].contains(&s) {
                    vocabs[j].push(s);
                }
            }
        }
        let class = cells[specs.len()].to_string();
        if !classes.contains(&class) {
            classes.push(class.clone());
        }
        rows.push((cells[..specs.len()].iter().map(|s| s.to_string()).collect(), class));
    }
    if classes.len() < 2 {
        // Schemas require two classes; pad with a synthetic unused class so
        // degenerate single-class files still load.
        classes.push("__other__".to_string());
    }

    let mut builder = Schema::builder(label_name, classes.clone());
    for (j, spec) in specs.iter().enumerate() {
        builder = match spec {
            ColSpec::Num(name) => builder.numeric(name.clone()),
            ColSpec::Cat(name) => builder.categorical(name.clone(), vocabs[j].clone()),
        };
    }
    let schema = builder.build();
    let class_of: HashMap<&str, u32> =
        classes.iter().enumerate().map(|(i, c)| (c.as_str(), i as u32)).collect();

    let mut ds = Dataset::new(schema);
    for (lineno, (cells, class)) in rows.iter().enumerate() {
        let mut row = Vec::with_capacity(specs.len());
        for (j, spec) in specs.iter().enumerate() {
            match spec {
                ColSpec::Num(_) => {
                    let x: f64 = cells[j].parse().map_err(|_| DataError::Parse {
                        line: lineno + 2,
                        detail: format!("bad numeric cell {:?}", cells[j]),
                    })?;
                    row.push(Value::Num(x));
                }
                ColSpec::Cat(_) => {
                    let c = vocabs[j]
                        .iter()
                        .position(|v| v == &cells[j])
                        .expect("vocab built in first pass");
                    row.push(Value::Cat(c as u32));
                }
            }
        }
        ds.push_row(&row, class_of[class.as_str()])?;
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn demo() -> Dataset {
        let schema = Schema::builder("y", vec!["no".into(), "yes".into()])
            .numeric("age")
            .categorical("job", vec!["eng".into(), "law".into()])
            .build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Num(30.0), Value::Cat(1)], 0).unwrap();
        ds.push_row(&[Value::Num(41.5), Value::Cat(0)], 1).unwrap();
        ds
    }

    #[test]
    fn roundtrip_values() {
        let ds = demo();
        let text = to_string(&ds);
        let back = from_str(&text).unwrap();
        assert_eq!(back.n_rows(), 2);
        assert_eq!(back.value(0, 0), Value::Num(30.0));
        assert_eq!(back.schema().feature(1).name(), "job");
        // Vocab is rebuilt in first-seen order: "law" first.
        let kind = back.schema().feature(1).kind();
        assert_eq!(kind.cardinality(), Some(2));
        assert_eq!(back.label(1), back.schema().class_index("yes").unwrap());
    }

    #[test]
    fn header_format() {
        let text = to_string(&demo());
        assert!(text.starts_with("age:num,job:cat,y:label\n"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str("").is_err());
        assert!(from_str("a:num,b:wat,y:label\n").is_err());
        assert!(from_str("a:num\n1.0\n").is_err()); // no label column
        let bad_arity = "a:num,y:label\n1.0,x,extra\n";
        assert!(matches!(from_str(bad_arity), Err(DataError::Parse { line: 2, .. })));
        let bad_num = "a:num,y:label\nnot_a_number,x\n";
        assert!(from_str(bad_num).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let text = "a:num,y:label\n1.0,p\n\n2.0,q\n";
        let ds = from_str(text).unwrap();
        assert_eq!(ds.n_rows(), 2);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("frote-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.csv");
        let ds = demo();
        write_path(&ds, &path).unwrap();
        let back = read_path(&path).unwrap();
        assert_eq!(back.n_rows(), ds.n_rows());
        assert_eq!(back.value(1, 0), ds.value(1, 0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_missing_file_errors() {
        let err = read_path("/definitely/not/here.csv").unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 0, .. }));
    }

    #[test]
    fn single_class_file_gets_padded_vocab() {
        let text = "a:num,y:label\n1.0,only\n";
        let ds = from_str(text).unwrap();
        assert_eq!(ds.n_classes(), 2);
        assert_eq!(ds.schema().class_name(0), "only");
    }
}
