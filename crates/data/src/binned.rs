//! Quantized feature codes: the histogram-training data plane.
//!
//! Histogram tree building (LightGBM's core systems trick) replaces per-node
//! sorts of raw `f64` columns with scans over small per-feature bin codes.
//! [`Binner`] fits per-feature quantile bin edges once per dataset; a
//! [`BinnedMatrix`] holds every row's codes in one flat row-major buffer of
//! `u8` (or `u16`, when any feature needs more than 256 bins); and
//! [`BinnedCache`] keeps the codes incrementally in sync with a growing
//! dataset, mirroring [`crate::EncodedCache`] for the encoded plane.
//!
//! The quantization is *exactly consistent* with raw-value split tests: bin
//! edges double as split thresholds, and for every value `v` and boundary
//! `b`, `bin(v) <= b` holds iff `v <= edges[b]` — so a tree trained on codes
//! routes raw rows identically at predict time.

use std::sync::OnceLock;

use crate::column::Column;
use crate::dataset::Dataset;
use crate::sync::{CacheCounters, RebuildReason, SyncOutcome};
use crate::value::{FeatureKind, Value};

/// Rows per parallel block when batch-binning. Block boundaries never affect
/// the codes, only the schedule.
const BIN_BLOCK: usize = 1024;

fn counters() -> &'static CacheCounters {
    static COUNTERS: OnceLock<CacheCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| CacheCounters::new("binned_cache"))
}

/// Per-feature binning rule.
#[derive(Debug, Clone, PartialEq)]
enum FeatBins {
    /// Quantile-edged numeric bins: code = number of edges `< v`, so codes
    /// `0..=b` are exactly the values `v <= edges[b]`. `reps[b]` is a
    /// representative value inside bin `b` (used for diagnostics and
    /// decoding; thresholds come from `edges`).
    Numeric { edges: Vec<f64>, reps: Vec<f64> },
    /// Categorical features are already discrete: code = category index.
    Categorical { cardinality: usize },
}

/// A fitted per-feature quantile binner. See the [module docs](self).
///
/// Equality compares the fitted edges (and the bin budget), so callers can
/// detect when a refit on a grown dataset left the binning unchanged —
/// always, for pure-categorical schemas.
#[derive(Debug, Clone, PartialEq)]
pub struct Binner {
    feats: Vec<FeatBins>,
    max_bins: usize,
}

impl Binner {
    /// Fits quantile bin edges to every column of `ds`. Numeric features get
    /// at most `max_bins` bins (when the column has fewer distinct values,
    /// one bin per distinct value, with edges at the midpoints between
    /// adjacent distinct values — the same thresholds the exact split search
    /// evaluates); categorical features keep one bin per category.
    ///
    /// # Panics
    ///
    /// Panics if `max_bins < 2` or if any categorical cardinality exceeds
    /// `u16::MAX + 1` (the widest supported code).
    pub fn fit(ds: &Dataset, max_bins: usize) -> Binner {
        assert!(max_bins >= 2, "max_bins must be at least 2");
        assert!(max_bins <= (u16::MAX as usize) + 1, "max_bins exceeds u16 code space");
        // Quantile edge fitting sorts each numeric column independently, so
        // the fit is feature-parallel; `par_map` preserves feature order,
        // keeping the edges bit-identical to the old serial loop.
        let feature_ids: Vec<usize> = (0..ds.n_features()).collect();
        let feats = frote_par::par_map(&feature_ids, |&j| {
            match (ds.column(j), ds.schema().feature(j).kind()) {
                (Column::Numeric(v), _) => fit_numeric(v, max_bins),
                (Column::Categorical(_), FeatureKind::Categorical { categories }) => {
                    assert!(
                        categories.len() <= (u16::MAX as usize) + 1,
                        "categorical cardinality exceeds u16 code space"
                    );
                    FeatBins::Categorical { cardinality: categories.len() }
                }
                _ => unreachable!("dataset column/schema kind mismatch"),
            }
        });
        Binner { feats, max_bins }
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.feats.len()
    }

    /// The bin budget this binner was fitted with.
    pub fn max_bins(&self) -> usize {
        self.max_bins
    }

    /// Number of bins for feature `f` (`edges + 1` for numeric features,
    /// the cardinality for categorical ones; at least 1).
    pub fn n_bins(&self, f: usize) -> usize {
        match &self.feats[f] {
            FeatBins::Numeric { edges, .. } => edges.len() + 1,
            FeatBins::Categorical { cardinality } => (*cardinality).max(1),
        }
    }

    /// Whether feature `f` is numeric (split as `<= threshold`) rather than
    /// categorical (split as `== bin`).
    pub fn is_numeric(&self, f: usize) -> bool {
        matches!(self.feats[f], FeatBins::Numeric { .. })
    }

    /// The split threshold at numeric boundary `b`: rows coded `0..=b` are
    /// exactly the rows with raw value `<= threshold(f, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is categorical or `b` is not a boundary (`>= n_bins-1`).
    pub fn threshold(&self, f: usize, b: usize) -> f64 {
        match &self.feats[f] {
            FeatBins::Numeric { edges, .. } => edges[b],
            FeatBins::Categorical { .. } => panic!("categorical feature has no thresholds"),
        }
    }

    /// A representative raw value inside numeric bin `b` (for diagnostics /
    /// decoding; bins without fitted mass reuse their nearest edge).
    ///
    /// # Panics
    ///
    /// Panics if `f` is categorical or `b >= n_bins(f)`.
    pub fn representative(&self, f: usize, b: usize) -> f64 {
        match &self.feats[f] {
            FeatBins::Numeric { reps, .. } => reps[b],
            FeatBins::Categorical { .. } => panic!("categorical feature has no representatives"),
        }
    }

    /// The fitted numeric bin edges of feature `f` (`None` for categorical
    /// features). Edges are sorted; code = number of edges `< v`, so
    /// `bin(v) <= b ⟺ v <= edges[b]` — the contract the columnar rule
    /// engine's bin-code predicate plans rely on.
    pub fn numeric_edges(&self, f: usize) -> Option<&[f64]> {
        match &self.feats[f] {
            FeatBins::Numeric { edges, .. } => Some(edges),
            FeatBins::Categorical { .. } => None,
        }
    }

    /// Bin code of one cell value.
    ///
    /// # Panics
    ///
    /// Panics if the value's kind does not match the fitted column, if a
    /// numeric value is `NaN` (`partition_point` over the edges would
    /// silently map it into bin 0, inventing an ordering IEEE comparisons
    /// deny — [`Binner::fit`] already rejects `NaN` training values), or if
    /// a categorical value lies outside the fitted vocabulary (an
    /// out-of-range code would silently land in another feature's
    /// histogram range downstream).
    pub fn bin_value(&self, f: usize, v: Value) -> u16 {
        match (&self.feats[f], v) {
            (FeatBins::Numeric { edges, .. }, Value::Num(x)) => {
                assert!(!x.is_nan(), "cannot bin NaN: the binned plane holds finite values only");
                edges.partition_point(|&e| e < x) as u16
            }
            (FeatBins::Categorical { cardinality }, Value::Cat(c)) => {
                assert!(
                    (c as usize) < *cardinality,
                    "category {c} outside the fitted vocabulary ({cardinality} categories)"
                );
                c as u16
            }
            _ => panic!("cell kind does not match the fitted binner"),
        }
    }

    /// Appends the codes of dataset row `i` to `out`.
    fn bin_ds_row(&self, ds: &Dataset, i: usize, out: &mut Vec<u16>) {
        for (j, _) in self.feats.iter().enumerate() {
            out.push(self.bin_value(j, ds.cell(i, j)));
        }
    }

    /// Whether `u8` codes suffice for every feature of this binner.
    fn fits_u8(&self) -> bool {
        (0..self.n_features()).all(|f| self.n_bins(f) <= 256)
    }

    /// Bins every row of `ds` into a flat row-major [`BinnedMatrix`], in
    /// parallel across `frote_par::threads()` threads. Cell-for-cell
    /// identical to per-cell [`Binner::bin_value`] at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `ds`'s schema does not match the fitted dataset's.
    pub fn bin_dataset(&self, ds: &Dataset) -> BinnedMatrix {
        assert_eq!(ds.n_features(), self.n_features(), "row arity mismatch");
        let width = self.n_features();
        if width == 0 {
            return BinnedMatrix { codes: Codes::U8(Vec::new()), width: 0, rows: ds.n_rows() };
        }
        let data: Vec<u16> = frote_par::par_blocks_map(ds.n_rows(), BIN_BLOCK, |_, rows| {
            let mut buf = Vec::with_capacity(rows.len() * width);
            for i in rows {
                self.bin_ds_row(ds, i, &mut buf);
            }
            buf
        });
        let codes = if self.fits_u8() {
            Codes::U8(data.into_iter().map(|c| c as u8).collect())
        } else {
            Codes::U16(data)
        };
        BinnedMatrix { rows: codes.len() / width, codes, width }
    }

    /// Appends the codes of `ds`'s rows `matrix.n_rows()..ds.n_rows()` to
    /// `matrix` — the incremental path for datasets that only grow. Binning
    /// base rows and then appending the tail is bit-identical to binning the
    /// concatenated dataset, as long as the edges are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the matrix width differs from the feature count, or if the
    /// matrix already has more rows than `ds`.
    pub fn append(&self, ds: &Dataset, matrix: &mut BinnedMatrix) {
        assert_eq!(matrix.width(), self.n_features(), "matrix width must equal the feature count");
        assert!(matrix.n_rows() <= ds.n_rows(), "matrix has more rows than the dataset");
        let mut buf = Vec::with_capacity(self.n_features());
        for i in matrix.n_rows()..ds.n_rows() {
            buf.clear();
            self.bin_ds_row(ds, i, &mut buf);
            matrix.push_row(&buf);
        }
    }
}

/// Quantile-edge fit for one numeric column: one bin per distinct value when
/// the budget allows (edges at midpoints between adjacent distinct values,
/// matching the exact split search's candidate thresholds), else `max_bins`
/// evenly spaced quantile cuts — the same thinning rule the exact search
/// applies per node.
fn fit_numeric(values: &[f64], max_bins: usize) -> FeatBins {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite feature values"));
    let boundaries: Vec<usize> = (1..sorted.len()).filter(|&i| sorted[i] > sorted[i - 1]).collect();
    let picked: Vec<usize> = if boundaries.len() < max_bins {
        boundaries
    } else {
        let want = max_bins - 1;
        let step = boundaries.len() as f64 / want as f64;
        let mut p: Vec<usize> = (0..want).map(|k| boundaries[(k as f64 * step) as usize]).collect();
        p.dedup();
        p
    };
    let edges: Vec<f64> = picked.iter().map(|&i| 0.5 * (sorted[i - 1] + sorted[i])).collect();
    // Representative per bin: the midpoint of its bounding edges; the outer
    // bins fall back to the observed extremes (or the lone edge when empty).
    let reps: Vec<f64> = if edges.is_empty() {
        vec![sorted.first().copied().unwrap_or(0.0)]
    } else {
        let lo = sorted.first().copied().unwrap_or(edges[0]);
        let hi = sorted.last().copied().unwrap_or(edges[edges.len() - 1]);
        (0..=edges.len())
            .map(|b| {
                let lower = if b == 0 { lo } else { edges[b - 1] };
                let upper = if b == edges.len() { hi } else { edges[b] };
                0.5 * (lower + upper)
            })
            .collect()
    };
    FeatBins::Numeric { edges, reps }
}

/// Flat row-major bin-code storage: `u8` when every feature fits in 256
/// bins, `u16` otherwise.
#[derive(Debug, Clone, PartialEq)]
enum Codes {
    U8(Vec<u8>),
    U16(Vec<u16>),
}

impl Codes {
    fn len(&self) -> usize {
        match self {
            Codes::U8(v) => v.len(),
            Codes::U16(v) => v.len(),
        }
    }

    fn truncate(&mut self, len: usize) {
        match self {
            Codes::U8(v) => v.truncate(len),
            Codes::U16(v) => v.truncate(len),
        }
    }
}

/// A dense row-major matrix of per-feature bin codes. See the
/// [module docs](self).
///
/// # Example
///
/// ```
/// use frote_data::{Binner, Dataset, Schema, Value};
/// let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
/// let mut ds = Dataset::new(schema);
/// for i in 0..4 {
///     ds.push_row(&[Value::Num(i as f64)], 0).unwrap();
/// }
/// let binner = Binner::fit(&ds, 16);
/// let codes = binner.bin_dataset(&ds);
/// assert_eq!(codes.n_rows(), 4);
/// assert_eq!((0..4).map(|i| codes.code(i, 0)).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BinnedMatrix {
    codes: Codes,
    width: usize,
    rows: usize,
}

impl BinnedMatrix {
    /// Row stride (number of features).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Bits per stored code (8 or 16).
    pub fn code_width(&self) -> usize {
        match self.codes {
            Codes::U8(_) => 8,
            Codes::U16(_) => 16,
        }
    }

    /// Bin code at row `i`, feature `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn code(&self, i: usize, j: usize) -> usize {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        assert!(j < self.width, "feature {j} out of bounds ({} features)", self.width);
        match &self.codes {
            Codes::U8(v) => v[i * self.width + j] as usize,
            Codes::U16(v) => v[i * self.width + j] as usize,
        }
    }

    /// Appends one row of codes.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs or a code exceeds the storage width.
    pub fn push_row(&mut self, row: &[u16]) {
        assert_eq!(row.len(), self.width, "row length must equal the matrix width");
        match &mut self.codes {
            Codes::U8(v) => {
                for &c in row {
                    assert!(c <= u8::MAX as u16, "code {c} exceeds the u8 storage width");
                    v.push(c as u8);
                }
            }
            Codes::U16(v) => v.extend_from_slice(row),
        }
        self.rows += 1;
    }

    /// Drops all rows past the first `rows` (no-op when already shorter).
    pub fn truncate_rows(&mut self, rows: usize) {
        if rows < self.rows {
            self.codes.truncate(rows * self.width);
            self.rows = rows;
        }
    }
}

/// An incrementally maintained binned view of a growing dataset: the fitted
/// [`Binner`] plus the full [`BinnedMatrix`] of codes, kept in sync by
/// appending only new rows whenever growth leaves the fitted edges unchanged
/// (always, for pure-categorical schemas) and re-binning otherwise — the
/// quantized twin of [`crate::EncodedCache`].
///
/// The cache is exact by construction: after [`BinnedCache::sync`],
/// `binner()` equals `Binner::fit(ds, max_bins)` and `codes()` equals
/// `binner().bin_dataset(ds)` bit for bit.
#[derive(Debug, Clone)]
pub struct BinnedCache {
    binner: Binner,
    codes: BinnedMatrix,
    /// Set by [`BinnedCache::truncate`]: the stored binner may have been
    /// fitted on since-dropped rows, so the next [`BinnedCache::sync`] must
    /// re-check the fit even when the row counts already match.
    stale_fit: bool,
}

impl BinnedCache {
    /// Fits the binner to `ds` and bins every row.
    pub fn fit(ds: &Dataset, max_bins: usize) -> BinnedCache {
        let binner = Binner::fit(ds, max_bins);
        let codes = binner.bin_dataset(ds);
        BinnedCache { binner, codes, stale_fit: false }
    }

    /// Brings the cache in sync with `ds`, whose leading `codes().n_rows()`
    /// rows must be unchanged since the last sync. Returns how the cache was
    /// updated: [`SyncOutcome::Appended`] when the fitted edges held and only
    /// new rows were binned, [`SyncOutcome::Rebuilt`] (with the reason) when
    /// a full re-bin was required.
    pub fn sync(&mut self, ds: &Dataset) -> SyncOutcome {
        let outcome = self.sync_inner(ds);
        counters().record_sync(&outcome);
        outcome
    }

    fn sync_inner(&mut self, ds: &Dataset) -> SyncOutcome {
        if !self.stale_fit && ds.n_rows() == self.codes.n_rows() {
            return SyncOutcome::Unchanged; // even the refit can be skipped
        }
        let was_stale = self.stale_fit;
        self.stale_fit = false;
        let refit = Binner::fit(ds, self.binner.max_bins());
        if refit == self.binner && frote_faults::point("data.cache.binned.append").is_ok() {
            let appended = ds.n_rows() - self.codes.n_rows();
            self.binner.append(ds, &mut self.codes);
            SyncOutcome::Appended { rows: appended }
        } else if refit == self.binner {
            // An injected fault poisoned the append fast path: degrade to a
            // full rebuild — bit-identical output, only the cost changes.
            self.codes = self.binner.bin_dataset(ds);
            SyncOutcome::Rebuilt(RebuildReason::Injected)
        } else {
            self.binner = refit;
            self.codes = self.binner.bin_dataset(ds);
            SyncOutcome::Rebuilt(if was_stale {
                RebuildReason::StaleFit
            } else {
                RebuildReason::FitChanged
            })
        }
    }

    /// Drops cached codes past the first `rows` rows (rejecting a candidate
    /// batch without re-binning the survivors). The surviving codes stay
    /// valid — a row's codes depend only on the binner — but the binner
    /// itself may have been refitted on the dropped rows, so the next
    /// [`BinnedCache::sync`] re-checks the fit.
    pub fn truncate(&mut self, rows: usize) {
        if rows < self.codes.n_rows() {
            self.stale_fit = true;
            counters().record_truncate(self.codes.n_rows() - rows);
        }
        self.codes.truncate_rows(rows);
    }

    /// The current binner fit.
    pub fn binner(&self) -> &Binner {
        &self.binner
    }

    /// The bin codes, one row per dataset row as of the last sync.
    pub fn codes(&self) -> &BinnedMatrix {
        &self.codes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn mixed() -> Dataset {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .numeric("x")
            .categorical("c", vec!["u".into(), "v".into(), "w".into()])
            .build();
        let mut ds = Dataset::new(schema);
        for i in 0..12 {
            ds.push_row(&[Value::Num(f64::from(i % 6)), Value::Cat(i % 3)], i % 2).unwrap();
        }
        ds
    }

    #[test]
    fn one_bin_per_distinct_value_under_budget() {
        let ds = mixed();
        let binner = Binner::fit(&ds, 16);
        assert_eq!(binner.n_bins(0), 6, "6 distinct values -> 6 bins");
        assert_eq!(binner.n_bins(1), 3, "cardinality bins for categoricals");
        assert!(binner.is_numeric(0));
        assert!(!binner.is_numeric(1));
        // Edges are the midpoints between adjacent distinct values.
        for b in 0..5 {
            assert!((binner.threshold(0, b) - (b as f64 + 0.5)).abs() < 1e-12);
        }
    }

    #[test]
    fn binning_is_threshold_consistent() {
        // bin(v) <= b  iff  v <= edges[b], for every value and boundary.
        let ds = mixed();
        let binner = Binner::fit(&ds, 4);
        for i in 0..ds.n_rows() {
            let v = ds.cell(i, 0).expect_num();
            let code = binner.bin_value(0, Value::Num(v)) as usize;
            for b in 0..binner.n_bins(0) - 1 {
                assert_eq!(code <= b, v <= binner.threshold(0, b), "v={v} b={b}");
            }
        }
    }

    #[test]
    fn quantile_thinning_caps_bin_count() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema);
        for i in 0..500 {
            ds.push_row(&[Value::Num(i as f64)], 0).unwrap();
        }
        let binner = Binner::fit(&ds, 32);
        assert!(binner.n_bins(0) <= 32);
        assert!(binner.n_bins(0) >= 16, "quantile cuts should use most of the budget");
        // Codes stay sorted with values.
        let codes: Vec<u16> = (0..500).map(|i| binner.bin_value(0, Value::Num(i as f64))).collect();
        assert!(codes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn representatives_sit_inside_their_bins() {
        let ds = mixed();
        let binner = Binner::fit(&ds, 4);
        for b in 0..binner.n_bins(0) {
            let rep = binner.representative(0, b);
            assert_eq!(binner.bin_value(0, Value::Num(rep)) as usize, b, "rep {rep} bin {b}");
        }
    }

    #[test]
    fn u8_codes_until_a_feature_needs_more() {
        let ds = mixed();
        assert_eq!(Binner::fit(&ds, 64).bin_dataset(&ds).code_width(), 8);
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut wide = Dataset::new(schema);
        for i in 0..600 {
            wide.push_row(&[Value::Num(i as f64)], 0).unwrap();
        }
        let m = Binner::fit(&wide, 512).bin_dataset(&wide);
        assert_eq!(m.code_width(), 16);
        assert_eq!(
            m.code(599, 0),
            Binner::fit(&wide, 512).bin_value(0, Value::Num(599.0)) as usize
        );
    }

    #[test]
    fn append_equals_binning_the_concatenated_dataset() {
        // Satellite pin: bin base rows, append synthetic rows -> identical to
        // binning the concatenated dataset when the edges are unchanged.
        let base = mixed();
        let binner = Binner::fit(&base, 8);
        let mut grown = base.clone();
        for i in 0..7 {
            grown.push_row(&[Value::Num((i % 6) as f64), Value::Cat((i + 1) % 3)], 1).unwrap();
        }
        assert_eq!(Binner::fit(&grown, 8), binner, "appended values hit existing bins");
        let mut incremental = binner.bin_dataset(&base);
        binner.append(&grown, &mut incremental);
        assert_eq!(incremental, binner.bin_dataset(&grown));
    }

    #[test]
    fn cache_incremental_on_categorical_schema() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()])
            .categorical("k", vec!["p".into(), "q".into()])
            .build();
        let mut ds = Dataset::new(schema);
        ds.push_row(&[Value::Cat(0)], 0).unwrap();
        let mut cache = BinnedCache::fit(&ds, 16);
        ds.push_row(&[Value::Cat(1)], 1).unwrap();
        assert_eq!(
            cache.sync(&ds),
            SyncOutcome::Appended { rows: 1 },
            "categorical bins never change: append path"
        );
        assert_eq!(cache.codes(), &cache.binner().bin_dataset(&ds));
    }

    #[test]
    fn injected_append_fault_degrades_to_rebuild() {
        let ds0 = mixed();
        let mut cache = BinnedCache::fit(&ds0, 16);
        let mut ds = ds0.clone();
        // Repeat an existing row: edges stay put, so this is normally an
        // append — the injected fault forces the rebuild detour.
        let row: Vec<Value> = (0..ds0.n_features()).map(|j| ds0.cell(0, j)).collect();
        ds.push_row(&row, ds0.labels()[0]).unwrap();
        frote_faults::test_support::with_spec(Some("data.cache.binned.append:err:1000:2"), || {
            assert_eq!(cache.sync(&ds), SyncOutcome::Rebuilt(RebuildReason::Injected));
        });
        assert_eq!(cache.codes(), &cache.binner().bin_dataset(&ds));
        ds.push_row(&row, ds0.labels()[0]).unwrap();
        assert_eq!(cache.sync(&ds), SyncOutcome::Appended { rows: 1 }, "fault cleared");
    }

    #[test]
    fn cache_rebins_when_edges_move() {
        let mut ds = mixed();
        let mut cache = BinnedCache::fit(&ds, 16);
        ds.push_row(&[Value::Num(100.0), Value::Cat(0)], 0).unwrap();
        assert_eq!(
            cache.sync(&ds),
            SyncOutcome::Rebuilt(RebuildReason::FitChanged),
            "new distinct value: edges move, full re-bin"
        );
        assert_eq!(cache.binner(), &Binner::fit(&ds, 16));
        assert_eq!(cache.codes(), &cache.binner().bin_dataset(&ds));
    }

    #[test]
    fn cache_truncate_drops_rejected_rows() {
        let ds = mixed();
        let mut cache = BinnedCache::fit(&ds, 16);
        cache.truncate(5);
        assert_eq!(cache.codes().n_rows(), 5);
        assert_eq!(
            cache.sync(&ds),
            SyncOutcome::Appended { rows: 7 },
            "unchanged edges survive the stale-fit re-check: append path"
        );
        assert_eq!(cache.codes(), &cache.binner().bin_dataset(&ds));
    }

    #[test]
    fn truncate_after_rebin_restores_the_original_fit() {
        // A candidate row moves the bin edges (full re-bin), then is
        // rejected: truncate must leave the cache able to recover the
        // original binner on the next sync, even though the row counts
        // already match.
        let ds = mixed();
        let mut cache = BinnedCache::fit(&ds, 16);
        let mut candidate = ds.clone();
        candidate.push_row(&[Value::Num(100.0), Value::Cat(0)], 0).unwrap();
        assert_eq!(
            cache.sync(&candidate),
            SyncOutcome::Rebuilt(RebuildReason::FitChanged),
            "edges moved: full re-bin"
        );
        cache.truncate(ds.n_rows());
        assert_eq!(
            cache.sync(&ds),
            SyncOutcome::Rebuilt(RebuildReason::StaleFit),
            "rollback left edges fitted on dropped rows"
        );
        assert_eq!(cache.binner(), &Binner::fit(&ds, 16), "fit restored after rollback");
        assert_eq!(cache.codes(), &cache.binner().bin_dataset(&ds));
    }

    #[test]
    fn constant_and_empty_columns_get_one_bin() {
        let schema = Schema::builder("y", vec!["a".into(), "b".into()]).numeric("x").build();
        let mut ds = Dataset::new(schema.clone());
        assert_eq!(Binner::fit(&ds, 8).n_bins(0), 1, "empty column");
        ds.push_row(&[Value::Num(5.0)], 0).unwrap();
        ds.push_row(&[Value::Num(5.0)], 1).unwrap();
        let binner = Binner::fit(&ds, 8);
        assert_eq!(binner.n_bins(0), 1, "constant column");
        assert_eq!(binner.bin_value(0, Value::Num(5.0)), 0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_budget_panics() {
        Binner::fit(&mixed(), 1);
    }

    #[test]
    #[should_panic(expected = "outside the fitted vocabulary")]
    fn out_of_vocabulary_category_panics() {
        // Fitted on a 2-category schema; binning a same-arity dataset with
        // a wider vocabulary must fail loudly, not corrupt histograms.
        let narrow = Schema::builder("y", vec!["a".into(), "b".into()])
            .categorical("k", vec!["p".into(), "q".into()])
            .build();
        let mut ds = Dataset::new(narrow);
        ds.push_row(&[Value::Cat(0)], 0).unwrap();
        let binner = Binner::fit(&ds, 8);
        let wide = Schema::builder("y", vec!["a".into(), "b".into()])
            .categorical("k", vec!["p".into(), "q".into(), "r".into(), "s".into()])
            .build();
        let mut other = Dataset::new(wide);
        other.push_row(&[Value::Cat(3)], 0).unwrap();
        binner.bin_dataset(&other);
    }

    #[test]
    #[should_panic(expected = "cannot bin NaN")]
    fn nan_value_panics_instead_of_landing_in_bin_zero() {
        // Satellite pin: `partition_point(|e| e < NaN)` is 0 because every
        // IEEE comparison against NaN is false — without the guard a NaN
        // cell would silently masquerade as the smallest bin.
        let ds = mixed();
        let binner = Binner::fit(&ds, 8);
        binner.bin_value(0, Value::Num(f64::NAN));
    }

    #[test]
    fn numeric_edges_expose_the_fitted_thresholds() {
        let ds = mixed();
        let binner = Binner::fit(&ds, 16);
        let edges = binner.numeric_edges(0).unwrap();
        assert_eq!(edges.len(), binner.n_bins(0) - 1);
        for (b, &e) in edges.iter().enumerate() {
            assert_eq!(e, binner.threshold(0, b));
        }
        assert!(binner.numeric_edges(1).is_none(), "categorical features have no edges");
    }

    #[test]
    #[should_panic(expected = "u8 storage width")]
    fn narrow_matrix_rejects_wide_codes() {
        let ds = mixed();
        let mut m = Binner::fit(&ds, 8).bin_dataset(&ds);
        m.push_row(&[300, 0]);
    }
}
